"""The or1k-like scalar CPU baseline.

The paper normalises CGRA latency and energy against an or1k CPU
running the kernels compiled at -O3.  Our substitute executes the very
same CDFG sequentially (the golden interpreter) and prices the dynamic
instruction stream with classic in-order costs
(:func:`repro.ir.opcodes.cpu_cycles`): single-cycle ALU, 3-cycle
multiply, 2-cycle load, single-cycle store, 3-cycle taken branch, plus
one cycle of control overhead per executed basic block (the
unconditional jump / fall-through bookkeeping).

Because both backends execute one CDFG, the comparison isolates the
architectural difference — 16 parallel tiles with context memories vs
one scalar pipeline — exactly like the paper's Fig 10 / Table II.
"""

from __future__ import annotations

from repro.ir import opcodes
from repro.ir.interp import Interpreter


class CPURunResult:
    """Outcome of one kernel execution on the CPU model."""

    def __init__(self, interp_result, cycles, instructions):
        self.interp = interp_result
        self.cycles = cycles
        self.instructions = instructions

    @property
    def memory(self):
        return self.interp.memory

    def region(self, cdfg, name):
        return self.interp.region(cdfg, name)

    @property
    def op_counts(self):
        return self.interp.op_counts

    @property
    def block_counts(self):
        return self.interp.block_counts

    def __repr__(self):
        return (f"CPURunResult({self.cycles} cycles, "
                f"{self.instructions} instructions)")


class CPUModel:
    """Sequential execution with an or1k-like cost model."""

    #: control overhead per executed basic block (jump/fall-through)
    BLOCK_OVERHEAD_CYCLES = 1

    def __init__(self, cdfg):
        self.cdfg = cdfg
        self._interpreter = Interpreter(cdfg)

    def run(self, memory_image=None):
        result = self._interpreter.run(memory_image)
        cycles = 0
        instructions = 0
        for opcode, count in result.op_counts.items():
            cycles += opcodes.cpu_cycles(opcode) * count
            instructions += count
        blocks_executed = sum(result.block_counts.values())
        cycles += self.BLOCK_OVERHEAD_CYCLES * blocks_executed
        instructions += blocks_executed
        return CPURunResult(result, cycles, instructions)
