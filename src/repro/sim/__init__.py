"""Cycle-level execution backends.

- :mod:`repro.sim.memory` — the shared data memory behind the
  logarithmic interconnect;
- :mod:`repro.sim.activity` — activity counters feeding the energy
  model (CM reads, issued ops, gated cycles, memory traffic);
- :mod:`repro.sim.cgra` — lockstep execution of an assembled
  :class:`~repro.codegen.assembler.Program` (substitute for the
  paper's RTL + QuestaSim runs);
- :mod:`repro.sim.cpu` — the or1k-like scalar baseline (substitute
  for the paper's or1k at -O3).
"""

from repro.sim.activity import ActivityCounters
from repro.sim.cgra import CGRASimulator, CGRARunResult
from repro.sim.cpu import CPUModel, CPURunResult

__all__ = [
    "ActivityCounters",
    "CGRASimulator",
    "CGRARunResult",
    "CPUModel",
    "CPURunResult",
]
