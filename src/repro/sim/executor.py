"""Functional cycle-level executor: the second execution backend.

An independent re-implementation of the PE contract for differential
testing against :class:`~repro.sim.cgra.CGRASimulator` (the analytic
lockstep path).  Same assembled :class:`~repro.codegen.assembler.Program`
in, same :class:`~repro.sim.memory.DataMemory` model underneath — but
the execution engine shares nothing with the lockstep simulator:

- **Event-driven, not lockstep.**  Each block's per-tile instruction
  streams are merged into one cycle-ordered event list; execution
  walks the events, so idle tiles cost no interpreter work and the
  engine never iterates a ``range(block.length)``.
- **Timing is measured, not read off the schedule.**  The lockstep
  simulator charges every block its mapper-declared length
  (``activity.cycles += block.length``), which makes its cycle count
  an echo of the analytic schedule.  This executor never reads
  ``block.length``: a block's duration is the cycle after its last
  observable activity completes (the block-end broadcast fires once
  every stream has drained), so the reported cycle count is an
  independent measurement.  Where the mapper's schedule carries
  trailing idle — stretch slack no op ever filled — the two counts
  legitimately diverge, which is exactly the per-point delta
  ``repro diff`` reports; see :data:`CYCLE_TOLERANCE_NOTE`.
- **Same soundness checks, different code.**  Operand reads verify
  that the named value really is in the tile's RF, in its CRF image,
  or was posted on the neighbour's port exactly one cycle earlier —
  so the executor doubles as a second, independent mapping verifier:
  a bug that slips through one implementation has to slip through
  both to go unnoticed.

The executor produces the same observables the energy model and the
experiment pipeline consume: final data memory, a cycle count, and
:class:`~repro.sim.activity.ActivityCounters`.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.ir import opcodes
from repro.ir.cdfg import Branch, Exit, Jump
from repro.ir.opcodes import Opcode
from repro.codegen.assembler import Program
from repro.sim.activity import ActivityCounters
from repro.sim.memory import DataMemory

#: Why the two backends may disagree on cycles (and by how much):
#: the lockstep path charges each block its scheduled length, the
#: cycle-level path measures until the last instruction completes, so
#: the analytic count exceeds the measured one by exactly the
#: schedule's trailing idle — never the other way around.  ``repro
#: diff`` defaults its tolerance from this bound.
CYCLE_TOLERANCE_NOTE = (
    "analytic >= cycle-level; the gap is the schedule's trailing "
    "idle per block execution")


class CycleRunResult:
    """Outcome of one kernel execution through the cycle executor."""

    def __init__(self, memory, cycles, activity, block_counts,
                 block_durations):
        self.memory = memory
        self.cycles = cycles
        self.activity = activity
        self.block_counts = block_counts
        #: block name -> measured duration of one execution (cycles)
        self.block_durations = block_durations

    def region(self, cdfg, name):
        info = cdfg.regions[name]
        return self.memory.region(info["base"], info["size"])

    def __repr__(self):
        return f"CycleRunResult({self.cycles} cycles)"


class _BlockEvents:
    """One block's streams flattened into a cycle-ordered event list.

    Built once per block and replayed on every execution (loops).
    ``events`` groups instructions by issue cycle: a list of
    ``(cycle, [(tile, instr), ...])`` in ascending cycle order.
    ``duration`` is the measured span — one past the last completing
    instruction (a PNOP at cycle c covering n cycles completes at
    ``c + n - 1``).  Empty blocks measure zero.
    """

    __slots__ = ("events", "duration")

    def __init__(self, block, n_tiles):
        by_cycle = {}
        duration = 0
        for tile in range(n_tiles):
            for instr in block.tile_streams[tile]:
                by_cycle.setdefault(instr.cycle, []).append((tile, instr))
                duration = max(duration,
                               instr.cycle + instr.issue_cycles)
        self.events = sorted(by_cycle.items())
        self.duration = duration


class CycleExecutor:
    """Executes a :class:`Program` event by event, measuring cycles."""

    def __init__(self, program, memory_image=None,
                 max_block_executions=1_000_000):
        if not isinstance(program, Program):
            raise SimulationError(f"expected Program, got {program!r}")
        program.check_fits()
        self.program = program
        self.cgra = program.cgra
        self.max_block_executions = max_block_executions
        if memory_image is None:
            memory_image = self.cgra.data_memory_words
        self._memory_image = memory_image
        self._events = {
            name: _BlockEvents(block, self.cgra.n_tiles)
            for name, block in program.blocks.items()}

    # ------------------------------------------------------------------
    def run(self):
        program = self.program
        n_tiles = self.cgra.n_tiles
        memory = DataMemory(self._memory_image)
        activity = ActivityCounters(n_tiles)
        # Persistent per-tile state: symbol register files and the
        # (immutable) CRF images.
        sym_rf = [dict() for _ in range(n_tiles)]
        crf = [frozenset(program.const_images[t]) for t in range(n_tiles)]
        for symbol, (home, init) in program.symbol_inits.items():
            sym_rf[home][symbol] = opcodes.wrap32(init)
        block_counts = {}
        block_durations = {}
        current = program.entry
        executed = 0
        while True:
            block = program.blocks[current]
            block_counts[current] = block_counts.get(current, 0) + 1
            executed += 1
            if executed > self.max_block_executions:
                raise SimulationError(
                    f"{program.kernel_name}: exceeded "
                    f"{self.max_block_executions} block executions")
            plan = self._events[current]
            branch_value = self._run_block(block, plan, sym_rf, crf,
                                           memory, activity)
            block_durations[current] = plan.duration
            activity.cycles += plan.duration
            activity.block_transitions += 1
            terminator = block.terminator
            if isinstance(terminator, Exit):
                break
            if isinstance(terminator, Jump):
                current = terminator.target
            elif isinstance(terminator, Branch):
                if branch_value is None:
                    raise SimulationError(
                        f"block {block.name} branched without a BR "
                        f"result")
                current = (terminator.if_true if branch_value != 0
                           else terminator.if_false)
            else:
                raise SimulationError(f"bad terminator {terminator!r}")
        activity.dmem_reads = memory.reads
        activity.dmem_writes = memory.writes
        from repro.obs import metrics
        metrics.SIM_CYCLES.inc(activity.cycles, engine="cycle")
        return CycleRunResult(memory, activity.cycles, activity,
                              block_counts, block_durations)

    # ------------------------------------------------------------------
    def _run_block(self, block, plan, sym_rf, crf, memory, activity):
        n_tiles = self.cgra.n_tiles
        # Block-local register state and per-tile busy accounting.
        rf = [dict() for _ in range(n_tiles)]
        busy = [0] * n_tiles
        # Port state: tile -> (uid, value, cycle the value was posted).
        # A value is readable from a neighbour exactly one cycle after
        # it was posted, and only until the next post overwrites it.
        ports = {}
        for symbol, home, uid in block.symbol_reads:
            try:
                rf[home][uid] = sym_rf[home][symbol]
            except KeyError:
                raise SimulationError(
                    f"symbol {symbol!r} not initialised in tile {home} "
                    f"at block {block.name}") from None
        branch_value = None
        for cycle, group in plan.events:
            posts = []
            for tile, instr in group:
                stats = activity.tiles[tile]
                stats.cm_reads += 1
                if instr.kind == "pnop":
                    stats.pnop_fetches += 1
                    stats.gated_cycles += instr.count
                    busy[tile] += instr.count
                    continue
                stats.active_cycles += 1
                busy[tile] += 1
                value = self._execute(instr, tile, cycle, rf, crf,
                                      ports, memory, stats,
                                      block.name)
                if instr.opcode is Opcode.BR:
                    branch_value = value
                elif instr.dest_uid is not None:
                    rf[tile][instr.dest_uid] = value
                    stats.rf_writes += 1
                    posts.append((tile, instr.dest_uid, value))
            # Results reach the output port only after the whole
            # cycle resolved — a same-cycle neighbour read must fail.
            for tile, uid, value in posts:
                ports[tile] = (uid, value, cycle)
        for symbol, home, uid in block.symbol_commits:
            try:
                sym_rf[home][symbol] = rf[home][uid]
            except KeyError:
                raise SimulationError(
                    f"symbol {symbol!r} commit: value {uid} missing in "
                    f"tile {home} at block {block.name} "
                    f"(mapping unsound)") from None
        # Whatever a tile did not spend issuing or gated within the
        # measured span, it spent idle (trailing idle included).
        for tile in range(n_tiles):
            idle = plan.duration - busy[tile]
            if idle < 0:
                raise SimulationError(
                    f"tile {tile} oversubscribed in block "
                    f"{block.name}: {busy[tile]} busy cycles in a "
                    f"{plan.duration}-cycle span")
            activity.tiles[tile].idle_cycles += idle
        return branch_value

    # ------------------------------------------------------------------
    def _read(self, source, tile, cycle, rf, crf, ports, stats,
              block_name):
        if source.kind == "rf":
            try:
                stats.rf_reads += 1
                return rf[tile][source.uid]
            except KeyError:
                raise SimulationError(
                    f"tile {tile}: value {source.uid} not in RF at "
                    f"block {block_name} cycle {cycle} (mapping "
                    f"unsound)") from None
        if source.kind == "crf":
            if source.value not in crf[tile]:
                raise SimulationError(
                    f"tile {tile}: constant {source.value} not in CRF "
                    f"image")
            stats.crf_reads += 1
            return source.value
        posted = ports.get(source.tile)
        if posted is None or posted[0] != source.uid \
                or posted[2] != cycle - 1:
            found = posted[0] if posted is not None else None
            raise SimulationError(
                f"tile {tile}: expected value {source.uid} on port of "
                f"tile {source.tile} at block {block_name} cycle "
                f"{cycle}, found {found} (mapping unsound)")
        stats.port_reads += 1
        return posted[1]

    def _execute(self, instr, tile, cycle, rf, crf, ports, memory,
                 stats, block_name):
        values = [self._read(source, tile, cycle, rf, crf, ports,
                             stats, block_name)
                  for source in instr.sources]
        opcode = instr.opcode
        if opcode is Opcode.LOAD:
            stats.loads += 1
            return memory.load(values[0])
        if opcode is Opcode.STORE:
            stats.stores += 1
            memory.store(values[0], values[1])
            return None
        if opcode is Opcode.BR:
            stats.br_ops += 1
            return values[0]
        if opcode is Opcode.MOV:
            stats.mov_ops += 1
            return values[0]
        if opcode is Opcode.MUL:
            stats.mul_ops += 1
        else:
            stats.alu_ops += 1
        return opcodes.evaluate(opcode, values)
