"""Lockstep cycle-level execution of an assembled program.

Substitute for the paper's RTL + QuestaSim runs.  Implements the PE
contract exactly as the mapper assumes it (DESIGN.md Sec 5):

- per block, all tiles run ``L`` cycles in lockstep;
- results land in the producing tile's RF and appear on its output
  port for exactly the next cycle;
- operand sources are taken from the assembled instruction (own RF,
  own CRF, neighbour port) — the simulator *verifies* that the named
  value is actually there, so any unsound mapping or assembly bug
  fails loudly instead of producing silently wrong numbers;
- PNOPs clock-gate the tile (one context fetch, then gated cycles);
- at block end, symbol variables are committed in their home tiles'
  register files and the controller broadcast selects the next block.

The simulator returns both the functional outcome (final data memory)
and the :class:`~repro.sim.activity.ActivityCounters` the energy model
consumes.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.ir import opcodes
from repro.ir.cdfg import Branch, Exit, Jump
from repro.ir.opcodes import Opcode
from repro.codegen.assembler import Program
from repro.sim.activity import ActivityCounters
from repro.sim.memory import DataMemory


class CGRARunResult:
    """Outcome of one kernel execution on the CGRA."""

    def __init__(self, memory, cycles, activity, block_counts):
        self.memory = memory
        self.cycles = cycles
        self.activity = activity
        self.block_counts = block_counts

    def region(self, cdfg, name):
        info = cdfg.regions[name]
        return self.memory.region(info["base"], info["size"])

    def __repr__(self):
        return f"CGRARunResult({self.cycles} cycles)"


class _Tile:
    """Execution state of one PE."""

    __slots__ = ("index", "rf_local", "rf_sym", "port_key", "port_value",
                 "crf")

    def __init__(self, index, crf):
        self.index = index
        self.rf_local = {}
        self.rf_sym = {}
        self.port_key = None
        self.port_value = 0
        self.crf = frozenset(crf)


class CGRASimulator:
    """Executes a :class:`~repro.codegen.assembler.Program`."""

    def __init__(self, program, memory_image=None,
                 max_block_executions=1_000_000):
        if not isinstance(program, Program):
            raise SimulationError(f"expected Program, got {program!r}")
        program.check_fits()
        self.program = program
        self.cgra = program.cgra
        self.max_block_executions = max_block_executions
        if memory_image is None:
            memory_image = self.cgra.data_memory_words
        self._memory_image = memory_image

    # ------------------------------------------------------------------
    def run(self):
        program = self.program
        memory = DataMemory(self._memory_image)
        activity = ActivityCounters(self.cgra.n_tiles)
        tiles = [_Tile(t, program.const_images[t])
                 for t in range(self.cgra.n_tiles)]
        # Symbol initial values live in their home register files.
        for symbol, (home, init) in program.symbol_inits.items():
            tiles[home].rf_sym[symbol] = opcodes.wrap32(init)
        block_counts = {}
        current = program.entry
        executed = 0
        while True:
            block = program.blocks[current]
            block_counts[current] = block_counts.get(current, 0) + 1
            executed += 1
            if executed > self.max_block_executions:
                raise SimulationError(
                    f"{program.kernel_name}: exceeded "
                    f"{self.max_block_executions} block executions")
            branch_value = self._run_block(block, tiles, memory, activity)
            self._commit_symbols(block, tiles)
            activity.cycles += block.length
            activity.block_transitions += 1
            terminator = block.terminator
            if isinstance(terminator, Exit):
                break
            if isinstance(terminator, Jump):
                current = terminator.target
            elif isinstance(terminator, Branch):
                if branch_value is None:
                    raise SimulationError(
                        f"block {block.name} branched without a BR result")
                current = (terminator.if_true if branch_value != 0
                           else terminator.if_false)
            else:
                raise SimulationError(f"bad terminator {terminator!r}")
        activity.dmem_reads = memory.reads
        activity.dmem_writes = memory.writes
        from repro.obs import metrics
        metrics.SIM_CYCLES.inc(activity.cycles, engine="analytic")
        return CGRARunResult(memory, activity.cycles, activity,
                             block_counts)

    # ------------------------------------------------------------------
    def _run_block(self, block, tiles, memory, activity):
        # Fresh block-local registers; bind symbol entry values.
        for tile in tiles:
            tile.rf_local = {}
            tile.port_key = None
        for symbol, home, uid in block.symbol_reads:
            try:
                tiles[home].rf_local[uid] = tiles[home].rf_sym[symbol]
            except KeyError:
                raise SimulationError(
                    f"symbol {symbol!r} not initialised in tile {home} "
                    f"at block {block.name}") from None
        pointers = [0] * len(tiles)
        pnop_left = [0] * len(tiles)
        branch_value = None
        for cycle in range(block.length):
            port_updates = []
            for tile in tiles:
                stats = activity.tiles[tile.index]
                if pnop_left[tile.index] > 0:
                    pnop_left[tile.index] -= 1
                    stats.gated_cycles += 1
                    continue
                stream = block.tile_streams[tile.index]
                pointer = pointers[tile.index]
                if pointer >= len(stream):
                    stats.idle_cycles += 1
                    continue
                instr = stream[pointer]
                if instr.cycle != cycle:
                    if instr.cycle < cycle:
                        raise SimulationError(
                            f"tile {tile.index} stream out of sync at "
                            f"block {block.name} cycle {cycle}")
                    stats.idle_cycles += 1
                    continue
                pointers[tile.index] += 1
                stats.cm_reads += 1
                if instr.kind == "pnop":
                    stats.pnop_fetches += 1
                    # The fetch cycle is the first gated cycle.
                    stats.gated_cycles += 1
                    pnop_left[tile.index] = instr.count - 1
                    continue
                stats.active_cycles += 1
                value = self._execute(instr, tile, tiles, memory, stats)
                if instr.opcode is Opcode.BR:
                    branch_value = value
                elif instr.dest_uid is not None:
                    tile.rf_local[instr.dest_uid] = value
                    stats.rf_writes += 1
                    port_updates.append((tile, instr.dest_uid, value))
            # Output ports hold a value for exactly one cycle.
            for tile in tiles:
                tile.port_key = None
            for tile, key, value in port_updates:
                tile.port_key = key
                tile.port_value = value
        return branch_value

    def _read_source(self, source, tile, tiles, stats):
        if source.kind == "rf":
            try:
                stats.rf_reads += 1
                return tile.rf_local[source.uid]
            except KeyError:
                raise SimulationError(
                    f"tile {tile.index}: value {source.uid} not in RF "
                    f"(mapping unsound)") from None
        if source.kind == "crf":
            if source.value not in tile.crf:
                raise SimulationError(
                    f"tile {tile.index}: constant {source.value} not in "
                    f"CRF image")
            stats.crf_reads += 1
            return source.value
        neighbor = tiles[source.tile]
        if neighbor.port_key != source.uid:
            raise SimulationError(
                f"tile {tile.index}: expected value {source.uid} on "
                f"port of tile {source.tile}, found {neighbor.port_key} "
                f"(mapping unsound)")
        stats.port_reads += 1
        return neighbor.port_value

    def _execute(self, instr, tile, tiles, memory, stats):
        values = [self._read_source(s, tile, tiles, stats)
                  for s in instr.sources]
        opcode = instr.opcode
        if opcode is Opcode.LOAD:
            stats.loads += 1
            return memory.load(values[0])
        if opcode is Opcode.STORE:
            stats.stores += 1
            memory.store(values[0], values[1])
            return None
        if opcode is Opcode.BR:
            stats.br_ops += 1
            return values[0]
        if opcode is Opcode.MOV:
            stats.mov_ops += 1
            return values[0]
        if opcode is Opcode.MUL:
            stats.mul_ops += 1
        else:
            stats.alu_ops += 1
        return opcodes.evaluate(opcode, values)

    def _commit_symbols(self, block, tiles):
        for symbol, home, uid in block.symbol_commits:
            try:
                tiles[home].rf_sym[symbol] = tiles[home].rf_local[uid]
            except KeyError:
                raise SimulationError(
                    f"symbol {symbol!r} commit: value {uid} missing in "
                    f"tile {home} at block {block.name} "
                    f"(mapping unsound)") from None
