"""Activity counters: what the energy model multiplies by.

Mirrors what Synopsys PrimePower would see in the paper's flow: how
often each component toggles.  Counters are per tile where the
component is per tile (context-memory fetches, ALU issues, register
accesses, clock-gated cycles) and global for the shared resources
(data memory, block transitions handled by the CGRA controller).
"""

from __future__ import annotations


class TileActivity:
    """Per-tile activity."""

    __slots__ = ("alu_ops", "mul_ops", "mov_ops", "loads", "stores",
                 "br_ops", "pnop_fetches", "gated_cycles", "idle_cycles",
                 "rf_reads", "rf_writes", "crf_reads", "port_reads",
                 "cm_reads", "active_cycles")

    def __init__(self):
        self.alu_ops = 0
        self.mul_ops = 0
        self.mov_ops = 0
        self.loads = 0
        self.stores = 0
        self.br_ops = 0
        #: one context fetch per PNOP instruction entered
        self.pnop_fetches = 0
        #: cycles spent counted down inside a PNOP (clock gated)
        self.gated_cycles = 0
        #: cycles with no instruction at all (trailing idle, idle blocks)
        self.idle_cycles = 0
        self.rf_reads = 0
        self.rf_writes = 0
        self.crf_reads = 0
        self.port_reads = 0
        #: context-memory reads (one per issued instruction/pnop fetch)
        self.cm_reads = 0
        #: cycles with an instruction issued
        self.active_cycles = 0

    @property
    def issued(self):
        return (self.alu_ops + self.mul_ops + self.mov_ops + self.loads
                + self.stores + self.br_ops)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class ActivityCounters:
    """Whole-array activity for one kernel execution."""

    def __init__(self, n_tiles):
        self.tiles = [TileActivity() for _ in range(n_tiles)]
        self.cycles = 0
        self.block_transitions = 0
        self.dmem_reads = 0
        self.dmem_writes = 0

    def total(self, field):
        return sum(getattr(tile, field) for tile in self.tiles)

    def as_dict(self):
        return {
            "cycles": self.cycles,
            "block_transitions": self.block_transitions,
            "dmem_reads": self.dmem_reads,
            "dmem_writes": self.dmem_writes,
            "tiles": [tile.as_dict() for tile in self.tiles],
        }

    def __repr__(self):
        return (f"ActivityCounters(cycles={self.cycles}, "
                f"issued={self.total('issued')}, "
                f"gated={self.total('gated_cycles')})")
