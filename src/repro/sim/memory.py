"""Shared data memory (TCDM) behind the logarithmic interconnect.

The paper's CGRA reads and writes a multi-banked data memory through a
logarithmic interconnect (Fig 1a).  We model it as single-cycle and
conflict-free — the eight LSU tiles of a 4x4 array against a banked
TCDM rarely conflict, and both compared systems (basic vs aware
mapping) see identical behaviour, so ratios are unaffected.  Accesses
are counted for the energy model.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.ir import opcodes


class DataMemory:
    """Word-addressed 32-bit data memory with access counting."""

    def __init__(self, size_or_image):
        if isinstance(size_or_image, int):
            self._words = [0] * size_or_image
        else:
            self._words = [opcodes.wrap32(int(v)) for v in size_or_image]
        self.reads = 0
        self.writes = 0

    def __len__(self):
        return len(self._words)

    def _check(self, address):
        if not 0 <= address < len(self._words):
            raise SimulationError(
                f"data-memory access at {address} outside "
                f"[0, {len(self._words)})")

    def load(self, address):
        self._check(address)
        self.reads += 1
        return self._words[address]

    def store(self, address, value):
        self._check(address)
        self.writes += 1
        self._words[address] = opcodes.wrap32(value)

    def snapshot(self):
        """Copy of the full memory image (for result checking)."""
        return list(self._words)

    def region(self, base, size):
        return self._words[base: base + size]
