"""``repro profile`` — cProfile one ``map_kernel`` run.

Future perf work should start from data, not guesses: this wraps one
mapping in cProfile and prints the top functions by cumulative time,
which is exactly how the hot paths optimised in this repo (the route
search, the incremental context accounting) were found.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import threading

from repro.arch.configs import get_config
from repro.errors import UnmappableError
from repro.kernels import get_kernel
from repro.mapping.flow import VARIANTS, map_kernel

from repro.perf.harness import BenchCase


def profile_case(case: BenchCase, top=20, sort="cumulative"):
    """Profile one mapping; returns (stats_text, result_or_None).

    ``sort`` is any pstats key (``cumulative``, ``tottime``, ...).
    """
    case.validate()
    kernel = get_kernel(case.kernel)
    cgra = get_config(case.config)
    options = VARIANTS[case.variant]()
    profiler = cProfile.Profile()
    result = None
    profiler.enable()
    try:
        result = map_kernel(kernel.cdfg, cgra, options)
    except UnmappableError:
        pass
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top)
    header = (f"profile: {case.name} "
              f"({'mapped' if result is not None else 'unmappable'})")
    return header + "\n" + stream.getvalue(), result


def flame_case(case: BenchCase, hz, repeat=5):
    """Sample ``repeat`` mappings of one case; returns stack counts.

    A single mapping is milliseconds — too fast for a wall-clock
    sampler to see much — so the case is mapped ``repeat`` times
    under one profiler.  Unlike :func:`profile_case` the sampler adds
    no per-call overhead, so the repeats measure the real code.
    """
    from repro.obs.flame import SamplingProfiler

    case.validate()
    kernel = get_kernel(case.kernel)
    cgra = get_config(case.config)
    options = VARIANTS[case.variant]()
    profiler = SamplingProfiler(hz, thread_ids={threading.get_ident()})
    profiler.start()
    try:
        for _ in range(max(1, repeat)):
            try:
                map_kernel(kernel.cdfg, cgra, options)
            except UnmappableError:
                pass
    finally:
        counts = profiler.stop()
    return counts, profiler.samples
