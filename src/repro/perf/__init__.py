"""repro.perf — tracked mapper performance (see README).

The subsystem has three parts:

- :mod:`repro.perf.harness` — times ``map_kernel`` over a case grid
  with warmup/repeat control (``repro bench``);
- :mod:`repro.perf.schema` — the ``BENCH_*.json`` document all
  benchmark producers share, plus baseline comparison with a
  regression threshold (``repro bench --compare``);
- :mod:`repro.perf.profile` — cProfile or flame-sample a single
  mapping (``repro profile``);
- :mod:`repro.perf.ledger` — the append-only run ledger every
  bench/sweep/diff run records to (``repro history``,
  ``repro bench --compare-ledger``).
"""

from repro.perf import ledger
from repro.perf.harness import (
    BenchCase,
    default_cases,
    parse_case,
    render_bench,
    run_bench,
)
from repro.perf.profile import flame_case, profile_case
from repro.perf.schema import (
    BENCH_JSON_SCHEMA,
    bench_payload,
    compare_benchmarks,
    load_bench_file,
    parse_bench_payload,
    render_comparison,
)

__all__ = [
    "BENCH_JSON_SCHEMA",
    "BenchCase",
    "bench_payload",
    "compare_benchmarks",
    "default_cases",
    "flame_case",
    "ledger",
    "load_bench_file",
    "parse_bench_payload",
    "parse_case",
    "profile_case",
    "render_bench",
    "render_comparison",
    "run_bench",
]
