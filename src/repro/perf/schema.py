"""The benchmark JSON document (``BENCH_*.json``) and its comparisons.

One schema serves every producer of compile-time measurements — the
``repro bench`` CLI, the CI ``perf-smoke`` job and the Fig 9 benchmark
— so the repo's performance trajectory is a single series of
comparable documents:

- ``BENCH_N.json`` at the repo root records the suite timing as of
  PR N (committed, the baseline future PRs regress against);
- ``repro bench --json`` emits the same document for the current
  checkout;
- ``repro bench --compare BENCH_N.json --max-regress PCT`` exits
  non-zero when any shared case got more than PCT percent slower.

Wall-clock times are host-dependent: a comparison is only meaningful
against a baseline from comparable hardware (the ``host`` block is
recorded so a surprising regression can be triaged as "different
machine" at a glance).
"""

from __future__ import annotations

import datetime
import json
import platform
import time

from repro import __version__
from repro.errors import ReproError

#: Version of the benchmark JSON document.  Schema 2 added
#: ``recorded_at`` (an ISO-8601 UTC timestamp) and the host's
#: ``hostname`` — provenance fields only, so schema-1 baselines
#: remain readable; the comparison logic never touches either.
BENCH_JSON_SCHEMA = 2

#: Oldest schema :func:`parse_bench_payload` still reads.
BENCH_JSON_SCHEMA_MIN = 1


def host_info():
    """The machine identity recorded with every benchmark document."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "hostname": platform.node(),
    }


def bench_payload(results, warmup, repeat, reducer, created_unix=None):
    """Assemble the benchmark document from per-case results.

    ``results`` is a list of dicts as produced by
    :func:`repro.perf.harness.run_bench` (case identity, reduced
    seconds, raw samples, mapping call counts).
    """
    recorded = created_unix if created_unix is not None else time.time()
    return {
        "kind": "bench",
        "schema": BENCH_JSON_SCHEMA,
        "created_unix": created_unix,
        "recorded_at": datetime.datetime.fromtimestamp(
            recorded, datetime.timezone.utc).isoformat(),
        "package_version": __version__,
        "host": host_info(),
        "warmup": warmup,
        "repeat": repeat,
        "reducer": reducer,
        "cases": list(results),
        "total_seconds": round(sum(r["seconds"] for r in results), 6),
    }


def parse_bench_payload(data):
    """Validate a benchmark document; raises ReproError on junk."""
    if not isinstance(data, dict) or data.get("kind") != "bench":
        raise ReproError("not a benchmark document (kind != 'bench')")
    schema = data.get("schema")
    if not isinstance(schema, int) \
            or not BENCH_JSON_SCHEMA_MIN <= schema <= BENCH_JSON_SCHEMA:
        raise ReproError(
            f"benchmark schema {schema!r} unsupported (this build "
            f"reads {BENCH_JSON_SCHEMA_MIN}..{BENCH_JSON_SCHEMA})")
    cases = data.get("cases")
    if not isinstance(cases, list):
        raise ReproError("benchmark document has no cases list")
    for case in cases:
        if "case" not in case or "seconds" not in case:
            raise ReproError(f"malformed benchmark case: {case!r}")
    return data


def load_bench_file(path):
    """Read and validate a ``BENCH_*.json`` file."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as error:
        raise ReproError(f"cannot read baseline {path}: {error}") \
            from None
    except json.JSONDecodeError as error:
        raise ReproError(f"baseline {path} is not JSON: {error}") \
            from None
    return parse_bench_payload(data)


def compare_benchmarks(current, baseline, max_regress_pct):
    """Per-case slowdowns of ``current`` against ``baseline``.

    Returns ``(rows, regressions)``: one row per case present in both
    documents (``case``, ``baseline_seconds``, ``seconds``,
    ``delta_pct``), and the subset whose slowdown exceeds
    ``max_regress_pct``.  Cases unique to either side are compared
    with nothing and skipped — a PR may legitimately add or retire
    cases.
    """
    base_by_name = {c["case"]: c for c in baseline["cases"]}
    rows = []
    regressions = []
    for case in current["cases"]:
        base = base_by_name.get(case["case"])
        if base is None or not base["seconds"]:
            continue
        delta_pct = ((case["seconds"] - base["seconds"])
                     / base["seconds"] * 100.0)
        row = {
            "case": case["case"],
            "baseline_seconds": base["seconds"],
            "seconds": case["seconds"],
            "delta_pct": round(delta_pct, 2),
        }
        rows.append(row)
        if delta_pct > max_regress_pct:
            regressions.append(row)
    return rows, regressions


def render_comparison(rows, regressions, max_regress_pct):
    """Human-readable comparison table."""
    lines = [f"{'case':34s} {'base':>9s} {'now':>9s} {'delta':>8s}"]
    for row in rows:
        flag = "  << REGRESSION" if row in regressions else ""
        lines.append(
            f"{row['case']:34s} {row['baseline_seconds']:9.3f} "
            f"{row['seconds']:9.3f} {row['delta_pct']:+7.1f}%{flag}")
    verdict = (f"{len(regressions)} case(s) regressed more than "
               f"{max_regress_pct:g}%" if regressions
               else f"no case regressed more than {max_regress_pct:g}%")
    lines.append(verdict)
    return "\n".join(lines)
