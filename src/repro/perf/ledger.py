"""Persistent run ledger: every measured run leaves a record.

The bench trajectory used to be a single frozen ``BENCH_N.json``
point per PR — fine for CI gating, useless for the question "has the
mapper been drifting slower over the last twenty runs on *this*
machine?".  The ledger answers it: an append-only JSONL file under
the cache directory (so ``REPRO_CACHE_DIR`` relocates and isolates it
exactly like cached results) to which every ``repro bench`` /
``repro sweep`` / ``repro diff`` appends one summary line.

Design points:

- **append-only JSONL** — a crashed writer corrupts at most its own
  line, and readers skip malformed lines instead of dying;
- **schema-versioned** like every other repro document, with the
  command name and host recorded so comparisons can filter to
  same-host, same-command entries;
- **never fatal** — :func:`record` swallows OSError and honours
  ``REPRO_LEDGER=0``; telemetry must not fail the run it observes;
- **rolling-median gating** — ``repro bench --compare-ledger``
  synthesizes a baseline document from the median of the last N
  same-host bench entries and reuses the existing
  :func:`~repro.perf.schema.compare_benchmarks`, so one noisy run
  neither gates wrongly nor poisons the baseline.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import statistics
import time

from repro import __version__
from repro.errors import ReproError
from repro.perf.schema import compare_benchmarks
from repro.runtime.cache import default_cache_dir

#: Version of a ledger entry.
LEDGER_SCHEMA = 1

#: Set to ``0``/``false``/``no`` to disable ledger recording.
ENV_LEDGER = "REPRO_LEDGER"

#: File name of the ledger inside the cache directory.
LEDGER_FILENAME = "ledger.jsonl"

#: Default window (entries) for rolling-median comparisons.
DEFAULT_WINDOW = 5


def ledger_path(cache_dir=None):
    """Ledger location: ``<cache dir>/ledger.jsonl``."""
    base = pathlib.Path(cache_dir) if cache_dir else default_cache_dir()
    return base / LEDGER_FILENAME


def recording_enabled():
    """False when ``REPRO_LEDGER`` opts out."""
    return os.environ.get(ENV_LEDGER, "").strip().lower() \
        not in ("0", "false", "no")


def make_entry(command, summary, created_unix=None):
    """One ledger line for a finished run of ``command``."""
    recorded = created_unix if created_unix is not None else time.time()
    return {
        "kind": "ledger-entry",
        "schema": LEDGER_SCHEMA,
        "command": command,
        "recorded_unix": round(recorded, 3),
        "recorded_at": datetime.datetime.fromtimestamp(
            recorded, datetime.timezone.utc).isoformat(),
        "hostname": platform.node(),
        "package_version": __version__,
        "summary": summary,
    }


def append_entry(entry, path):
    """Append one entry as a compact JSON line; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")) + "\n")
    return path


def record(command, summary, cache_dir=None):
    """Best-effort append; returns the entry, or None when skipped.

    The ledger observes runs — it must never fail one.  Disabled via
    ``REPRO_LEDGER=0`` and silent on filesystem errors.
    """
    if not recording_enabled():
        return None
    entry = make_entry(command, summary)
    try:
        append_entry(entry, ledger_path(cache_dir))
    except OSError:
        return None
    return entry


def read_ledger(path=None, command=None, host=None, limit=None):
    """``(entries, skipped)`` oldest-first, with optional filters.

    Malformed lines (torn writes, foreign junk) are counted in
    ``skipped`` and otherwise ignored.  ``limit`` keeps the *newest*
    N entries after filtering.
    """
    path = pathlib.Path(path) if path else ledger_path()
    entries, skipped = [], 0
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError:
        return [], 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(entry, dict) \
                or entry.get("kind") != "ledger-entry" \
                or not isinstance(entry.get("summary"), dict):
            skipped += 1
            continue
        if command is not None and entry.get("command") != command:
            continue
        if host is not None and entry.get("hostname") != host:
            continue
        entries.append(entry)
    if limit is not None and limit >= 0:
        entries = entries[-limit:] if limit else []
    return entries, skipped


def bench_summary(payload):
    """Ledger summary of a bench document (name → reduced seconds)."""
    return {
        "total_seconds": payload.get("total_seconds", 0.0),
        "cases": {case["case"]: case["seconds"]
                  for case in payload.get("cases", [])},
        "warmup": payload.get("warmup"),
        "repeat": payload.get("repeat"),
        "reducer": payload.get("reducer"),
    }


def sweep_summary(result):
    """Ledger summary of a :class:`~repro.runtime.sweep.SweepResult`."""
    return {
        "points": len(result.points),
        "computed": result.computed,
        "cache_hits": result.cache_hits,
        "crashed": len(result.crashed),
        "elapsed_seconds": round(result.elapsed_seconds, 6),
    }


def diff_summary(diff_result):
    """Ledger summary of a :class:`~repro.runtime.diff.DiffResult`."""
    document = diff_result.to_json()
    return {
        "points": document["summary"]["points"],
        "mismatches": document["mismatches"],
        "ok": document["ok"],
        "backends": document["backends"],
        "elapsed_seconds": document["summary"]["elapsed_seconds"],
    }


def compare_to_ledger(payload, entries, window=DEFAULT_WINDOW,
                      max_regress_pct=25.0):
    """Gate a bench document against the rolling ledger median.

    Synthesizes a baseline from the per-case median of the last
    ``window`` bench entries and defers to
    :func:`~repro.perf.schema.compare_benchmarks`.  Returns
    ``(rows, regressions, entries_used)``.
    """
    bench_entries = [entry for entry in entries
                     if entry.get("command") == "bench"][-window:]
    if not bench_entries:
        raise ReproError(
            "ledger holds no bench entries to compare against "
            "(run `repro bench` at least once first)")
    samples = {}
    for entry in bench_entries:
        for name, seconds in (entry["summary"].get("cases")
                              or {}).items():
            if isinstance(seconds, (int, float)):
                samples.setdefault(name, []).append(float(seconds))
    baseline = {"cases": [
        {"case": name, "seconds": statistics.median(values)}
        for name, values in sorted(samples.items())]}
    rows, regressions = compare_benchmarks(
        payload, baseline, max_regress_pct)
    return rows, regressions, len(bench_entries)


#: Unicode block glyphs for terminal sparklines, lowest to highest.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values):
    """Terminal sparkline; flat/empty series render as mid blocks."""
    values = [float(value) for value in values]
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _SPARK_GLYPHS[3] * len(values)
    span = high - low
    return "".join(
        _SPARK_GLYPHS[min(len(_SPARK_GLYPHS) - 1,
                          int((value - low) / span
                              * len(_SPARK_GLYPHS)))]
        for value in values)


def _trend_value(entry):
    """The one number an entry contributes to its command's trend."""
    summary = entry.get("summary", {})
    command = entry.get("command")
    if command == "bench":
        return summary.get("total_seconds")
    return summary.get("elapsed_seconds")


def render_history(entries, skipped=0):
    """What ``repro history`` prints: per-command trends, then rows."""
    if not entries:
        return ("ledger is empty — bench/sweep/diff runs append to it "
                "automatically")
    by_command = {}
    for entry in entries:
        by_command.setdefault(entry.get("command", "?"),
                              []).append(entry)
    lines = []
    for command in sorted(by_command):
        rows = by_command[command]
        values = [value for value in
                  (_trend_value(entry) for entry in rows)
                  if isinstance(value, (int, float))]
        trend = f"  {sparkline(values)}" if len(values) >= 2 else ""
        lines.append(f"{command}: {len(rows)} run(s){trend}")
    lines.append("")
    lines.append(f"{'recorded (UTC)':25s} {'command':8s} "
                 f"{'host':12s} summary")
    for entry in entries:
        summary = entry.get("summary", {})
        if entry.get("command") == "bench":
            detail = (f"total {summary.get('total_seconds', 0):.3f}s, "
                      f"{len(summary.get('cases') or {})} case(s)")
        elif entry.get("command") == "sweep":
            detail = (f"{summary.get('points', 0)} point(s), "
                      f"{summary.get('cache_hits', 0)} hit(s), "
                      f"{summary.get('elapsed_seconds', 0):.3f}s")
        elif entry.get("command") == "diff":
            verdict = "ok" if summary.get("ok") else \
                f"{summary.get('mismatches', 0)} mismatch(es)"
            detail = f"{summary.get('points', 0)} point(s), {verdict}"
        else:
            detail = json.dumps(summary, sort_keys=True)[:60]
        stamp = str(entry.get("recorded_at", "?"))[:19]
        lines.append(f"{stamp:25s} {entry.get('command', '?'):8s} "
                     f"{str(entry.get('hostname', '?'))[:12]:12s} "
                     f"{detail}")
    if skipped:
        lines.append(f"({skipped} malformed line(s) skipped)")
    return "\n".join(lines)
