"""Timing harness for ``map_kernel`` — the repo's perf trajectory.

Times the mapper (nothing else: no assembling, no simulation) across
kernel x config x flow-variant cases with warmup and repeat control,
reducing repeats with a noise-robust statistic.  The default case set
is the headline measurement this repo tracks PR over PR: the full
kernel suite under the ``full`` context-aware flow on HOM32.

Mapping is deterministic, so repeats differ only by machine noise —
the ``min`` reducer (default) is the best estimator of the true cost;
``median`` and ``mean`` are available for reporting tastes.
"""

from __future__ import annotations

import dataclasses
import statistics
import time

from repro.arch.configs import CGRA_CONFIGS, get_config
from repro.errors import ReproError, UnmappableError
from repro.kernels import PAPER_KERNEL_ORDER, get_kernel
from repro.mapping.flow import VARIANTS, map_kernel

#: Reducers collapsing the repeat samples into the recorded seconds.
REDUCERS = {
    "min": min,
    "median": statistics.median,
    "mean": statistics.fmean,
}


@dataclasses.dataclass(frozen=True)
class BenchCase:
    """One timed mapping: kernel x config x flow variant."""

    kernel: str
    config: str
    variant: str

    @property
    def name(self):
        return f"{self.kernel}@{self.config}/{self.variant}"

    def validate(self):
        if self.kernel not in PAPER_KERNEL_ORDER:
            raise ReproError(f"unknown kernel {self.kernel!r}; "
                             f"choose from {list(PAPER_KERNEL_ORDER)}")
        if self.config.upper() not in CGRA_CONFIGS:
            raise ReproError(f"unknown config {self.config!r}; "
                             f"choose from {sorted(CGRA_CONFIGS)}")
        if self.variant not in VARIANTS:
            raise ReproError(f"unknown variant {self.variant!r}; "
                             f"choose from {sorted(VARIANTS)}")
        return self


def parse_case(text):
    """Parse ``kernel@CONFIG/variant`` into a :class:`BenchCase`."""
    try:
        kernel, rest = text.split("@", 1)
        config, variant = rest.split("/", 1)
    except ValueError:
        raise ReproError(
            f"malformed case {text!r}; expected kernel@CONFIG/variant "
            f"(e.g. fft@HOM32/full)") from None
    return BenchCase(kernel, config.upper(), variant).validate()


def default_cases(kernels=None, configs=None, variants=None):
    """The case grid; defaults to the tracked suite x HOM32 x full."""
    kernels = tuple(kernels) if kernels else PAPER_KERNEL_ORDER
    configs = tuple(configs) if configs else ("HOM32",)
    variants = tuple(variants) if variants else ("full",)
    return [BenchCase(k, c.upper(), v).validate()
            for k in kernels for c in configs for v in variants]


def _time_case(case, warmup, repeat):
    """Wall-time one case; returns (samples, result_or_None)."""
    kernel = get_kernel(case.kernel)
    cgra = get_config(case.config)
    options = VARIANTS[case.variant]()
    result = None

    def one():
        nonlocal result
        try:
            result = map_kernel(kernel.cdfg, cgra, options)
        except UnmappableError:
            result = None

    for _ in range(warmup):
        one()
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        one()
        samples.append(time.perf_counter() - started)
    return samples, result


def _case_counts(result):
    """Deterministic mapping statistics recorded with the timing.

    These explain a timing move without rerunning: more ``attempts``
    means the flow needed extra remedy rounds, more ``movs`` means the
    router worked harder.
    """
    if result is None:
        return {"mapped": False}
    return {
        "mapped": True,
        "blocks": len(result.blocks),
        "attempts": sum(b.attempts for b in result.blocks.values()),
        "ops": result.total_ops,
        "movs": result.total_movs,
        "pnops": result.total_pnops,
        "words": result.total_words,
    }


def run_bench(cases, warmup=1, repeat=3, reducer="min", progress=None):
    """Time every case; returns the list the schema wraps.

    ``progress`` (optional callable) receives one line per finished
    case so long runs narrate on stderr instead of going silent.
    """
    if warmup < 0 or repeat < 1:
        raise ReproError("bench needs warmup >= 0 and repeat >= 1")
    try:
        reduce = REDUCERS[reducer]
    except KeyError:
        raise ReproError(f"unknown reducer {reducer!r}; choose from "
                         f"{sorted(REDUCERS)}") from None
    results = []
    for index, case in enumerate(cases):
        samples, result = _time_case(case, warmup, repeat)
        seconds = reduce(samples)
        entry = {
            "case": case.name,
            "kernel": case.kernel,
            "config": case.config,
            "variant": case.variant,
            "seconds": round(seconds, 6),
            "samples": [round(s, 6) for s in samples],
            "counts": _case_counts(result),
        }
        results.append(entry)
        if progress is not None:
            progress(f"[{index + 1}/{len(cases)}] {case.name}: "
                     f"{seconds:.3f}s")
    return results


def render_bench(payload):
    """Human-readable benchmark table for one document."""
    lines = [
        f"repro bench — {len(payload['cases'])} case(s), "
        f"warmup={payload['warmup']} repeat={payload['repeat']} "
        f"reducer={payload['reducer']}",
        f"{'case':34s} {'seconds':>9s}  counts",
    ]
    for case in payload["cases"]:
        counts = case["counts"]
        if counts.get("mapped"):
            detail = (f"blocks={counts['blocks']} "
                      f"attempts={counts['attempts']} "
                      f"ops={counts['ops']} movs={counts['movs']}")
        else:
            detail = "unmappable"
        lines.append(f"{case['case']:34s} {case['seconds']:9.3f}  "
                     f"{detail}")
    lines.append(f"{'total':34s} {payload['total_seconds']:9.3f}")
    return "\n".join(lines)
