"""The architecture search space: designs, symmetry, generators.

A :class:`Design` is one candidate context-memory provisioning — an
array shape plus a per-tile depth assignment.  It is the unit the
exploration engine enumerates, evaluates and ranks; the bridge to the
runtime is :meth:`Design.spec`, which wraps a (design, kernel) pair
into the :class:`~repro.runtime.sweep.PointSpec` the cache, the shard
payloads and the process pool already understand.

**Symmetry.**  The torus interconnect has automorphisms that preserve
the load-store tile set (the top two rows): any rotation or
reflection of the *columns*, and the row reflection ``r -> 1 - r``
(which swaps the two LSU rows and mirrors the rest of the ring).
Two depth assignments related by such a transform describe the same
machine up to tile relabelling, so enumerating both would pay twice
for one answer.  :func:`canonical_depths` picks the lexicographically
smallest equivalent assignment; the generators dedupe through it.

**Static feasibility.**  Two necessary conditions for a kernel to map
cost nothing to check: every op occupies at least one context word
somewhere (so ``total capacity >= n_ops``), and every LOAD/STORE
occupies a word on a load-store tile (so ``LSU capacity >= memory
ops``).  :func:`static_unmappable` is the free "mappability probe"
the adaptive search strategy uses to skip full evaluations it can
prove would report *context overflow* or *unmappable*.
"""

from __future__ import annotations

import dataclasses
import itertools
import random

from repro.arch.configs import (
    CGRA_CONFIGS,
    COLS as DEFAULT_COLS,
    ROWS as DEFAULT_ROWS,
    default_lsu_tiles,
    make_cgra,
)
from repro.errors import ReproError
from repro.mapping.flow import FlowOptions
from repro.runtime.sweep import DEFAULT_SEED, PointSpec

#: The homogeneous depth ladder the DSE example has always swept.
DEPTH_LADDER = (8, 16, 24, 32, 48, 64)

#: Space generator names accepted by :func:`build_space` (and hence
#: ``repro explore --space`` and ``POST /v1/explorations``).
SPACE_KINDS = ("table1", "ladder", "rowband", "colband", "tiles")


@dataclasses.dataclass(frozen=True)
class Design:
    """One candidate architecture: a named CM depth assignment."""

    name: str
    cm_depths: tuple
    rows: int = DEFAULT_ROWS
    cols: int = DEFAULT_COLS

    def __post_init__(self):
        if len(self.cm_depths) != self.rows * self.cols:
            raise ReproError(
                f"design {self.name!r}: {self.rows}x{self.cols} array "
                f"needs {self.rows * self.cols} CM depths, got "
                f"{len(self.cm_depths)}")

    @property
    def n_tiles(self):
        return self.rows * self.cols

    @property
    def total_words(self):
        """Total CM capacity (the Table I 'Total' column)."""
        return sum(self.cm_depths)

    @property
    def lsu_words(self):
        """CM capacity on the load-store tiles."""
        lsu = default_lsu_tiles(self.rows, self.cols)
        return sum(self.cm_depths[i] for i in lsu)

    def canonical_key(self):
        """Identity under the LSU-preserving torus automorphisms."""
        return (self.rows, self.cols,
                canonical_depths(self.cm_depths, self.rows, self.cols))

    def build_cgra(self):
        return make_cgra(self.name, rows=self.rows, cols=self.cols,
                         cm_depths=list(self.cm_depths),
                         lsu_tiles=default_lsu_tiles(self.rows,
                                                     self.cols))

    def spec(self, kernel_name, variant="full", options=None,
             seed=DEFAULT_SEED, backend=None):
        """The :class:`PointSpec` evaluating this design on a kernel."""
        from repro.runtime.backends import validated_backend
        return PointSpec(kernel_name, self.name, variant,
                         options=options, seed=seed,
                         cm_depths=self.cm_depths,
                         rows=self.rows, cols=self.cols,
                         backend=validated_backend(backend))

    def to_json(self):
        return {"name": self.name, "cm_depths": list(self.cm_depths),
                "rows": self.rows, "cols": self.cols}

    def __repr__(self):
        return (f"Design({self.name}: {self.rows}x{self.cols}, "
                f"CM total {self.total_words})")


# ----------------------------------------------------------------------
# Symmetry
# ----------------------------------------------------------------------
def _transforms(rows, cols):
    """Index permutations of the LSU-preserving automorphism group.

    Column rotations and reflections (the dihedral group of the
    column ring) composed with the row reflection ``r -> 1 - r`` —
    every one fixes the "top two rows" LSU set, so two assignments
    related by one are the same machine with the tiles renumbered.
    """
    maps = []
    for flip_rows in (False, True):
        for shift in range(cols):
            for mirror in (False, True):
                mapping = []
                for index in range(rows * cols):
                    row, col = divmod(index, cols)
                    if flip_rows:
                        row = (1 - row) % rows
                    col = (col + shift) % cols
                    if mirror:
                        col = cols - 1 - col
                    mapping.append(row * cols + col)
                maps.append(tuple(mapping))
    return sorted(set(maps))


def canonical_depths(depths, rows=DEFAULT_ROWS, cols=DEFAULT_COLS):
    """Lexicographically smallest symmetric image of ``depths``."""
    depths = tuple(depths)
    return min(tuple(depths[i] for i in mapping)
               for mapping in _transforms(rows, cols))


def dedupe_designs(designs):
    """First-wins dedup by canonical key (symmetry-aware)."""
    seen = set()
    unique = []
    for design in designs:
        key = design.canonical_key()
        if key not in seen:
            seen.add(key)
            unique.append(design)
    return unique


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def _sorted_depths(depths):
    try:
        cleaned = sorted(set(int(d) for d in depths))
    except (TypeError, ValueError):
        raise ReproError(f"CM depths must be positive integers, "
                         f"got {list(depths)!r}") from None
    if not cleaned or any(d < 1 for d in cleaned):
        raise ReproError(f"CM depths must be positive integers, "
                         f"got {list(depths)!r}")
    return tuple(cleaned)


def _shape_tag(rows, cols):
    """Name suffix for non-default array shapes.

    A 2x2 ``hom64`` and the paper's 4x4 ``hom64`` are different
    machines; results are keyed by design name, so the names must
    differ too (mixing ``--rows/--cols`` generators with ``table1``
    would otherwise silently alias them).
    """
    if (rows, cols) == (DEFAULT_ROWS, DEFAULT_COLS):
        return ""
    return f"@{rows}x{cols}"


def homogeneous_designs(depths=DEPTH_LADDER, rows=DEFAULT_ROWS,
                        cols=DEFAULT_COLS):
    """The HOM ladder: every tile at the same depth, one per rung."""
    tag = _shape_tag(rows, cols)
    return [Design(f"hom{depth}{tag}", (depth,) * (rows * cols),
                   rows, cols)
            for depth in _sorted_depths(depths)]


def table1_designs():
    """The paper's Table I configurations as first-class designs."""
    return [Design(name.lower(),
                   tuple(pe.cm_depth for pe in cgra.tiles))
            for name, cgra in CGRA_CONFIGS.items()]


def row_banded_designs(depths=DEPTH_LADDER, rows=DEFAULT_ROWS,
                       cols=DEFAULT_COLS):
    """Every per-row depth assignment, deduped by symmetry.

    Rows are *not* interchangeable (the top two carry the LSUs), so
    this space is nearly the full ``|depths| ** rows`` product — only
    the row reflection folds assignments together.
    """
    depths = _sorted_depths(depths)
    tag = _shape_tag(rows, cols)
    designs = []
    for bands in itertools.product(depths, repeat=rows):
        flat = tuple(depth for depth in bands for _ in range(cols))
        name = "row" + "-".join(str(d) for d in bands) + tag
        designs.append(Design(name, flat, rows, cols))
    return dedupe_designs(designs)


def column_banded_designs(depths=DEPTH_LADDER, rows=DEFAULT_ROWS,
                          cols=DEFAULT_COLS):
    """Every per-column depth assignment, deduped by symmetry.

    Columns of the torus *are* interchangeable, so the dihedral
    symmetry collapses the product hard (necklace counting): the
    generator enumerates ``|depths| ** cols`` tuples but returns one
    design per equivalence class.
    """
    depths = _sorted_depths(depths)
    tag = _shape_tag(rows, cols)
    designs = []
    for bands in itertools.product(depths, repeat=cols):
        flat = tuple(bands[index % cols]
                     for index in range(rows * cols))
        name = "col" + "-".join(str(d) for d in bands) + tag
        designs.append(Design(name, flat, rows, cols))
    return dedupe_designs(designs)


def sampled_tile_designs(depths=DEPTH_LADDER, samples=8, seed=0,
                         rows=DEFAULT_ROWS, cols=DEFAULT_COLS):
    """Seeded random *per-tile* assignments (the space is too big to
    enumerate: ``|depths| ** 16`` for the 4x4).  Deterministic for a
    given ``(depths, samples, seed)``; symmetric duplicates are
    deduped, so fewer than ``samples`` designs may come back.
    """
    depths = _sorted_depths(depths)
    tag = _shape_tag(rows, cols)
    rng = random.Random(seed)
    designs = []
    for index in range(max(0, int(samples))):
        flat = tuple(rng.choice(depths) for _ in range(rows * cols))
        designs.append(Design(f"tile{index}{tag}", flat, rows, cols))
    return dedupe_designs(designs)


def build_space(kinds=("ladder", "table1"), depths=None, samples=8,
                sample_seed=0, rows=None, cols=None):
    """Materialise one candidate list from named generators.

    ``kinds`` is any subset of :data:`SPACE_KINDS`; the result is the
    concatenation in the order given, deduped by symmetry across
    generators (first occurrence keeps its name — include ``table1``
    first if the paper names matter to you).  ``depths`` feeds the
    ladder/banded/tiles generators (default :data:`DEPTH_LADDER`);
    ``rows``/``cols`` scale the array for everything but ``table1``
    (which is 4x4 by definition).
    """
    depths = _sorted_depths(depths) if depths is not None \
        else DEPTH_LADDER
    rows = int(rows) if rows is not None else DEFAULT_ROWS
    cols = int(cols) if cols is not None else DEFAULT_COLS
    if rows < 1 or cols < 1:
        raise ReproError(f"array shape must be at least 1x1, "
                         f"got {rows}x{cols}")
    designs = []
    for kind in kinds:
        if kind == "ladder":
            designs += homogeneous_designs(depths, rows, cols)
        elif kind == "table1":
            designs += table1_designs()
        elif kind == "rowband":
            designs += row_banded_designs(depths, rows, cols)
        elif kind == "colband":
            designs += column_banded_designs(depths, rows, cols)
        elif kind == "tiles":
            designs += sampled_tile_designs(depths, samples,
                                            sample_seed, rows, cols)
        else:
            raise ReproError(
                f"unknown design space {kind!r}; choose from "
                f"{', '.join(SPACE_KINDS)}")
    if not designs:
        raise ReproError("the design space is empty (no generators)")
    designs = dedupe_designs(designs)
    # Results are keyed by design name downstream; two symmetric-ally
    # distinct designs sharing one would silently alias.  The shape
    # tags make this unreachable for the built-in generators — this
    # guards hand-rolled ones.
    names = [design.name for design in designs]
    duplicates = sorted({name for name in names
                         if names.count(name) > 1})
    if duplicates:
        raise ReproError(f"duplicate design names in the space: "
                         f"{duplicates}")
    return designs


# ----------------------------------------------------------------------
# Static feasibility (the free mappability probe)
# ----------------------------------------------------------------------
_KERNEL_DEMAND = {}


def kernel_demand(kernel_name):
    """``(total ops, memory ops)`` of one kernel, memoised."""
    demand = _KERNEL_DEMAND.get(kernel_name)
    if demand is None:
        from repro.ir.opcodes import is_memory
        from repro.kernels import get_kernel

        kernel = get_kernel(kernel_name)
        memory_ops = sum(1 for block in kernel.cdfg.blocks.values()
                         for op in block.dfg.ops
                         if is_memory(op.opcode))
        demand = (kernel.cdfg.n_ops, memory_ops)
        _KERNEL_DEMAND[kernel_name] = demand
    return demand


def static_unmappable(design, kernel_name):
    """True when ``kernel`` provably cannot map onto ``design``.

    Necessary-condition check only: every op needs a context word
    somewhere, every LOAD/STORE needs one on an LSU tile.  A False
    answer promises nothing — the mapper may still fail — but a True
    answer is sound, so a search strategy may record the pair as
    unmapped without paying for the attempt.
    """
    ops, memory_ops = kernel_demand(kernel_name)
    return design.total_words < ops or design.lsu_words < memory_ops


# ----------------------------------------------------------------------
# The minimum-depth ladder (what the DSE example sweeps)
# ----------------------------------------------------------------------
def ladder_spec(kernel_name, depth, rows=DEFAULT_ROWS,
                cols=DEFAULT_COLS):
    """One rung of the minimum-depth ladder, exactly as the example
    has always built it: homogeneous depth, full flow, a slightly
    shortened attempt budget (the ladder asks "does it map at all",
    not "find the best mapping ever")."""
    return PointSpec(kernel_name, f"HOM{depth}", "full",
                     options=FlowOptions.aware(max_attempts=10),
                     cm_depths=(depth,) * (rows * cols))


def ladder_grid_specs(kernels, depths=DEPTH_LADDER):
    """The full depth x kernel grid (the shardable prewarm unit)."""
    return [ladder_spec(kernel, depth)
            for depth in depths for kernel in kernels]
