"""Pareto dominance, frontier extraction, hypervolume.

Everything here works on plain minimisation vectors (tuples of
floats, smaller is better — :func:`repro.dse.objectives.metrics_vector`
produces them), so the module is independent of what the coordinates
mean and property-testable in isolation:

- no frontier point dominates another frontier point;
- every non-frontier point is dominated by some frontier point;
- the frontier is invariant under permutation of the input.

The hypervolume indicator measures how much of the objective box
between the frontier and a reference point the frontier dominates —
the standard scalar for comparing two frontiers of the same space
(a cheap search strategy is judged by the fraction of the exhaustive
frontier's hypervolume it recovers).  Computed by recursive slicing
along the first coordinate: exact, deterministic, and comfortably
fast for the tens-of-designs frontiers DSE produces.
"""

from __future__ import annotations

import math

from repro.errors import ReproError


def dominates(a, b):
    """True when ``a`` is at least as good everywhere, better once."""
    if len(a) != len(b):
        raise ReproError(f"cannot compare a {len(a)}-objective vector "
                         f"with a {len(b)}-objective one")
    return all(x <= y for x, y in zip(a, b)) \
        and any(x < y for x, y in zip(a, b))


def pareto_indices(vectors):
    """Positions of the non-dominated vectors, in input order.

    Duplicates of a frontier vector are all kept (equal vectors do
    not dominate each other), so "no frontier point dominates
    another" holds even with ties.  NaN coordinates are rejected —
    they would make dominance non-transitive and silently corrupt
    the frontier.
    """
    vectors = [tuple(vector) for vector in vectors]
    for vector in vectors:
        if any(math.isnan(value) for value in vector):
            raise ReproError(f"NaN objective value in {vector}")
    frontier = []
    for i, candidate in enumerate(vectors):
        if not any(dominates(other, candidate)
                   for other in vectors):
            frontier.append(i)
    return frontier


def pareto_front(items, key=None):
    """The non-dominated items, in input order.

    ``key`` maps an item to its minimisation vector (default: the
    item is the vector).
    """
    vectors = [key(item) if key is not None else item
               for item in items]
    chosen = set(pareto_indices(vectors))
    return [item for i, item in enumerate(items) if i in chosen]


def reference_point(vectors, margin=0.1):
    """A reference point dominated by every *finite* input vector.

    Per coordinate: the worst (largest) finite value, pushed out by
    ``margin`` of the coordinate's span (at least ``margin`` flat, so
    a degenerate axis still separates from the boundary — boundary
    points would otherwise contribute zero volume).  Coordinates with
    no finite value at all fall back to 1.0.  Deterministic, so two
    runs over the same evaluations agree on the box they are scored
    in.
    """
    vectors = [tuple(vector) for vector in vectors]
    if not vectors:
        raise ReproError("reference_point needs at least one vector")
    dims = len(vectors[0])
    reference = []
    for d in range(dims):
        finite = [vector[d] for vector in vectors
                  if math.isfinite(vector[d])]
        if not finite:
            reference.append(1.0)
            continue
        worst, best = max(finite), min(finite)
        reference.append(worst + max(margin, margin * (worst - best)))
    return tuple(reference)


def hypervolume(vectors, reference):
    """Volume dominated by ``vectors`` within the ``reference`` box.

    Vectors with any coordinate not strictly below the reference
    (infinite ones included) contribute nothing and are dropped;
    dominated vectors are folded away by the union computation
    itself.  The result is invariant under permutation and under
    adding dominated points.
    """
    reference = tuple(reference)
    points = [tuple(vector) for vector in vectors]
    if any(len(point) != len(reference) for point in points):
        raise ReproError("hypervolume: vector/reference length "
                         "mismatch")
    points = [point for point in points
              if all(value < bound and math.isfinite(value)
                     for value, bound in zip(point, reference))]
    return _slice_volume(points, reference)


def _slice_volume(points, reference):
    """Recursive slicing along the first coordinate."""
    if not points:
        return 0.0
    if len(reference) == 1:
        return reference[0] - min(point[0] for point in points)
    points = sorted(points)
    cuts = sorted({point[0] for point in points})
    volume = 0.0
    bounds = cuts[1:] + [reference[0]]
    for cut, upper in zip(cuts, bounds):
        width = upper - cut
        if width <= 0:
            continue
        active = [point[1:] for point in points if point[0] <= cut]
        volume += width * _slice_volume(active, reference[1:])
    return volume
