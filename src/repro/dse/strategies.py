"""Search strategies: which (design, kernel) pairs to pay for.

A strategy drives one exploration through the
:class:`~repro.dse.runner.EvaluationContext` the runner hands it:
``ctx.evaluate(pairs)`` runs experiment points through the parallel
runtime (deduped, budget-clipped, cache-backed) and
``ctx.record_static(design, kernel)`` books a pair that
:func:`~repro.dse.space.static_unmappable` proved infeasible — an
answer that costs nothing.

Three strategies, in increasing cleverness:

- ``exhaustive`` — the reference: every design x every kernel, in
  deterministic order, no shortcuts.  What the frontier "really" is.
- ``random`` — seeded sampling: designs are visited in a
  seed-shuffled order and fully evaluated until the budget runs out.
  The cheap baseline any adaptive method must beat.
- ``adaptive`` — successive halving with cheap mappability probes:
  statically infeasible pairs are recorded for free, every surviving
  design is first evaluated on the *probe* kernel only (the smallest
  one — mapping cost scales with op count), and only designs on the
  Pareto frontier of those partial results graduate to the full
  kernel set.  Designs pruned at the probe stage keep their partial
  (pessimistic) metrics, so the small-area end of the frontier is
  never silently lost.

Every strategy is deterministic given (space order, kernel order,
seed, budget, cache state is irrelevant — a hit and a computation
return the same point).
"""

from __future__ import annotations

import random

from repro.dse.objectives import metrics_vector
from repro.dse.pareto import pareto_indices
from repro.dse.space import kernel_demand, static_unmappable
from repro.errors import ReproError


class ExhaustiveStrategy:
    """The full grid, design-major, in space order."""

    name = "exhaustive"

    def run(self, designs, kernels, ctx):
        ctx.evaluate([(design, kernel)
                      for design in designs for kernel in kernels])


class RandomStrategy:
    """Seeded design sampling under a budget.

    Designs are visited in an order drawn from ``seed``; each visited
    design is evaluated on the whole kernel set.  With no budget this
    covers the grid exactly like ``exhaustive`` (only the evaluation
    order differs — and therefore nothing observable does).
    """

    name = "random"

    def __init__(self, seed=0):
        self.seed = seed

    def run(self, designs, kernels, ctx):
        order = list(designs)
        random.Random(self.seed).shuffle(order)
        for design in order:
            if ctx.exhausted:
                return
            ctx.evaluate([(design, kernel) for kernel in kernels])


class AdaptiveStrategy:
    """Successive halving behind cheap mappability probes.

    1. *Static phase* (free): every pair the capacity bounds prove
       unmappable is recorded without running the mapper.
    2. *Probe phase*: every design still alive is evaluated on the
       probe kernel — the one with the fewest ops, so the round costs
       a fraction of a full-grid sweep (and unmappable attempts,
       the expensive outcome, are concentrated on the cheapest
       kernel).
    3. *Halving rounds*: the remaining kernels are visited cheapest
       first, and after each round only two kinds of design stay
       alive for the next (more expensive) one — the Pareto frontier
       of the partial metrics so far, and the best few designs of
       each *capacity band* (equal total CM words) in the smaller
       half of the bands: two per band after the probe, one per band
       later.  The band quota preserves frontier diversity a cheap
       kernel cannot see — extra capacity only pays off on kernels
       bigger than the ones evaluated so far, so a pure partial
       frontier would collapse onto the smallest viable design.
       A design that failed any evaluated kernel stops graduating
       through bands (the schedule is smallest-kernel-first, so what
       the probe defeats the rest defeats too).

    Survivors are evaluated smallest-capacity first, so if the
    budget dies mid-round it dies on the designs least likely to
    matter.  Pruned designs keep their partial (pessimistic)
    metrics and are reported, but only complete designs are
    frontier-eligible (see :class:`~repro.dse.runner.DesignOutcome`)
    — a probe artefact must not displace a fully measured design.

    The savings scale with how much of the space shares capacity
    bands: heterogeneous spaces (row/column-banded, per-tile) prune
    hard, while a pure homogeneous ladder — every rung its own band
    — degenerates toward exhaustive coverage minus the static and
    probe-failure prunes.
    """

    name = "adaptive"

    @staticmethod
    def probe_kernel(kernels):
        """Cheapest kernel: fewest static ops, name as tie-break."""
        return min(kernels,
                   key=lambda name: (kernel_demand(name)[0], name))

    @staticmethod
    def schedule(kernels):
        """Kernels cheapest-first (static op count, name tie-break)."""
        return sorted(kernels,
                      key=lambda name: (kernel_demand(name)[0], name))

    def run(self, designs, kernels, ctx):
        schedule = self.schedule(kernels)
        for design in designs:
            for kernel in schedule:
                if static_unmappable(design, kernel):
                    ctx.record_static(design, kernel)

        alive = list(designs)
        evaluated_kernels = []
        for index, kernel in enumerate(schedule):
            if ctx.exhausted:
                return
            batch = sorted(alive, key=lambda d: (d.total_words, d.name))
            ctx.evaluate([(design, kernel) for design in batch
                          if not ctx.is_static(design, kernel)])
            evaluated_kernels.append(kernel)
            if index == len(schedule) - 1:
                return
            alive = self._halve(designs, alive, evaluated_kernels,
                                quota=2 if index == 0 else 1, ctx=ctx)

    def _halve(self, designs, alive, evaluated, quota, ctx):
        """One selection round: partial frontier + banded survivors."""
        partial = {design.name:
                   metrics_vector(ctx.partial_metrics(design),
                                  ctx.objectives)
                   for design in designs}

        def flawless(design):
            # Mapped everything evaluated so far (statics excluded
            # from "evaluated" — they are answers, not attempts).
            points = [ctx.results.get((design.name, kernel))
                      for kernel in evaluated
                      if not ctx.is_static(design, kernel)]
            return all(point is not None and point.mapped
                       for point in points)

        frontier = {designs[i].name for i in pareto_indices(
            [partial[design.name] for design in designs])}
        keep = {design.name for design in alive
                if design.name in frontier and flawless(design)}
        bands = {}
        for design in alive:
            if flawless(design):
                bands.setdefault(design.total_words, []).append(design)
        for total in sorted(bands)[:(len(bands) + 1) // 2]:
            # Rank the band by its own partial Pareto front first —
            # a single scalar order would collapse onto whichever
            # objective the cheap kernels happen to favour, and the
            # designs that win on a *different* axis (the reason
            # heterogeneous bands exist) would never graduate.
            members = sorted(bands[total],
                             key=lambda d: (partial[d.name], d.name))
            front = set(pareto_indices([partial[design.name]
                                        for design in members]))
            ranked = ([m for i, m in enumerate(members) if i in front]
                      + [m for i, m in enumerate(members)
                         if i not in front])
            keep.update(design.name for design in ranked[:quota])
        return [design for design in alive if design.name in keep]


#: Strategy factories by CLI/API name.
STRATEGIES = ("exhaustive", "random", "adaptive")


def make_strategy(name, seed=0):
    """Instantiate a strategy by name (``seed`` feeds ``random``)."""
    if name == "exhaustive":
        return ExhaustiveStrategy()
    if name == "random":
        return RandomStrategy(seed=seed)
    if name == "adaptive":
        return AdaptiveStrategy()
    raise ReproError(f"unknown search strategy {name!r}; choose "
                     f"from {', '.join(STRATEGIES)}")
