"""Design-space exploration: search the architecture space the paper
only samples.

The paper's Table I hand-picks four context-memory provisionings and
shows the heterogeneous ones win on energy and area.  This package
turns that observation into a search problem: generate candidate
designs (homogeneous ladders, row/column-banded and per-tile
heterogeneous assignments, the Table I configs themselves —
:mod:`repro.dse.space`), evaluate each against a kernel set through
the parallel/cached runtime (:mod:`repro.dse.runner`), aggregate
per-design objectives — energy, latency, CM area, mappability
(:mod:`repro.dse.objectives`) — and report the Pareto frontier with
its hypervolume (:mod:`repro.dse.pareto`).  Which points get paid for
is a pluggable strategy (:mod:`repro.dse.strategies`): the exhaustive
grid, seeded random sampling, or an adaptive successive-halving
search that prunes with free capacity bounds and a cheap probe kernel
before buying full evaluations.

Entry points: ``repro explore`` on the command line,
``POST /v1/explorations`` on a ``repro serve`` instance, and
:func:`run_exploration` as a library.  Every evaluated point lands in
the same persistent :class:`~repro.runtime.cache.ResultCache` sweeps
use, so explorations are resumable, shardable
(``repro explore --shard i/N`` prewarms slices of the grid) and warm
each other across strategies.

Quickstart::

    from repro.dse import run_exploration, validated_exploration_config

    config = validated_exploration_config(
        space=("ladder", "table1"), kernels=("fir", "fft"),
        strategy="adaptive")
    result = run_exploration(config, workers=4)
    print(result.frontier, result.hypervolume)
"""

from repro.dse.objectives import (
    DEFAULT_OBJECTIVES,
    OBJECTIVE_NAMES,
    design_metrics,
    metrics_vector,
    parse_objectives,
)
from repro.dse.pareto import (
    dominates,
    hypervolume,
    pareto_front,
    pareto_indices,
    reference_point,
)
from repro.dse.runner import (
    DSE_JSON_SCHEMA,
    EvaluationContext,
    ExplorationConfig,
    ExplorationResult,
    exploration_grid_specs,
    minimum_ladder_depths,
    run_exploration,
    validated_exploration_config,
)
from repro.dse.space import (
    DEPTH_LADDER,
    SPACE_KINDS,
    Design,
    build_space,
    canonical_depths,
    column_banded_designs,
    dedupe_designs,
    homogeneous_designs,
    kernel_demand,
    ladder_grid_specs,
    ladder_spec,
    row_banded_designs,
    sampled_tile_designs,
    static_unmappable,
    table1_designs,
)
from repro.dse.strategies import STRATEGIES, make_strategy

__all__ = [
    "DEFAULT_OBJECTIVES",
    "DEPTH_LADDER",
    "DSE_JSON_SCHEMA",
    "Design",
    "EvaluationContext",
    "ExplorationConfig",
    "ExplorationResult",
    "OBJECTIVE_NAMES",
    "SPACE_KINDS",
    "STRATEGIES",
    "build_space",
    "canonical_depths",
    "column_banded_designs",
    "dedupe_designs",
    "design_metrics",
    "dominates",
    "exploration_grid_specs",
    "homogeneous_designs",
    "hypervolume",
    "kernel_demand",
    "ladder_grid_specs",
    "ladder_spec",
    "make_strategy",
    "metrics_vector",
    "minimum_ladder_depths",
    "pareto_front",
    "pareto_indices",
    "parse_objectives",
    "reference_point",
    "row_banded_designs",
    "run_exploration",
    "sampled_tile_designs",
    "static_unmappable",
    "table1_designs",
    "validated_exploration_config",
]
