"""Per-design objectives: aggregate metrics from experiment points.

The exploration engine ranks :class:`~repro.dse.space.Design`
candidates on four axes, each computable from the
:class:`~repro.runtime.sweep.ExperimentPoint` results of the design's
kernel set plus the :class:`~repro.power.area.AreaModel`:

- ``energy`` — mean energy per kernel execution (uJ) over the
  kernels that mapped; lower is better.
- ``latency`` — mean cycle count over the kernels that mapped.
- ``cm_area`` — context-memory area (mm^2), the component the paper
  argues should shrink; a pure function of the design, no execution
  needed.
- ``mappability`` — fraction of the kernel set that mapped; *higher*
  is better (the paper's zero bars are mappability losses).

:func:`metrics_vector` folds a metrics dict into a minimisation
vector for :mod:`repro.dse.pareto` — maximised objectives are
flipped (``1 - mappability``), so dominance is uniformly
"coordinate-wise <=".

A pair that was never evaluated (static prune, exhausted budget,
adaptive skip) counts as *unmapped* here: pessimistic for pruned
designs, exact for pairs :func:`~repro.dse.space.static_unmappable`
proved infeasible.  Designs where nothing mapped get infinite
energy/latency — dominated on those axes by anything that ran.
"""

from __future__ import annotations

import functools
import math

from repro.errors import ReproError
from repro.power.area import AreaModel

#: Objective names in canonical order; ``repro explore --objectives``
#: and ``POST /v1/explorations`` validate against this.
OBJECTIVE_NAMES = ("energy", "latency", "cm_area", "mappability")

#: Objectives where bigger is better (flipped in the vector).
MAXIMISED = frozenset({"mappability"})

DEFAULT_OBJECTIVES = OBJECTIVE_NAMES


def parse_objectives(names):
    """Validate an objective subset; ``None`` means all four."""
    if names is None:
        return DEFAULT_OBJECTIVES
    names = tuple(names)
    unknown = set(names) - set(OBJECTIVE_NAMES)
    if unknown:
        raise ReproError(
            f"unknown objectives {sorted(unknown)}; choose from "
            f"{', '.join(OBJECTIVE_NAMES)}")
    if len(set(names)) != len(names):
        raise ReproError(f"duplicate objectives in {list(names)}")
    if len(names) < 2:
        raise ReproError(
            "a Pareto frontier needs at least two objectives")
    # Canonical order, so 'latency,energy' and 'energy,latency'
    # produce identical vectors, payloads and hypervolumes.
    return tuple(n for n in OBJECTIVE_NAMES if n in names)


@functools.lru_cache(maxsize=4096)
def design_cm_area(design):
    """Context-memory area (mm^2) of one design, memoised.

    A pure function of the (frozen, hashable) design — the adaptive
    strategy recomputes partial metrics every halving round, and
    rebuilding the CGRA and area model each time would be
    O(designs x rounds) wasted work.
    """
    return AreaModel().cgra_breakdown(
        design.build_cgra())["context_memory"]


def design_metrics(design, points, kernels):
    """Aggregate one design's metrics over its kernel results.

    ``points`` maps kernel name to an ``ExperimentPoint`` or ``None``
    (not evaluated — treated as unmapped).  Every metric is computed
    even if the caller only ranks on a subset; the payload reports
    them all.
    """
    kernels = list(kernels)
    if not kernels:
        raise ReproError("design_metrics needs a non-empty kernel set")
    mapped = [points.get(kernel) for kernel in kernels]
    mapped = [point for point in mapped
              if point is not None and point.mapped]
    energy = (sum(point.energy_uj for point in mapped) / len(mapped)
              if mapped else math.inf)
    latency = (sum(point.cycles for point in mapped) / len(mapped)
               if mapped else math.inf)
    return {
        "energy": energy,
        "latency": latency,
        "cm_area": design_cm_area(design),
        "mappability": len(mapped) / len(kernels),
    }


def metrics_vector(metrics, objectives=DEFAULT_OBJECTIVES):
    """Minimisation vector over the chosen objectives."""
    vector = []
    for name in objectives:
        value = metrics[name]
        if name in MAXIMISED:
            value = 1.0 - value
        vector.append(value)
    return tuple(vector)
