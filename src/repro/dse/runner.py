"""The exploration engine: strategies x runtime = Pareto frontiers.

:func:`run_exploration` materialises a design space, hands it to a
search strategy, and executes every evaluation the strategy requests
through :func:`repro.runtime.stream.stream_specs` against the shared
:class:`~repro.runtime.cache.ResultCache` — so every point an
exploration pays for is persisted, a re-run resolves from cache
(resumability for free), and ``repro explore --shard i/N`` can
prewarm slices of the exhaustive grid on independent machines exactly
like sweeps and figures do.

The result is an :class:`ExplorationResult`: per-design aggregate
metrics (:mod:`repro.dse.objectives`), the Pareto frontier over the
chosen objectives and its hypervolume (:mod:`repro.dse.pareto`), plus
runtime accounting (pairs evaluated, cache hits, computations).  Its
:meth:`~ExplorationResult.payload` is the one JSON document the CLI
``--json`` path, the HTTP ``POST /v1/explorations`` job and the tests
all share.

:func:`validated_exploration_config` is the single request validator
behind both doors (CLI flags and the HTTP body), mirroring how
``validated_sweep_specs`` serves ``repro sweep`` and
``POST /v1/sweeps`` — a typo'd kernel or strategy name fails with the
same one-line diagnostic whichever way it arrives.
"""

from __future__ import annotations

import dataclasses
import time

from repro.dse import space as space_mod
from repro.dse.objectives import (
    DEFAULT_OBJECTIVES,
    design_metrics,
    metrics_vector,
    parse_objectives,
)
from repro.dse.pareto import hypervolume, pareto_indices, reference_point
from repro.dse.space import DEPTH_LADDER, build_space, ladder_spec
from repro.dse.strategies import STRATEGIES, make_strategy
from repro.errors import ReproError
from repro.mapping.flow import VARIANTS
from repro.runtime.stream import stream_specs
from repro.runtime.sweep import (
    DEFAULT_SEED,
    DETERMINISTIC_ERRORS,
    validated_sweep_specs,
)

#: Bump when the exploration JSON payload layout changes.
DSE_JSON_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class ExplorationConfig:
    """One fully validated exploration request."""

    designs: tuple
    kernels: tuple
    variant: str = "full"
    objectives: tuple = DEFAULT_OBJECTIVES
    strategy: str = "exhaustive"
    budget: int = None
    seed: int = DEFAULT_SEED
    space: dict = None  # description of how the designs were built
    backend: str = None  # None = the default execution backend

    def spec_for(self, design, kernel_name):
        return design.spec(kernel_name, variant=self.variant,
                           seed=self.seed, backend=self.backend)


def validated_exploration_config(space=None, depths=None, samples=None,
                                 kernels=None, variant=None,
                                 strategy=None, budget=None, seed=None,
                                 objectives=None, rows=None, cols=None,
                                 backend=None):
    """Build an :class:`ExplorationConfig`, validating every axis.

    ``None`` always means "the default".  Raises a one-line
    :class:`ReproError` naming the valid set for any unknown kernel,
    variant, strategy, objective or space kind — before any work (or
    any cache write) happens.
    """
    kinds = tuple(space) if space is not None else ("ladder", "table1")
    unknown = set(kinds) - set(space_mod.SPACE_KINDS)
    if unknown:
        raise ReproError(
            f"unknown design spaces {sorted(unknown)}; choose from "
            f"{', '.join(space_mod.SPACE_KINDS)}")
    if variant is not None and variant not in VARIANTS:
        raise ReproError(f"unknown variant {variant!r}; choose from "
                         f"{sorted(VARIANTS)}")
    if strategy is not None and strategy not in STRATEGIES:
        raise ReproError(f"unknown search strategy {strategy!r}; "
                         f"choose from {', '.join(STRATEGIES)}")
    if budget is not None:
        if not isinstance(budget, int) or isinstance(budget, bool) \
                or budget < 1:
            raise ReproError(f"budget must be a positive integer, "
                             f"got {budget!r}")
    if seed is not None and (not isinstance(seed, int)
                             or isinstance(seed, bool)):
        raise ReproError(f"seed must be an integer, got {seed!r}")
    from repro.runtime.backends import validated_backend
    backend = validated_backend(backend)
    # Kernel validation rides the sweep validator, so the diagnostic
    # is identical to `repro sweep --kernels` (and the default is the
    # same full paper suite).
    kernel_specs = validated_sweep_specs(kernels=kernels,
                                         configs=("HOM64",),
                                         variants=("full",))
    kernel_names = tuple(dict.fromkeys(
        spec.kernel_name for spec in kernel_specs))
    depths = tuple(depths) if depths is not None else DEPTH_LADDER
    # One seed drives everything derived from it — the input data,
    # the random strategy's sampling AND the 'tiles' generator — so
    # replaying an exploration with the seed its payload records
    # rebuilds the identical space.
    seed = seed if seed is not None else DEFAULT_SEED
    designs = build_space(kinds, depths=depths,
                          samples=samples if samples is not None else 8,
                          sample_seed=seed, rows=rows, cols=cols)
    return ExplorationConfig(
        designs=tuple(designs),
        kernels=kernel_names,
        variant=variant if variant is not None else "full",
        objectives=parse_objectives(objectives),
        strategy=strategy if strategy is not None else "exhaustive",
        budget=budget,
        seed=seed,
        space={"kinds": list(kinds), "depths": list(depths),
               "rows": designs[0].rows, "cols": designs[0].cols},
        backend=backend,
    )


def exploration_grid_specs(config):
    """The exhaustive design x kernel grid as plain specs.

    The shardable prewarm unit behind ``repro explore --shard i/N``:
    shards of this grid fill the shared cache, and any strategy run
    afterwards resolves its requests from hits.
    """
    return [config.spec_for(design, kernel)
            for design in config.designs for kernel in config.kernels]


class EvaluationContext:
    """What a strategy sees: evaluate pairs, book free answers.

    Owns the results table, the budget meter and the runtime plumbing
    (workers / cache / progress / mp context).  ``evaluate`` silently
    dedupes pairs already answered and clips to the remaining budget
    — a strategy never needs budget arithmetic of its own.
    """

    def __init__(self, config, workers=1, cache=None, progress=None,
                 mp_context=None):
        self.config = config
        self.objectives = config.objectives
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.mp_context = mp_context
        self.results = {}  # (design name, kernel) -> ExperimentPoint
        self.statics = set()  # pairs proven unmappable for free
        self.spent = 0
        self.cache_hits = 0
        self.computed = 0

    # ------------------------------------------------------------------
    @property
    def exhausted(self):
        return (self.config.budget is not None
                and self.spent >= self.config.budget)

    def is_static(self, design, kernel_name):
        return (design.name, kernel_name) in self.statics

    def record_static(self, design, kernel_name):
        """Book a pair :func:`static_unmappable` answered for free."""
        key = (design.name, kernel_name)
        if key not in self.results:
            self.statics.add(key)

    def partial_metrics(self, design):
        """Metrics from whatever this design has so far (pessimistic:
        unevaluated kernels count as unmapped)."""
        points = {kernel: self.results.get((design.name, kernel))
                  for kernel in self.config.kernels}
        return design_metrics(design, points, self.config.kernels)

    # ------------------------------------------------------------------
    def evaluate(self, pairs):
        """Run every not-yet-answered pair, newest results included.

        Pairs beyond the remaining budget are dropped (in request
        order, so a strategy's most-wanted evaluations survive).  A
        worker crash — anything outside the deterministic outcome set
        — aborts the exploration loudly; "does not map" is an answer,
        a broken pipeline is not.
        """
        fresh = []
        seen = set()
        for design, kernel in pairs:
            key = (design.name, kernel)
            if key in self.results or key in seen:
                continue
            seen.add(key)
            fresh.append((design, kernel))
        if self.config.budget is not None:
            room = max(0, self.config.budget - self.spent)
            fresh = fresh[:room]
        if not fresh:
            return {}
        self.spent += len(fresh)
        by_spec = {}
        for design, kernel in fresh:
            spec = self.config.spec_for(design, kernel).resolve()
            by_spec[spec] = (design.name, kernel)

        def tick(update):
            if update.from_cache:
                self.cache_hits += 1
            else:
                self.computed += 1
            if self.progress is not None:
                self.progress(update)

        answered = {}
        for spec, point in stream_specs(
                list(by_spec), workers=self.workers, cache=self.cache,
                progress=tick, mp_context=self.mp_context):
            if point.error not in DETERMINISTIC_ERRORS:
                raise ReproError(f"{spec.describe()}: {point.error}")
            key = by_spec[spec]
            self.results[key] = point
            self.statics.discard(key)
            answered[key] = point
        return answered


@dataclasses.dataclass
class DesignOutcome:
    """One design's aggregate after the strategy finished.

    ``complete`` — every kernel was answered, by evaluation or by a
    sound static bound.  Only complete designs are frontier-eligible:
    a pruned design's metrics mix pessimistic mappability with
    energy/latency means over whichever (cheap) kernels it happened
    to run, and letting such a vector onto the frontier would let a
    probe artefact displace a fully measured design.
    """

    design: object
    points: dict  # kernel -> ExperimentPoint | None
    metrics: dict
    vector: tuple
    evaluated: int  # pairs actually run (cache hits included)
    static_skips: int  # pairs answered by the capacity bounds
    complete: bool = False
    frontier: bool = False

    def to_json(self):
        kernels = {}
        for kernel, point in self.points.items():
            if point is None:
                kernels[kernel] = {"evaluated": False, "mapped": False}
            else:
                kernels[kernel] = {
                    "evaluated": True,
                    "mapped": point.mapped,
                    "cycles": point.cycles,
                    "energy_uj": point.energy_uj,
                    "error": point.error,
                }
        return {
            **self.design.to_json(),
            "total_words": self.design.total_words,
            "metrics": self.metrics,
            "vector": [value for value in self.vector],
            "evaluated_pairs": self.evaluated,
            "static_skips": self.static_skips,
            "complete": self.complete,
            "frontier": self.frontier,
            "kernels": kernels,
        }


@dataclasses.dataclass
class ExplorationResult:
    """Everything one exploration produced."""

    config: ExplorationConfig
    outcomes: list  # DesignOutcome per design, in space order
    frontier: list  # design names, in space order
    reference: tuple  # hypervolume reference point (or None)
    hypervolume: float
    spent: int
    cache_hits: int
    computed: int
    elapsed_seconds: float

    def payload(self):
        """The canonical JSON document (CLI ``--json`` and serve)."""
        return {
            "schema": DSE_JSON_SCHEMA,
            "kind": "exploration",
            "strategy": self.config.strategy,
            "budget": self.config.budget,
            "seed": self.config.seed,
            "variant": self.config.variant,
            "backend": self.config.backend,
            "objectives": list(self.config.objectives),
            "kernels": list(self.config.kernels),
            "space": dict(self.config.space or {}),
            "summary": {
                "designs": len(self.outcomes),
                "evaluated_pairs": self.spent,
                "cache_hits": self.cache_hits,
                "computed": self.computed,
                "elapsed_seconds": self.elapsed_seconds,
                "frontier_size": len(self.frontier),
                "hypervolume": self.hypervolume,
            },
            "reference": (list(self.reference)
                          if self.reference is not None else None),
            "frontier": list(self.frontier),
            "designs": [outcome.to_json() for outcome in self.outcomes],
        }


def run_exploration(config, workers=1, cache=None, progress=None,
                    mp_context=None):
    """Execute one exploration end to end.

    The frontier is computed over *complete* designs (every kernel
    answered — see :class:`DesignOutcome`) that mapped at least one
    kernel (a machine that runs nothing is not a design point, even
    if its area is unbeatable); the hypervolume scores the frontier
    against a reference derived from all eligible vectors, so two
    strategies exploring the same space are measured in comparable
    boxes (cross-strategy comparisons should rescore both frontiers
    in one box — see :func:`repro.dse.pareto.hypervolume`).
    """
    from repro.obs import trace

    with trace.span("exploration", strategy=config.strategy,
                    designs=len(config.designs),
                    kernels=len(config.kernels)):
        return _run_exploration(config, workers, cache, progress,
                                mp_context)


def _run_exploration(config, workers, cache, progress, mp_context):
    started = time.perf_counter()
    ctx = EvaluationContext(config, workers=workers, cache=cache,
                            progress=progress, mp_context=mp_context)
    strategy = make_strategy(config.strategy, seed=config.seed)
    strategy.run(list(config.designs), list(config.kernels), ctx)

    outcomes = []
    for design in config.designs:
        points = {kernel: ctx.results.get((design.name, kernel))
                  for kernel in config.kernels}
        metrics = design_metrics(design, points, config.kernels)
        statics = sum(1 for kernel in config.kernels
                      if (design.name, kernel) in ctx.statics)
        evaluated = sum(1 for point in points.values()
                        if point is not None)
        outcomes.append(DesignOutcome(
            design=design, points=points, metrics=metrics,
            vector=metrics_vector(metrics, config.objectives),
            evaluated=evaluated, static_skips=statics,
            complete=evaluated + statics == len(config.kernels)))

    eligible = [outcome for outcome in outcomes
                if outcome.complete
                and outcome.metrics["mappability"] > 0]
    chosen = set(pareto_indices([o.vector for o in eligible]))
    for index, outcome in enumerate(eligible):
        outcome.frontier = index in chosen
    frontier = [outcome.design.name for outcome in outcomes
                if outcome.frontier]

    reference = None
    volume = 0.0
    if eligible:
        reference = reference_point([o.vector for o in eligible])
        volume = hypervolume(
            [o.vector for o in eligible if o.frontier], reference)
    return ExplorationResult(
        config=config, outcomes=outcomes, frontier=frontier,
        reference=reference, hypervolume=volume, spent=ctx.spent,
        cache_hits=ctx.cache_hits, computed=ctx.computed,
        elapsed_seconds=time.perf_counter() - started)


# ----------------------------------------------------------------------
# The minimum-depth ladder (the DSE example's search, as a library)
# ----------------------------------------------------------------------
def minimum_ladder_depths(kernels, depths=DEPTH_LADDER, workers=1,
                          cache=None, progress=None, round_report=None):
    """Per kernel: ``(smallest mappable homogeneous depth, point)``.

    Ascends the ladder in parallel rounds; a kernel leaves the pool
    at its first mappable depth, so no work is spent above a
    kernel's answer.  ``round_report(depth, SweepResult)`` fires
    after each round (the example prints its per-depth summary line
    from it).  A crash — anything outside the deterministic outcome
    set — raises; "does not map at this depth" is an answer, a broken
    pipeline is not.
    """
    from repro.runtime.pool import run_sweep

    remaining = list(kernels)
    smallest = {}
    for depth in depths:
        if not remaining:
            break
        specs = [ladder_spec(kernel, depth) for kernel in remaining]
        result = run_sweep(specs, workers=workers, cache=cache,
                           progress=progress)
        if round_report is not None:
            round_report(depth, result)
        for spec, point in zip(result.specs, result.points):
            if point.error not in DETERMINISTIC_ERRORS:
                raise ReproError(f"{spec.describe()}: {point.error}")
            if point.mapped:
                smallest[spec.kernel_name] = (depth, point)
        remaining = [kernel for kernel in remaining
                     if kernel not in smallest]
    return smallest
