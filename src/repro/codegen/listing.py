"""Human-readable assembly listings.

``format_program`` renders the per-tile context streams the way the
paper's Fig 2/3 visualise them — one column per tile, one segment per
basic block — which makes context-memory hot spots visible at a
glance.
"""

from __future__ import annotations


def format_block(block, cgra, only_busy_tiles=True):
    """Listing of one block's per-tile streams."""
    lines = [f"block {block.name} (L={block.length})"]
    for tile in range(cgra.n_tiles):
        stream = block.tile_streams[tile]
        if not stream and only_busy_tiles:
            continue
        name = cgra.tile(tile).name
        lines.append(f"  {name} ({len(stream)} words)")
        for instr in stream:
            lines.append(f"    {instr!r}")
    return "\n".join(lines)


def format_program(program, only_busy_tiles=True):
    """Full listing of an assembled program."""
    lines = [
        f"kernel {program.kernel_name} on {program.cgra.name}",
        f"entry: {program.entry}",
    ]
    for block in program.blocks.values():
        lines.append(format_block(block, program.cgra, only_busy_tiles))
    lines.append("context words per tile: "
                 + " ".join(f"{program.tile_words(t)}"
                            for t in range(program.cgra.n_tiles)))
    return "\n".join(lines)


def usage_chart(program, width=32):
    """ASCII bar chart of per-tile context usage vs capacity (Fig 2)."""
    lines = [f"context usage on {program.cgra.name}:"]
    for tile in range(program.cgra.n_tiles):
        used = program.tile_words(tile)
        depth = program.cgra.cm_depth(tile)
        filled = min(width, round(width * used / depth)) if depth else 0
        bar = "#" * filled + "." * (width - filled)
        name = program.cgra.tile(tile).name
        lsu = "L" if program.cgra.tile(tile).has_lsu else " "
        lines.append(f"  {name:>3} {lsu} [{bar}] {used:3d}/{depth}")
    return "\n".join(lines)
