"""Assembler and binary encoder for the CGRA's context memories.

- :mod:`repro.codegen.isa` — the instruction objects a tile executes
  (operation, MOV, PNOP) and operand source descriptors;
- :mod:`repro.codegen.assembler` — turns a
  :class:`~repro.mapping.result.MappingResult` into per-tile,
  per-block instruction streams with folded PNOPs, enforcing the
  context-memory budget (the paper's ``n(Mo) + n(pnop) <= n(I)``);
- :mod:`repro.codegen.binary` — 32-bit interchange encoding with an
  exact round-trip (the architectural context word itself is 20 bits
  of decoded configuration, see :data:`repro.arch.pe.CONTEXT_WORD_BITS`);
- :mod:`repro.codegen.listing` — human-readable assembly listings.
"""

from repro.codegen.isa import Instruction, Source
from repro.codegen.assembler import Program, BlockProgram, assemble

__all__ = ["Instruction", "Source", "Program", "BlockProgram", "assemble"]
