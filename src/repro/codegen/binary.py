"""Binary encoding of context streams.

The architectural context word of the paper's PE is 20 bits of decoded
configuration (:data:`repro.arch.pe.CONTEXT_WORD_BITS`); that width is
what the area/energy models charge for.  For tooling — dumping
contexts to files, loaders, diffing — this module defines a 40-bit
interchange encoding with an exact round-trip, after allocating
*physical* registers:

- RF slots: symbol variables get persistent slots per home tile,
  block-local values get per-block slots (first-use order);
- CRF slots: constants sorted per tile;
- port sources encode the neighbour direction (2 bits on a torus).

Word layout (little-endian bit offsets)::

    kind<2> | opcode<5> | dst<6> | src0<9> | src1<9> | src2<9>
    src: stype<2> (0 rf, 1 crf, 2 port, 3 none) | idx<7>
    pnop: kind<2> == 2, count in bits 2..21

Exceeding a physical resource raises
:class:`~repro.errors.EncodingError` — the same class of failure a
real assembler would report.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.ir.opcodes import Opcode

WORD_BITS = 40

_OPCODES = list(Opcode)
_OPCODE_INDEX = {opcode: index for index, opcode in enumerate(_OPCODES)}

_KIND_OP = 0
_KIND_MOV = 1
_KIND_PNOP = 2

_STYPE_RF = 0
_STYPE_CRF = 1
_STYPE_PORT = 2
_STYPE_NONE = 3

_DST_NONE = 63


class RegisterAllocator:
    """Physical register allocation for one tile."""

    def __init__(self, rrf_words, crf_values):
        self.rrf_words = rrf_words
        self.symbol_slots = {}
        self.local_slots = {}
        self.crf_index = {value: index
                          for index, value in enumerate(sorted(crf_values))}
        if len(self.crf_index) > 127:
            raise EncodingError("CRF image exceeds encodable range")

    def begin_block(self):
        self.local_slots = {}

    def slot_for(self, uid):
        """RF slot of a block-local value (allocated on first use)."""
        slot = self.local_slots.get(uid)
        if slot is None:
            slot = len(self.symbol_slots) + len(self.local_slots)
            if slot >= self.rrf_words:
                raise EncodingError(
                    f"register file overflow: {slot + 1} live values, "
                    f"{self.rrf_words} registers")
            self.local_slots[uid] = slot
        return slot

    def crf_slot(self, value):
        try:
            return self.crf_index[value]
        except KeyError:
            raise EncodingError(
                f"constant {value} missing from CRF image") from None


def _direction(cgra, tile, neighbor):
    neighbors = cgra.neighbors(tile)
    try:
        return neighbors.index(neighbor)
    except ValueError:
        raise EncodingError(
            f"tile {neighbor} is not a neighbour of {tile}") from None


def _encode_source(source, allocator, cgra, tile):
    if source is None:
        return (_STYPE_NONE << 7)
    if source.kind == "rf":
        return (_STYPE_RF << 7) | allocator.slot_for(source.uid)
    if source.kind == "crf":
        return (_STYPE_CRF << 7) | allocator.crf_slot(source.value)
    return (_STYPE_PORT << 7) | _direction(cgra, tile, source.tile)


def encode_instruction(instr, allocator, cgra, tile):
    """Encode one instruction into a WORD_BITS-bit integer."""
    if instr.kind == "pnop":
        if instr.count >= (1 << 20):
            raise EncodingError(f"pnop count {instr.count} too large")
        return _KIND_PNOP | (instr.count << 2)
    kind = _KIND_MOV if instr.kind == "mov" else _KIND_OP
    word = kind
    word |= _OPCODE_INDEX[instr.opcode] << 2
    if instr.dest_uid is None:
        dst = _DST_NONE
    else:
        dst = allocator.slot_for(instr.dest_uid)
    word |= dst << 7
    sources = list(instr.sources) + [None] * (3 - len(instr.sources))
    for index, source in enumerate(sources[:3]):
        word |= _encode_source(source, allocator, cgra, tile) << (13 + 9 * index)
    return word


def decode_word(word):
    """Decode a word into a structural description (no uids)."""
    kind = word & 0b11
    if kind == _KIND_PNOP:
        return {"kind": "pnop", "count": word >> 2}
    opcode = _OPCODES[(word >> 2) & 0b11111]
    dst = (word >> 7) & 0b111111
    sources = []
    for index in range(3):
        field = (word >> (13 + 9 * index)) & 0x1FF
        stype = field >> 7
        idx = field & 0x7F
        if stype == _STYPE_NONE:
            continue
        name = {_STYPE_RF: "rf", _STYPE_CRF: "crf", _STYPE_PORT: "port"}[stype]
        sources.append({"stype": name, "index": idx})
    return {
        "kind": "mov" if kind == _KIND_MOV else "op",
        "opcode": opcode,
        "dst": None if dst == _DST_NONE else dst,
        "sources": sources,
    }


def encode_program(program):
    """Encode a whole program: tile -> list of (block, [words]).

    Symbol variables are allocated persistent slots in their home
    tiles first; block-local allocation restarts per block.
    """
    cgra = program.cgra
    allocators = {}
    for tile in range(cgra.n_tiles):
        allocators[tile] = RegisterAllocator(
            cgra.tile(tile).rrf_words, program.const_images[tile])
    for symbol, (home, _) in sorted(program.symbol_inits.items()):
        allocator = allocators[home]
        slot = len(allocator.symbol_slots)
        if slot >= allocator.rrf_words:
            raise EncodingError(
                f"tile {home}: too many symbol variables homed")
        allocator.symbol_slots[symbol] = slot
    images = {tile: [] for tile in range(cgra.n_tiles)}
    for name, block in program.blocks.items():
        for tile in range(cgra.n_tiles):
            allocator = allocators[tile]
            allocator.begin_block()
            words = [encode_instruction(instr, allocator, cgra, tile)
                     for instr in block.tile_streams[tile]]
            images[tile].append((name, words))
    return images
