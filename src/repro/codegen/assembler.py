"""Assembler: mapping result -> per-tile context streams.

For every basic block and tile, the assembler walks the occupied issue
slots in cycle order, resolves each operand to a concrete datapath
source (own RF, own CRF, or a neighbour's output port) and folds idle
runs into PNOP instructions, per the PE contract:

- a leading or interior idle run costs one ``PNOP(n)``;
- trailing idle is free — the tile sleeps until the global block-end
  broadcast;
- a tile with no instructions in a block stores nothing for it.

The per-tile word count is checked against the context-memory depth —
:class:`~repro.errors.ContextOverflowError` reproduces what physically
happens when a context-unaware mapping is loaded onto a small-CM
configuration (why the paper runs basic mappings only on HOM64).

Operand resolution doubles as a mapping verifier: if a value is
neither in the tile's RF in time nor on a neighbour's port at exactly
the right cycle, the mapping was unsound and assembly fails loudly.
"""

from __future__ import annotations

from repro.errors import CodegenError, ContextOverflowError
from repro.ir.cdfg import Branch
from repro.codegen.isa import Instruction, Source


class BlockProgram:
    """Per-tile instruction streams for one basic block."""

    def __init__(self, name, length, tile_streams, terminator,
                 symbol_reads, symbol_commits, branch_uid=None):
        self.name = name
        self.length = length
        #: tile index -> list[Instruction]
        self.tile_streams = tile_streams
        self.terminator = terminator
        #: list of (symbol, home tile, entry-value uid)
        self.symbol_reads = symbol_reads
        #: list of (symbol, home tile, exit-value uid)
        self.symbol_commits = symbol_commits
        #: data-node uid of the branch condition (Branch blocks only)
        self.branch_uid = branch_uid

    def words(self, tile):
        """Context words this block occupies on a tile."""
        return len(self.tile_streams[tile])

    def __repr__(self):
        total = sum(len(stream) for stream in self.tile_streams)
        return f"BlockProgram({self.name}: L={self.length}, {total} words)"


class Program:
    """A fully assembled kernel: one context image per tile."""

    def __init__(self, kernel_name, cgra, blocks, entry, const_images,
                 symbol_inits):
        self.kernel_name = kernel_name
        self.cgra = cgra
        self.blocks = blocks
        self.entry = entry
        #: tile -> sorted tuple of CRF-resident constants
        self.const_images = const_images
        #: symbol -> (home tile, initial value)
        self.symbol_inits = symbol_inits

    def tile_words(self, tile):
        return sum(block.words(tile) for block in self.blocks.values())

    def check_fits(self):
        """Raise ContextOverflowError if any tile overflows its CM."""
        for tile in range(self.cgra.n_tiles):
            used = self.tile_words(tile)
            depth = self.cgra.cm_depth(tile)
            if used > depth:
                raise ContextOverflowError(
                    f"{self.kernel_name} on {self.cgra.name}: tile "
                    f"{self.cgra.tile(tile).name} needs {used} context "
                    f"words but has {depth}")
        return True

    def total_words(self):
        return sum(self.tile_words(t) for t in range(self.cgra.n_tiles))

    def __repr__(self):
        return (f"Program({self.kernel_name}@{self.cgra.name}: "
                f"{self.total_words()} words)")


def _resolve(pm, dfg_nodes, value_uid, tile, cycle):
    """Operand source for ``value_uid`` read at ``(tile, cycle)``."""
    node = dfg_nodes.get(value_uid)
    if node is not None and node.is_const:
        return Source.crf(node.value)
    rf = pm.rf_cycle(value_uid, tile)
    if rf is not None and rf <= cycle:
        return Source.rf(value_uid)
    neighbors = pm.cgra.neighbors(tile)
    for event_tile, event_cycle in pm.port_events.get(value_uid, ()):
        if event_cycle == cycle and event_tile in neighbors:
            return Source.port(event_tile, value_uid)
    raise CodegenError(
        f"value {value_uid} unreadable at tile {tile} cycle {cycle}: "
        f"mapping is unsound")


def _assemble_block(block_mapping, cgra):
    """Build the per-tile instruction streams of one block."""
    pm = block_mapping.pm
    dfg = block_mapping.dfg
    nodes = {node.uid: node for node in dfg.data}
    ops = {op.uid: op for op in dfg.ops}
    streams = {}
    for tile in range(cgra.n_tiles):
        slots = sorted(pm.tile_cycles[tile].items())
        stream = []
        cursor = 0
        for cycle, descriptor in slots:
            if cycle > cursor:
                stream.append(Instruction.pnop(cycle - cursor, cursor))
            kind, uid = descriptor
            if kind == "op":
                op = ops[uid]
                sources = [_resolve(pm, nodes, operand.uid, tile, cycle)
                           for operand in op.operands]
                dest = op.result.uid if op.result is not None else None
                stream.append(Instruction.op(op.opcode, sources, dest,
                                             cycle))
            else:
                source = _resolve(pm, nodes, uid, tile, cycle)
                stream.append(Instruction.mov(source, uid, cycle))
            cursor = cycle + 1
        streams[tile] = stream
    return streams


def assemble(result, cdfg, enforce_fit=True):
    """Assemble a :class:`~repro.mapping.result.MappingResult`.

    ``cdfg`` supplies terminators and symbol declarations (the mapping
    result holds the per-block transformed DFGs).
    """
    cgra = result.cgra
    homes = {}
    for block_mapping in result.blocks.values():
        homes.update(block_mapping.new_homes)
    blocks = {}
    for name, block_mapping in result.blocks.items():
        streams = _assemble_block(block_mapping, cgra)
        dfg = block_mapping.dfg
        terminator = cdfg.block(name).terminator
        branch_uid = None
        if isinstance(terminator, Branch):
            branch_uid = terminator.condition.uid
        symbol_reads = []
        for symbol, node in dfg.symbol_inputs.items():
            home = homes.get(symbol)
            if home is None:
                raise CodegenError(
                    f"symbol {symbol!r} read in {name} but never homed")
            symbol_reads.append((symbol, home, node.uid))
        symbol_commits = []
        for symbol, node in dfg.symbol_outputs.items():
            home = homes.get(symbol)
            if home is None:
                raise CodegenError(
                    f"symbol {symbol!r} written in {name} but never homed")
            symbol_commits.append((symbol, home, node.uid))
        blocks[name] = BlockProgram(
            name, block_mapping.length, streams, terminator,
            symbol_reads, symbol_commits, branch_uid)
    const_images = {}
    for tile in range(cgra.n_tiles):
        values = set()
        for block_mapping in result.blocks.values():
            values |= block_mapping.pm.const_tiles[tile]
        const_images[tile] = tuple(sorted(values))
    symbol_inits = {}
    for symbol, init in cdfg.symbols.items():
        home = homes.get(symbol)
        if home is not None:
            symbol_inits[symbol] = (home, init)
    program = Program(cdfg.name, cgra, blocks, cdfg.entry, const_images,
                      symbol_inits)
    if enforce_fit:
        program.check_fits()
    return program
