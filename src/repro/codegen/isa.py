"""Tile-level instruction set.

Each context-memory word decodes into one of three instruction kinds
(Sec II of the paper): an *operation* (including control, i.e. BR),
a *move*, or a *programmable nop* folding a run of idle cycles.

Operand sources mirror the PE datapath (Fig 1b):

- ``rf`` — the tile's regular register file (a value landed earlier);
- ``crf`` — the constant register file, preloaded at configuration;
- ``port`` — a torus neighbour's output register (its previous-cycle
  result).

Values are named by their DFG data-node uid; physical register
allocation happens in :mod:`repro.codegen.binary`.
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.ir.opcodes import Opcode


class Source:
    """Operand source descriptor."""

    __slots__ = ("kind", "tile", "uid", "value")

    def __init__(self, kind, tile=None, uid=None, value=None):
        if kind not in ("rf", "crf", "port"):
            raise CodegenError(f"bad source kind {kind!r}")
        self.kind = kind
        self.tile = tile
        self.uid = uid
        self.value = value

    @classmethod
    def rf(cls, uid):
        return cls("rf", uid=uid)

    @classmethod
    def crf(cls, value):
        return cls("crf", value=value)

    @classmethod
    def port(cls, tile, uid):
        return cls("port", tile=tile, uid=uid)

    def __eq__(self, other):
        return (isinstance(other, Source)
                and (self.kind, self.tile, self.uid, self.value)
                == (other.kind, other.tile, other.uid, other.value))

    def __hash__(self):
        return hash((self.kind, self.tile, self.uid, self.value))

    def __repr__(self):
        if self.kind == "rf":
            return f"rf[{self.uid}]"
        if self.kind == "crf":
            return f"crf[{self.value}]"
        return f"port[T{self.tile + 1}:{self.uid}]"


class Instruction:
    """One context-memory word's worth of behaviour."""

    __slots__ = ("kind", "opcode", "sources", "dest_uid", "count", "cycle")

    def __init__(self, kind, opcode=None, sources=(), dest_uid=None,
                 count=0, cycle=0):
        if kind not in ("op", "mov", "pnop"):
            raise CodegenError(f"bad instruction kind {kind!r}")
        self.kind = kind
        self.opcode = opcode
        self.sources = list(sources)
        self.dest_uid = dest_uid
        self.count = count
        self.cycle = cycle

    @classmethod
    def op(cls, opcode, sources, dest_uid, cycle):
        if not isinstance(opcode, Opcode):
            raise CodegenError(f"bad opcode {opcode!r}")
        return cls("op", opcode=opcode, sources=sources, dest_uid=dest_uid,
                   cycle=cycle)

    @classmethod
    def mov(cls, source, dest_uid, cycle):
        return cls("mov", opcode=Opcode.MOV, sources=[source],
                   dest_uid=dest_uid, cycle=cycle)

    @classmethod
    def pnop(cls, count, cycle):
        if count < 1:
            raise CodegenError("pnop must cover at least one cycle")
        return cls("pnop", count=count, cycle=cycle)

    @property
    def issue_cycles(self):
        """Cycles this instruction occupies in the lockstep schedule."""
        return self.count if self.kind == "pnop" else 1

    def __repr__(self):
        if self.kind == "pnop":
            return f"@{self.cycle} pnop x{self.count}"
        srcs = ", ".join(repr(s) for s in self.sources)
        dest = f" -> {self.dest_uid}" if self.dest_uid is not None else ""
        return f"@{self.cycle} {self.opcode.value} {srcs}{dest}"
