"""Application intermediate representation (CDFG / DFG).

The paper models applications as a Control Data Flow Graph (CDFG): a
directed graph of basic blocks, each basic block holding a data-flow
graph (DFG) of *operation nodes* and *data nodes*.  Values that live
across basic blocks are *symbol variables*; they are the only channel
between blocks and are pinned to register files by the mapper (the
paper's "location constraints").

Public surface:

- :mod:`repro.ir.opcodes` — the operation set and its semantics.
- :mod:`repro.ir.dfg` — per-block data-flow graphs.
- :mod:`repro.ir.cdfg` — basic blocks, terminators, whole-kernel graphs.
- :mod:`repro.ir.builder` — a fluent frontend for writing kernels.
- :mod:`repro.ir.analysis` — ASAP/ALAP, mobility, fan-outs, block weights.
- :mod:`repro.ir.interp` — the golden-model interpreter.
- :mod:`repro.ir.validate` — structural validation.
"""

from repro.ir.opcodes import Opcode
from repro.ir.dfg import DataNode, OperationNode, DFG
from repro.ir.cdfg import BasicBlock, CDFG, Branch, Jump, Exit
from repro.ir.builder import KernelBuilder, Val, ArrayRef
from repro.ir.interp import Interpreter, InterpResult
from repro.ir.validate import validate_cdfg, validate_dfg

__all__ = [
    "Opcode",
    "DataNode",
    "OperationNode",
    "DFG",
    "BasicBlock",
    "CDFG",
    "Branch",
    "Jump",
    "Exit",
    "KernelBuilder",
    "Val",
    "ArrayRef",
    "Interpreter",
    "InterpResult",
    "validate_cdfg",
    "validate_dfg",
]
