"""Operation set of the target CGRA and its fixed-point semantics.

The CGRA of the paper computes on 32-bit integer data (fixed point for
the signal-processing kernels).  Each PE's ALU is a multi-operation
functional unit; LOAD/STORE are only legal on load-store tiles.

Every opcode carries:

- ``arity`` — number of data operands;
- ``has_result`` — STORE and BR produce no value;
- ``is_memory`` — must be bound to an LSU tile;
- ``is_commutative`` — the binder may swap operands;
- ``cpu_cycles`` — cost on the scalar or1k-like CPU baseline (the
  paper compares against an or1k compiled at -O3; we use classic
  in-order costs: single-cycle ALU, 3-cycle multiply, 2-cycle load,
  single-cycle store, 3-cycle taken branch).

The :func:`evaluate` function is the single source of truth for
operation semantics; the golden interpreter, the CPU model and the
CGRA simulator all call it, so functional equivalence across backends
is by construction.
"""

from __future__ import annotations

import enum

from repro.errors import IRError

_MASK32 = 0xFFFFFFFF
_SIGN32 = 0x80000000


def _wrap32(value):
    """Wrap an unbounded Python int to signed 32-bit two's complement."""
    value &= _MASK32
    if value & _SIGN32:
        value -= 1 << 32
    return value


class Opcode(enum.Enum):
    """Instruction set of the multi-operation functional unit."""

    # Arithmetic / logic (2 operands).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    MIN = "min"
    MAX = "max"
    # Comparisons (2 operands, produce 0/1).
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    # Ternary select: select(cond, a, b) == a if cond else b.
    SELECT = "select"
    # Unary.
    NEG = "neg"
    NOT = "not"
    ABS = "abs"
    # Memory (LSU tiles only).  LOAD addr -> value; STORE addr, value.
    LOAD = "load"
    STORE = "store"
    # Routing instruction inserted by the mapper (1 operand, identity).
    MOV = "mov"
    # Block terminator condition consumer: BR cond (no result).
    BR = "br"

    def __repr__(self):
        return f"Opcode.{self.name}"


_ARITY = {
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.AND: 2,
    Opcode.OR: 2,
    Opcode.XOR: 2,
    Opcode.SLL: 2,
    Opcode.SRL: 2,
    Opcode.SRA: 2,
    Opcode.MIN: 2,
    Opcode.MAX: 2,
    Opcode.EQ: 2,
    Opcode.NE: 2,
    Opcode.LT: 2,
    Opcode.LE: 2,
    Opcode.GT: 2,
    Opcode.GE: 2,
    Opcode.SELECT: 3,
    Opcode.NEG: 1,
    Opcode.NOT: 1,
    Opcode.ABS: 1,
    Opcode.LOAD: 1,
    Opcode.STORE: 2,
    Opcode.MOV: 1,
    Opcode.BR: 1,
}

_NO_RESULT = frozenset({Opcode.STORE, Opcode.BR})
_MEMORY = frozenset({Opcode.LOAD, Opcode.STORE})
_COMMUTATIVE = frozenset(
    {
        Opcode.ADD,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.MIN,
        Opcode.MAX,
        Opcode.EQ,
        Opcode.NE,
    }
)

# or1k-like in-order scalar costs (cycles per dynamically executed op).
_CPU_CYCLES = {
    Opcode.MUL: 3,
    Opcode.LOAD: 2,
    Opcode.STORE: 1,
    Opcode.BR: 3,
}
_DEFAULT_CPU_CYCLES = 1


def arity(opcode):
    """Number of data operands the opcode consumes."""
    return _ARITY[opcode]


def has_result(opcode):
    """True if the opcode produces a value."""
    return opcode not in _NO_RESULT


def is_memory(opcode):
    """True if the opcode requires a load-store tile."""
    return opcode in _MEMORY


def is_commutative(opcode):
    """True if operand order is irrelevant."""
    return opcode in _COMMUTATIVE


def cpu_cycles(opcode):
    """Latency of the opcode on the or1k-like CPU baseline."""
    return _CPU_CYCLES.get(opcode, _DEFAULT_CPU_CYCLES)


def evaluate(opcode, operands):
    """Evaluate a non-memory opcode on 32-bit signed operands.

    Memory operations and BR are handled by the executing machine (they
    touch memory / control state); passing them here raises
    :class:`~repro.errors.IRError`.
    """
    if opcode in _MEMORY or opcode is Opcode.BR:
        raise IRError(f"{opcode} has machine-state semantics; evaluate in the machine")
    n = _ARITY[opcode]
    if len(operands) != n:
        raise IRError(f"{opcode} expects {n} operands, got {len(operands)}")
    if opcode is Opcode.SELECT:
        cond, a, b = operands
        return _wrap32(a if cond != 0 else b)
    if n == 1:
        (a,) = operands
        if opcode is Opcode.NEG:
            return _wrap32(-a)
        if opcode is Opcode.NOT:
            return _wrap32(~a)
        if opcode is Opcode.ABS:
            return _wrap32(abs(a))
        if opcode is Opcode.MOV:
            return _wrap32(a)
        raise IRError(f"unhandled unary opcode {opcode}")
    a, b = operands
    if opcode is Opcode.ADD:
        return _wrap32(a + b)
    if opcode is Opcode.SUB:
        return _wrap32(a - b)
    if opcode is Opcode.MUL:
        return _wrap32(a * b)
    if opcode is Opcode.AND:
        return _wrap32(a & b)
    if opcode is Opcode.OR:
        return _wrap32(a | b)
    if opcode is Opcode.XOR:
        return _wrap32(a ^ b)
    if opcode is Opcode.SLL:
        return _wrap32(a << (b & 31))
    if opcode is Opcode.SRL:
        return _wrap32((a & _MASK32) >> (b & 31))
    if opcode is Opcode.SRA:
        return _wrap32(a >> (b & 31))
    if opcode is Opcode.MIN:
        return _wrap32(min(a, b))
    if opcode is Opcode.MAX:
        return _wrap32(max(a, b))
    if opcode is Opcode.EQ:
        return int(a == b)
    if opcode is Opcode.NE:
        return int(a != b)
    if opcode is Opcode.LT:
        return int(a < b)
    if opcode is Opcode.LE:
        return int(a <= b)
    if opcode is Opcode.GT:
        return int(a > b)
    if opcode is Opcode.GE:
        return int(a >= b)
    raise IRError(f"unhandled opcode {opcode}")


def wrap32(value):
    """Public alias of the 32-bit wrap used across the package."""
    return _wrap32(value)
