"""Control Data Flow Graphs: basic blocks wired by control flow.

A :class:`CDFG` is the unit the mapper consumes.  Each
:class:`BasicBlock` owns a :class:`~repro.ir.dfg.DFG` plus a
*terminator* describing where control goes next:

- :class:`Jump` — unconditional successor;
- :class:`Branch` — two-way conditional on a data node of the block;
- :class:`Exit` — kernel end.

Symbol variables (the paper's location-constrained cross-block values)
are declared on the CDFG with an initial value; the host CPU is assumed
to preload them into register files together with the constants.
"""

from __future__ import annotations

from repro.errors import IRError, ValidationError
from repro.ir.dfg import DFG, DataNode
from repro.ir.opcodes import Opcode


class Jump:
    """Unconditional terminator."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target

    def successors(self):
        return [self.target]

    def __repr__(self):
        return f"Jump({self.target})"


class Branch:
    """Two-way conditional terminator on a block-local condition value."""

    __slots__ = ("condition", "if_true", "if_false")

    def __init__(self, condition, if_true, if_false):
        if not isinstance(condition, DataNode):
            raise IRError("branch condition must be a DataNode")
        self.condition = condition
        self.if_true = if_true
        self.if_false = if_false

    def successors(self):
        return [self.if_true, self.if_false]

    def __repr__(self):
        return f"Branch({self.condition.name} ? {self.if_true} : {self.if_false})"


class Exit:
    """Kernel-end terminator."""

    __slots__ = ()

    def successors(self):
        return []

    def __repr__(self):
        return "Exit()"


class BasicBlock:
    """A named basic block: one DFG plus a terminator."""

    def __init__(self, name):
        self.name = name
        self.dfg = DFG(block_name=name)
        self.terminator = None

    def set_terminator(self, terminator):
        if self.terminator is not None:
            raise IRError(f"block {self.name} already terminated")
        if isinstance(terminator, Branch):
            # The condition is consumed by an explicit BR operation so
            # the mapper accounts for the control instruction slot.
            self.dfg.add_op(Opcode.BR, [terminator.condition])
        self.terminator = terminator

    @property
    def is_terminated(self):
        return self.terminator is not None

    def __repr__(self):
        return f"BasicBlock({self.name}, {self.dfg.n_ops} ops, {self.terminator!r})"


class CDFG:
    """Whole-kernel control-data-flow graph."""

    def __init__(self, name):
        self.name = name
        self.blocks = {}
        self.entry = None
        self.symbols = {}
        self.memory_size = 0
        self.regions = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_block(self, name):
        if name in self.blocks:
            raise IRError(f"duplicate block name {name!r}")
        block = BasicBlock(name)
        self.blocks[name] = block
        if self.entry is None:
            self.entry = name
        return block

    def declare_symbol(self, name, init=0):
        """Register a cross-block symbol variable with its initial value."""
        if name in self.symbols:
            raise IRError(f"symbol {name!r} already declared")
        self.symbols[name] = int(init)

    def declare_region(self, name, base, size, role):
        """Record a named data-memory region (for I/O binding)."""
        if name in self.regions:
            raise IRError(f"region {name!r} already declared")
        self.regions[name] = {"base": base, "size": size, "role": role}
        self.memory_size = max(self.memory_size, base + size)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def block(self, name):
        try:
            return self.blocks[name]
        except KeyError:
            raise IRError(f"no block named {name!r}") from None

    def successors(self, name):
        return self.block(name).terminator.successors()

    def predecessors(self, name):
        return [b for b in self.blocks
                if name in self.blocks[b].terminator.successors()]

    def reverse_post_order(self):
        """Forward CDFG traversal order used by the basic mapping flow."""
        visited = set()
        order = []

        def visit(block_name):
            if block_name in visited:
                return
            visited.add(block_name)
            for successor in self.successors(block_name):
                visit(successor)
            order.append(block_name)

        visit(self.entry)
        order.reverse()
        # Unreachable blocks (should not exist post-validation) go last.
        for name in self.blocks:
            if name not in visited:
                order.append(name)
        return order

    @property
    def n_ops(self):
        return sum(block.dfg.n_ops for block in self.blocks.values())

    def validate(self):
        """Whole-graph structural validation."""
        if self.entry is None:
            raise ValidationError(f"CDFG {self.name!r} has no blocks")
        for name, block in self.blocks.items():
            if not block.is_terminated:
                raise ValidationError(f"block {name!r} lacks a terminator")
            for successor in block.terminator.successors():
                if successor not in self.blocks:
                    raise ValidationError(
                        f"block {name!r} targets unknown block {successor!r}")
            block.dfg.validate()
            for symbol in block.dfg.symbol_inputs:
                if symbol not in self.symbols:
                    raise ValidationError(
                        f"block {name!r} reads undeclared symbol {symbol!r}")
            for symbol in block.dfg.symbol_outputs:
                if symbol not in self.symbols:
                    raise ValidationError(
                        f"block {name!r} writes undeclared symbol {symbol!r}")
        reachable = set()
        stack = [self.entry]
        while stack:
            current = stack.pop()
            if current in reachable:
                continue
            reachable.add(current)
            stack.extend(self.successors(current))
        unreachable = set(self.blocks) - reachable
        if unreachable:
            raise ValidationError(
                f"unreachable blocks: {sorted(unreachable)}")
        return True

    def __repr__(self):
        return (f"CDFG({self.name!r}: {len(self.blocks)} blocks, "
                f"{self.n_ops} ops, {len(self.symbols)} symbols)")
