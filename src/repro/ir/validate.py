"""Standalone validation entry points.

The DFG/CDFG classes carry their own ``validate`` methods; these
wrappers exist so client code and tests can validate without caring
which level they hold, and add cross-cutting checks that need the
whole kernel (e.g. symbol def-before-use along control paths).
"""

from __future__ import annotations

from repro.errors import ValidationError


def validate_dfg(dfg):
    """Validate a single block's data-flow graph."""
    return dfg.validate()


def validate_cdfg(cdfg):
    """Validate a whole kernel graph, including symbol initialisation.

    Symbols are declared with initial values (host-preloaded), so any
    read is defined; this check ensures every symbol is actually used
    somewhere — a dead symbol would waste a register-file location
    constraint in the mapper.
    """
    cdfg.validate()
    used = set()
    for block in cdfg.blocks.values():
        used |= set(block.dfg.symbol_inputs)
        used |= set(block.dfg.symbol_outputs)
    dead = set(cdfg.symbols) - used
    if dead:
        raise ValidationError(
            f"CDFG {cdfg.name!r} declares unused symbols: {sorted(dead)}")
    return True
