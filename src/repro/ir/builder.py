"""Fluent frontend for writing kernels as CDFGs.

The paper's kernels are C functions compiled by the authors' LLVM-based
frontend.  We substitute a small embedded DSL that produces the same
shape of CDFG: counted loops become (header, body) block pairs wired by
conditional branches, loop-carried values and kernel arguments become
symbol variables, and arrays become data-memory regions addressed by
base-plus-index expressions.

Example::

    k = KernelBuilder("dot")
    a = k.array_input("a", 16)
    b = k.array_input("b", 16)
    out = k.array_output("out", 1)
    acc = k.symbol_var("acc", 0)
    with k.loop("i", 0, 16) as i:
        k.set(acc, k.get(acc) + k.load(a.at(i)) * k.load(b.at(i)))
    k.store(out.at(0), k.get(acc))
    cdfg = k.finish()

Two rules the DSL enforces (both faithful to the hardware model):

1. a :class:`Val` is block-local — using one after control has moved to
   another block raises :class:`~repro.errors.IRError`; cross-block
   values must travel through symbol variables;
2. ``get``/``set`` within one block forward the freshest value, while
   the DFG-level symbol input always denotes the block-entry value
   (clean per-block SSA).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.cdfg import CDFG, Branch, Exit, Jump
from repro.ir.opcodes import Opcode


class Val:
    """A block-local value handle with operator overloading.

    ``region`` tags address expressions produced by
    :meth:`ArrayRef.at` so loads/stores get precise memory-ordering
    edges (untagged addresses are treated conservatively).
    """

    __slots__ = ("builder", "block", "node", "region")

    def __init__(self, builder, block, node, region=None):
        self.builder = builder
        self.block = block
        self.node = node
        self.region = region

    # -- binary helpers -------------------------------------------------
    def _binary(self, opcode, other, reverse=False):
        other = self.builder._as_val(other)
        left, right = (other, self) if reverse else (self, other)
        return self.builder._emit(opcode, [left, right])

    def __add__(self, other):
        return self._binary(Opcode.ADD, other)

    def __radd__(self, other):
        return self._binary(Opcode.ADD, other, reverse=True)

    def __sub__(self, other):
        return self._binary(Opcode.SUB, other)

    def __rsub__(self, other):
        return self._binary(Opcode.SUB, other, reverse=True)

    def __mul__(self, other):
        return self._binary(Opcode.MUL, other)

    def __rmul__(self, other):
        return self._binary(Opcode.MUL, other, reverse=True)

    def __and__(self, other):
        return self._binary(Opcode.AND, other)

    def __or__(self, other):
        return self._binary(Opcode.OR, other)

    def __xor__(self, other):
        return self._binary(Opcode.XOR, other)

    def __lshift__(self, other):
        return self._binary(Opcode.SLL, other)

    def __rshift__(self, other):
        return self._binary(Opcode.SRA, other)

    def __neg__(self):
        return self.builder._emit(Opcode.NEG, [self])

    def __invert__(self):
        return self.builder._emit(Opcode.NOT, [self])

    def __abs__(self):
        return self.builder._emit(Opcode.ABS, [self])

    # Comparisons intentionally return Vals (0/1), not bools.
    def __lt__(self, other):
        return self._binary(Opcode.LT, other)

    def __le__(self, other):
        return self._binary(Opcode.LE, other)

    def __gt__(self, other):
        return self._binary(Opcode.GT, other)

    def __ge__(self, other):
        return self._binary(Opcode.GE, other)

    def eq(self, other):
        return self._binary(Opcode.EQ, other)

    def ne(self, other):
        return self._binary(Opcode.NE, other)

    def __repr__(self):
        return f"Val({self.node.name}@{self.block})"


class SymbolVar:
    """Handle for a declared cross-block symbol variable."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"SymbolVar({self.name})"


class ArrayRef:
    """A named region of data memory with base-plus-index addressing."""

    __slots__ = ("builder", "name", "base", "size")

    def __init__(self, builder, name, base, size):
        self.builder = builder
        self.name = name
        self.base = base
        self.size = size

    def at(self, index):
        """Address expression ``base + index``, tagged with the region."""
        if isinstance(index, int):
            address = self.builder.const(self.base + index)
        else:
            address = index + self.builder.const(self.base)
        address.region = self.name
        return address

    def __repr__(self):
        return f"ArrayRef({self.name}[{self.size}] @ {self.base})"


class _LoopContext:
    """Context manager produced by :meth:`KernelBuilder.loop`."""

    def __init__(self, builder, var, start, stop, step, ascending):
        self.builder = builder
        self.var = var
        self.start = start
        self.stop = stop
        self.step = step
        self.ascending = ascending
        self._exit_name = None
        self._header_name = None

    def __enter__(self):
        return self.builder._enter_loop(self)

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.builder._exit_loop(self)
        return False


class KernelBuilder:
    """Builds a validated :class:`~repro.ir.cdfg.CDFG` incrementally."""

    def __init__(self, name):
        self.cdfg = CDFG(name)
        self._current = self.cdfg.add_block("entry")
        self._block_symbols = {}
        self._next_addr = 0
        self._loop_depth = 0
        self._block_counter = 0
        self._finished = False

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def symbol_var(self, name, init=0):
        """Declare a cross-block symbol variable."""
        self.cdfg.declare_symbol(name, init)
        return SymbolVar(name)

    def _alloc(self, name, size, role):
        base = self._next_addr
        self._next_addr += size
        self.cdfg.declare_region(name, base, size, role)
        return ArrayRef(self, name, base, size)

    def array_input(self, name, size):
        """Reserve an input region (host-initialised before launch)."""
        return self._alloc(name, size, "input")

    def array_output(self, name, size):
        """Reserve an output region (read back after completion)."""
        return self._alloc(name, size, "output")

    def array_scratch(self, name, size):
        """Reserve a scratch region (neither preloaded nor checked)."""
        return self._alloc(name, size, "scratch")

    # ------------------------------------------------------------------
    # Value construction
    # ------------------------------------------------------------------
    def const(self, value):
        """Constant Val (CRF-resident)."""
        self._require_current()
        node = self._current.dfg.new_const(value)
        return Val(self, self._current.name, node)

    def _as_val(self, value):
        if isinstance(value, Val):
            if value.block != self._current.name:
                raise IRError(
                    f"value {value.node.name} from block {value.block!r} used "
                    f"in block {self._current.name!r}; cross-block values "
                    f"must go through symbol variables")
            return value
        if isinstance(value, int):
            return self.const(value)
        raise IRError(f"cannot coerce {value!r} to a Val")

    def _emit(self, opcode, operands, name=None):
        self._require_current()
        nodes = [self._as_val(v).node for v in operands]
        result = self._current.dfg.add_op(opcode, nodes, name=name)
        if result is None:
            return None
        return Val(self, self._current.name, result)

    def get(self, symbol):
        """Read a symbol variable (freshest value within this block)."""
        self._require_current()
        if not isinstance(symbol, SymbolVar):
            raise IRError(f"{symbol!r} is not a SymbolVar")
        cached = self._block_symbols.get(symbol.name)
        if cached is not None:
            return cached
        node = self._current.dfg.new_symbol_input(symbol.name)
        return Val(self, self._current.name, node)

    def get_symbol(self, name):
        """Read a declared symbol variable by name in the current block.

        Needed when the handle is out of scope, e.g. re-reading an
        outer loop variable inside an inner loop body.
        """
        if name not in self.cdfg.symbols:
            raise IRError(f"symbol {name!r} not declared")
        return self.get(SymbolVar(name))

    def set(self, symbol, value):
        """Assign a symbol variable (visible to later blocks)."""
        if not isinstance(symbol, SymbolVar):
            raise IRError(f"{symbol!r} is not a SymbolVar")
        val = self._as_val(value)
        self._current.dfg.set_symbol_output(symbol.name, val.node)
        self._block_symbols[symbol.name] = val
        return val

    def load(self, address):
        """LOAD from data memory (word addressed)."""
        address = self._as_val(address)
        return self._emit_mem(Opcode.LOAD, [address], address.region)

    def store(self, address, value):
        """STORE to data memory (word addressed)."""
        address = self._as_val(address)
        self._emit_mem(Opcode.STORE, [address, value], address.region)

    def _emit_mem(self, opcode, operands, region):
        self._require_current()
        nodes = [self._as_val(v).node for v in operands]
        result = self._current.dfg.add_op(opcode, nodes, region=region)
        if result is None:
            return None
        return Val(self, self._current.name, result)

    def select(self, cond, if_true, if_false):
        """Branch-free conditional value."""
        return self._emit(Opcode.SELECT, [cond, if_true, if_false])

    def op(self, opcode, *operands):
        """Escape hatch: emit an arbitrary opcode."""
        return self._emit(opcode, list(operands))

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _new_block(self, hint):
        self._block_counter += 1
        name = f"{hint}{self._block_counter}"
        return self.cdfg.add_block(name)

    def _seal_current(self, terminator):
        self._current.set_terminator(terminator)
        self._block_symbols = {}

    def _switch_to(self, block):
        self._current = block
        self._block_symbols = {}

    def loop(self, var_name, start, stop, step=1, ascending=None):
        """Counted loop ``for var in range(start, stop, step)``.

        ``stop`` and ``step`` may be ints or SymbolVars; ``start`` must
        be an int.  For a SymbolVar step, ``ascending`` (default True)
        selects the loop-exit comparison direction.  The loop variable
        is declared as a symbol variable and yielded as a Val readable
        inside the body.
        """
        if isinstance(step, int):
            if step == 0:
                raise IRError("loop step must be nonzero")
            if ascending is None:
                ascending = step > 0
        elif isinstance(step, SymbolVar):
            if ascending is None:
                ascending = True
        else:
            raise IRError(f"loop step must be int or SymbolVar, got {step!r}")
        var = self.symbol_var(var_name, start)
        return _LoopContext(self, var, start, stop, step, ascending)

    def _enter_loop(self, ctx):
        header = self._new_block(f"{ctx.var.name}_head")
        body = self._new_block(f"{ctx.var.name}_body")
        exit_block = self._new_block(f"{ctx.var.name}_exit")
        # Re-initialise the loop variable in the preheader so the loop
        # is re-entrant (inner loops of a loop nest run more than once).
        self.set(ctx.var, self.const(ctx.start))
        self._seal_current(Jump(header.name))
        # Header: compare and branch.
        self._switch_to(header)
        current = self.get(ctx.var)
        if isinstance(ctx.stop, SymbolVar):
            bound = self.get(ctx.stop)
        else:
            bound = self.const(ctx.stop)
        condition = current < bound if ctx.ascending else current > bound
        self._seal_current(
            Branch(condition.node, body.name, exit_block.name))
        ctx._header_name = header.name
        ctx._exit_name = exit_block.name
        self._switch_to(body)
        self._loop_depth += 1
        return self.get(ctx.var)

    def _exit_loop(self, ctx):
        # Latch: increment the loop variable, jump back to the header.
        if isinstance(ctx.step, SymbolVar):
            step_val = self.get(ctx.step)
        else:
            step_val = self.const(ctx.step)
        self.set(ctx.var, self.get(ctx.var) + step_val)
        self._seal_current(Jump(ctx._header_name))
        self._switch_to(self.cdfg.block(ctx._exit_name))
        self._loop_depth -= 1

    # ------------------------------------------------------------------
    # Low-level block API (for non-counted loops, e.g. FFT stages)
    # ------------------------------------------------------------------
    def declare_block(self, hint):
        """Declare an empty block for later use; returns its name."""
        return self._new_block(hint).name

    def goto(self, target):
        """Seal the current block with an unconditional jump."""
        self._require_current()
        self._seal_current(Jump(target))
        self._current = None

    def branch(self, condition, if_true, if_false):
        """Seal the current block with a conditional branch."""
        self._require_current()
        cond = self._as_val(condition)
        self._seal_current(Branch(cond.node, if_true, if_false))
        self._current = None

    def emit_in(self, block_name):
        """Continue emitting into a previously declared block."""
        block = self.cdfg.block(block_name)
        if block.is_terminated:
            raise IRError(f"block {block_name!r} is already terminated")
        self._switch_to(block)

    def _require_current(self):
        if self._current is None:
            raise IRError(
                "no current block; call emit_in() after goto()/branch()")

    def finish(self):
        """Terminate the exit path, validate, and return the CDFG."""
        if self._finished:
            raise IRError("finish() called twice")
        if self._loop_depth != 0:
            raise IRError("finish() inside an open loop")
        self._require_current()
        self._seal_current(Exit())
        self._finished = True
        self.cdfg.validate()
        return self.cdfg
