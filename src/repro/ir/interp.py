"""Golden-model interpreter for CDFGs.

Executes a kernel exactly as written — sequentially, block by block —
against a word-addressed data memory.  Three consumers rely on it:

1. **Functional oracle** — mapped kernels simulated on the CGRA must
   reproduce the interpreter's memory image bit-exactly;
2. **CPU baseline** — :mod:`repro.sim.cpu` replays the interpreter's
   dynamic statistics through the or1k-like cost model;
3. **Kernel unit tests** — reference numpy implementations are checked
   against the interpreter before any mapping happens.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import IRError, SimulationError
from repro.ir import opcodes
from repro.ir.cdfg import Branch, Exit, Jump
from repro.ir.opcodes import Opcode


class InterpResult:
    """Outcome of one interpreter run."""

    def __init__(self, memory, symbols, op_counts, block_counts, steps):
        self.memory = memory
        self.symbols = symbols
        self.op_counts = op_counts
        self.block_counts = block_counts
        self.steps = steps

    @property
    def dynamic_ops(self):
        """Total dynamically executed operations (incl. BR, excl. none)."""
        return sum(self.op_counts.values())

    def region(self, cdfg, name):
        """The current contents of a named memory region."""
        info = cdfg.regions[name]
        return self.memory[info["base"]: info["base"] + info["size"]]

    def __repr__(self):
        return (f"InterpResult({self.dynamic_ops} ops, "
                f"{sum(self.block_counts.values())} blocks)")


class Interpreter:
    """Sequential executor for a validated CDFG."""

    def __init__(self, cdfg, max_block_executions=1_000_000):
        cdfg.validate()
        self.cdfg = cdfg
        self.max_block_executions = max_block_executions

    def run(self, memory_image=None):
        """Execute from the entry block until Exit.

        ``memory_image`` is a list of ints covering at least the CDFG's
        declared memory; it is copied, never mutated in place.
        """
        memory = self._init_memory(memory_image)
        symbols = dict(self.cdfg.symbols)
        op_counts = Counter()
        block_counts = Counter()
        executed = 0
        current = self.cdfg.entry
        while True:
            block = self.cdfg.block(current)
            block_counts[current] += 1
            executed += 1
            if executed > self.max_block_executions:
                raise SimulationError(
                    f"kernel {self.cdfg.name!r} exceeded "
                    f"{self.max_block_executions} block executions")
            values = self._run_block(block, memory, symbols, op_counts)
            terminator = block.terminator
            if isinstance(terminator, Exit):
                break
            if isinstance(terminator, Jump):
                current = terminator.target
            elif isinstance(terminator, Branch):
                taken = values[terminator.condition.uid] != 0
                current = terminator.if_true if taken else terminator.if_false
            else:
                raise IRError(f"unknown terminator {terminator!r}")
        return InterpResult(memory, symbols, op_counts, block_counts,
                            steps=executed)

    # ------------------------------------------------------------------
    def _init_memory(self, memory_image):
        size = max(self.cdfg.memory_size, 1)
        if memory_image is None:
            return [0] * size
        if len(memory_image) < self.cdfg.memory_size:
            raise SimulationError(
                f"memory image of {len(memory_image)} words, kernel "
                f"needs {self.cdfg.memory_size}")
        return [opcodes.wrap32(int(v)) for v in memory_image]

    def _run_block(self, block, memory, symbols, op_counts):
        """Evaluate one block; returns data-node uid -> value."""
        values = {}
        for node in block.dfg.data:
            if node.is_const:
                values[node.uid] = node.value
            elif node.is_symbol:
                values[node.uid] = symbols[node.symbol]
        for op in block.dfg.ops:
            op_counts[op.opcode] += 1
            operand_values = [values[d.uid] for d in op.operands]
            if op.opcode is Opcode.LOAD:
                address = operand_values[0]
                self._check_address(address, memory)
                result = memory[address]
            elif op.opcode is Opcode.STORE:
                address, value = operand_values
                self._check_address(address, memory)
                memory[address] = value
                result = None
            elif op.opcode is Opcode.BR:
                result = None
            else:
                result = opcodes.evaluate(op.opcode, operand_values)
            if op.result is not None:
                values[op.result.uid] = result
        for symbol, node in block.dfg.symbol_outputs.items():
            symbols[symbol] = values[node.uid]
        return values

    @staticmethod
    def _check_address(address, memory):
        if not 0 <= address < len(memory):
            raise SimulationError(
                f"memory access at {address} outside [0, {len(memory)})")
