"""Per-basic-block data-flow graphs.

Following the paper's formalization (Sec III-A), a basic block
``b = (Vd, Vo, E)`` has *data nodes* ``Vd``, *operation nodes* ``Vo``
and flow edges.  We realise this as an explicit bipartite structure:

- a :class:`DataNode` is produced either by an operation, by a constant
  (resident in the tile's constant register file), or by a *symbol
  input* (the value a cross-block symbol variable has on block entry);
- an :class:`OperationNode` consumes data nodes and (usually) produces
  exactly one data node.

Cross-block dataflow goes exclusively through symbol variables: a block
declares *symbol outputs* (name -> data node valid on block exit).  The
mapper turns symbol variables into register-file location constraints,
exactly as in the paper.
"""

from __future__ import annotations

from repro.errors import IRError, ValidationError
from repro.ir import opcodes
from repro.ir.opcodes import Opcode


class DataNode:
    """A value edge-endpoint in the DFG.

    ``kind`` is one of ``"op"`` (result of an operation), ``"const"``
    (constant register file resident) or ``"symbol"`` (cross-block
    symbol variable read at block entry).
    """

    __slots__ = ("uid", "kind", "producer", "value", "symbol", "name")

    def __init__(self, uid, kind, producer=None, value=None, symbol=None, name=None):
        self.uid = uid
        self.kind = kind
        self.producer = producer
        self.value = value
        self.symbol = symbol
        self.name = name or f"d{uid}"

    @property
    def is_const(self):
        return self.kind == "const"

    @property
    def is_symbol(self):
        return self.kind == "symbol"

    @property
    def is_op_result(self):
        return self.kind == "op"

    def __repr__(self):
        if self.is_const:
            return f"DataNode({self.name}=const {self.value})"
        if self.is_symbol:
            return f"DataNode({self.name}=symbol {self.symbol})"
        return f"DataNode({self.name})"


class OperationNode:
    """An operation in the DFG (maps to one context-memory instruction).

    ``region`` names the data-memory region a LOAD/STORE touches (None
    for non-memory ops or untagged addresses).  ``order_after`` lists
    operations that must execute at a strictly earlier cycle — memory
    ordering edges that carry no value and therefore need no routing.
    """

    __slots__ = ("uid", "opcode", "operands", "result", "name", "region",
                 "order_after")

    def __init__(self, uid, opcode, operands, result=None, name=None,
                 region=None):
        self.uid = uid
        self.opcode = opcode
        self.operands = list(operands)
        self.result = result
        self.name = name or f"{opcode.value}{uid}"
        self.region = region
        self.order_after = []

    def __repr__(self):
        ins = ", ".join(d.name for d in self.operands)
        out = f" -> {self.result.name}" if self.result is not None else ""
        return f"Op({self.name}: {self.opcode.value} {ins}{out})"


class DFG:
    """Data-flow graph of one basic block.

    The graph is append-only; operations are stored in creation order,
    which is guaranteed to be a topological order (operands must exist
    before the operation that consumes them).
    """

    def __init__(self, block_name=""):
        self.block_name = block_name
        self.ops = []
        self.data = []
        self.symbol_inputs = {}
        self.symbol_outputs = {}
        self._const_cache = {}
        self._uid = 0
        # Memory-ordering bookkeeping: per region, the last STORE and
        # the LOADs issued since it.  The pseudo-region None conflicts
        # with every region (conservative for untagged addresses).
        self._last_store = {}
        self._loads_since_store = {}

    # ------------------------------------------------------------------
    # Construction primitives
    # ------------------------------------------------------------------
    def _next_uid(self):
        self._uid += 1
        return self._uid

    def new_const(self, value):
        """Return the (deduplicated) constant data node for ``value``."""
        value = opcodes.wrap32(int(value))
        node = self._const_cache.get(value)
        if node is None:
            node = DataNode(self._next_uid(), "const", value=value,
                            name=f"c{value}")
            self._const_cache[value] = node
            self.data.append(node)
        return node

    def new_symbol_input(self, symbol):
        """Return the (unique) entry-value data node for a symbol."""
        node = self.symbol_inputs.get(symbol)
        if node is None:
            node = DataNode(self._next_uid(), "symbol", symbol=symbol,
                            name=f"s_{symbol}")
            self.symbol_inputs[symbol] = node
            self.data.append(node)
        return node

    def add_op(self, opcode, operands, name=None, region=None):
        """Append an operation; returns its result data node (or None).

        Memory operations receive ordering edges automatically: a LOAD
        must follow the last STORE that may alias it, a STORE must
        follow every memory operation that may alias it.
        """
        if not isinstance(opcode, Opcode):
            raise IRError(f"expected Opcode, got {opcode!r}")
        expected = opcodes.arity(opcode)
        if len(operands) != expected:
            raise IRError(
                f"{opcode} expects {expected} operands, got {len(operands)}")
        for operand in operands:
            if not isinstance(operand, DataNode):
                raise IRError(f"operand {operand!r} is not a DataNode")
            if operand.uid > self._uid:
                raise IRError("operand does not belong to this DFG")
        op = OperationNode(self._next_uid(), opcode, operands, name=name,
                           region=region)
        if opcodes.has_result(opcode):
            result = DataNode(self._next_uid(), "op", producer=op)
            op.result = result
            self.data.append(result)
        if opcodes.is_memory(opcode):
            self._add_memory_ordering(op)
        self.ops.append(op)
        return op.result

    def _aliasing_regions(self, region):
        """Regions that may alias ``region`` (None aliases everything)."""
        if region is None:
            return set(self._last_store) | set(self._loads_since_store) | {None}
        return {region, None}

    def _add_memory_ordering(self, op):
        aliasing = self._aliasing_regions(op.region)
        if op.opcode is Opcode.LOAD:
            for region in aliasing:
                store = self._last_store.get(region)
                if store is not None and store not in op.order_after:
                    op.order_after.append(store)
            self._loads_since_store.setdefault(op.region, []).append(op)
        else:  # STORE
            for region in aliasing:
                store = self._last_store.get(region)
                if store is not None and store not in op.order_after:
                    op.order_after.append(store)
                for load in self._loads_since_store.get(region, []):
                    if load not in op.order_after:
                        op.order_after.append(load)
            self._last_store[op.region] = op
            self._loads_since_store[op.region] = []
            if op.region is None:
                # A wild store invalidates every region's history.
                for region in list(self._last_store):
                    self._last_store[region] = op
                for region in list(self._loads_since_store):
                    self._loads_since_store[region] = []

    def set_symbol_output(self, symbol, data_node):
        """Declare the value ``symbol`` carries on block exit."""
        if not isinstance(data_node, DataNode):
            raise IRError(f"{data_node!r} is not a DataNode")
        self.symbol_outputs[symbol] = data_node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def consumers(self, data_node):
        """All operations consuming ``data_node`` (with multiplicity 1)."""
        return [op for op in self.ops if data_node in op.operands]

    def consumer_count(self, data_node):
        """Fan-out of a data node, counting repeated operand slots."""
        return sum(op.operands.count(data_node) for op in self.ops)

    def op_by_uid(self, uid):
        for op in self.ops:
            if op.uid == uid:
                return op
        raise IRError(f"no operation with uid {uid}")

    @property
    def n_ops(self):
        return len(self.ops)

    def predecessors(self, op):
        """Ops that must precede ``op``: data producers + order edges."""
        seen = []
        for operand in op.operands:
            producer = operand.producer
            if producer is not None and producer not in seen:
                seen.append(producer)
        for earlier in op.order_after:
            if earlier not in seen:
                seen.append(earlier)
        return seen

    def successors(self, op):
        """Ops that must follow ``op``: data consumers + order edges."""
        seen = list(self.consumers(op.result)) if op.result is not None else []
        for other in self.ops:
            if op in other.order_after and other not in seen:
                seen.append(other)
        return seen

    def data_successors(self, op):
        """Only the value consumers of ``op`` (routing targets)."""
        if op.result is None:
            return []
        return self.consumers(op.result)

    def validate(self):
        """Structural checks; raises :class:`ValidationError`."""
        ids = set()
        for node in self.data:
            if node.uid in ids:
                raise ValidationError(f"duplicate data uid {node.uid}")
            ids.add(node.uid)
        for op in self.ops:
            if op.uid in ids:
                raise ValidationError(f"duplicate op uid {op.uid}")
            ids.add(op.uid)
            for operand in op.operands:
                if operand not in self.data:
                    raise ValidationError(
                        f"{op} consumes foreign data node {operand}")
            if op.result is not None and op.result.producer is not op:
                raise ValidationError(f"{op} result backlink broken")
            if opcodes.is_memory(op.opcode) and op.opcode is Opcode.LOAD:
                if op.result is None:
                    raise ValidationError(f"LOAD {op} lacks a result")
        for symbol, node in self.symbol_outputs.items():
            if node not in self.data:
                raise ValidationError(
                    f"symbol output {symbol} bound to foreign node")
        return True

    def __repr__(self):
        return (f"DFG({self.block_name!r}: {len(self.ops)} ops, "
                f"{len(self.data)} data)")
