"""Static DFG/CDFG analyses used by the mapping flow.

Provides the quantities the paper's heuristics consume:

- ASAP/ALAP levels and *mobility* (``alap - asap``) — the primary list
  scheduling priority;
- operation *fan-out* — the tie-breaker;
- per-block *weight* ``W_bb = n(s) + sum(f_s)`` over symbol variables
  ``s`` present in the block, with ``f_s`` the symbol's fan-out
  (Sec III-D.1) — drives the weighted CDFG traversal.

"Present" is interpreted as *read or written* by the block; the fan-out
of a symbol is the number of operand slots its entry value feeds inside
the block (a written-only symbol contributes fan-out 0 but still counts
in ``n(s)``).
"""

from __future__ import annotations

from repro.errors import IRError


def asap_levels(dfg):
    """Earliest level of each operation (unit latency, level 0 first).

    Creation order is topological, so a single pass suffices.
    """
    levels = {}
    for op in dfg.ops:
        level = 0
        for producer in dfg.predecessors(op):
            level = max(level, levels[producer.uid] + 1)
        levels[op.uid] = level
    return levels


def alap_levels(dfg, depth=None):
    """Latest level of each op within a schedule of ``depth`` levels."""
    asap = asap_levels(dfg)
    if depth is None:
        depth = critical_path_length(dfg)
    if depth < critical_path_length(dfg):
        raise IRError(
            f"depth {depth} below critical path {critical_path_length(dfg)}")
    levels = {}
    for op in reversed(dfg.ops):
        successors = dfg.successors(op)
        if successors:
            level = min(levels[s.uid] - 1 for s in successors)
        else:
            level = depth - 1
        levels[op.uid] = level
    # A second pass is unnecessary: reversed creation order visits
    # consumers before producers.
    return levels


def critical_path_length(dfg):
    """Number of levels on the longest dependency chain (>= 1)."""
    if not dfg.ops:
        return 1
    return max(asap_levels(dfg).values()) + 1


def mobility(dfg, depth=None):
    """Mobility (scheduling slack) of each op: ``alap - asap``."""
    asap = asap_levels(dfg)
    alap = alap_levels(dfg, depth)
    return {uid: alap[uid] - asap[uid] for uid in asap}


def fanouts(dfg):
    """Fan-out (number of consuming operand slots) of each op."""
    return {
        op.uid: (dfg.consumer_count(op.result) if op.result is not None else 0)
        for op in dfg.ops
    }


def backward_priority(dfg, depth=None):
    """Scheduling priority per op: smaller sorts first.

    The basic flow lists schedulable operations "by priority order,
    which is defined by their mobility and number of fan-outs"
    (Sec III-B): low mobility (urgent) first, then high fan-out.
    uid is the final deterministic tie-breaker.
    """
    mob = mobility(dfg, depth)
    fan = fanouts(dfg)
    return {uid: (mob[uid], -fan[uid], uid) for uid in mob}


def symbol_fanout(block, symbol):
    """Fan-out of a symbol variable's entry value within a block."""
    node = block.dfg.symbol_inputs.get(symbol)
    if node is None:
        return 0
    return block.dfg.consumer_count(node)


def symbols_present(block):
    """Symbol variables read or written by the block (sorted)."""
    present = set(block.dfg.symbol_inputs) | set(block.dfg.symbol_outputs)
    return sorted(present)


def block_weight(block):
    """Paper's weighted-traversal weight ``W_bb = n(s) + sum(f_s)``."""
    symbols = symbols_present(block)
    return len(symbols) + sum(symbol_fanout(block, s) for s in symbols)


def cdfg_block_weights(cdfg):
    """Weights of every block of a CDFG, keyed by block name."""
    return {name: block_weight(block) for name, block in cdfg.blocks.items()}
