"""DC-blocking filter kernel (first-order IIR).

``y[n] = x[n] - x[n-1] + (R * y[n-1]) >> 8`` with ``R = 243`` (~0.95
in Q0.8) — the standard DC blocker used in near-sensor audio chains.
The recurrence makes ``prev_x``/``prev_y`` loop-carried symbol
variables with high fan-out, which is exactly what the weighted
traversal of Sec III-D.1 prioritises.
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.ir.opcodes import wrap32
from repro.kernels.suite import Kernel

#: Paper-scale defaults: 64 samples, R = 243/256, 4-sample unroll.
N_SAMPLES = 64
R_Q8 = 243
UNROLL = 4


def build(n_samples=N_SAMPLES, r_q8=R_Q8, unroll=UNROLL):
    """Build the DC-blocking IIR kernel (loop unrolled).

    The recurrence serialises only the ``(R*y)>>8`` chain; unrolling
    overlaps the loads, stores and ``x[n]-x[n-1]`` parts of several
    samples, which is how -O3 extracts parallelism from an IIR.
    """
    if n_samples % unroll:
        raise ValueError("unroll must divide n_samples")
    k = KernelBuilder("dc_filter")
    x = k.array_input("x", n_samples)
    y = k.array_output("y", n_samples)
    prev_x = k.symbol_var("prev_x", 0)
    prev_y = k.symbol_var("prev_y", 0)
    with k.loop("n", 0, n_samples, step=unroll) as n:
        samples = [k.load(x.at(n + u)) for u in range(unroll)]
        last_x = k.get(prev_x)
        last_y = k.get(prev_y)
        for u in range(unroll):
            yv = samples[u] - last_x + ((last_y * r_q8) >> 8)
            k.store(y.at(n + u), yv)
            last_x = samples[u]
            last_y = yv
        k.set(prev_x, last_x)
        k.set(prev_y, last_y)
    cdfg = k.finish()

    def inputs_fn(rng):
        # A drifting baseline plus noise: the classic DC-blocker input.
        noise = rng.integers(-64, 64, n_samples)
        return {"x": [int(500 + v) for v in noise]}

    def reference_fn(inputs):
        xs = inputs["x"]
        out = []
        px = 0
        py = 0
        for n in range(n_samples):
            yv = wrap32(xs[n] - px + (wrap32(py * r_q8) >> 8))
            out.append(yv)
            px = xs[n]
            py = yv
        return {"y": out}

    return Kernel("dc_filter", cdfg, inputs_fn, reference_fn,
                  description=f"DC blocker over {n_samples} samples")
