"""Kernel wrapper and registry.

A :class:`Kernel` couples a CDFG with everything an experiment needs:

- ``make_inputs(rng)`` — random-but-reproducible input regions;
- ``make_memory(inputs)`` — assemble the data-memory image;
- ``reference(inputs)`` — bit-exact fixed-point golden outputs,
  implemented independently from the CDFG (plain Python/numpy), so the
  CDFG itself is validated, not just mapped.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class Kernel:
    """A named, runnable benchmark kernel."""

    def __init__(self, name, cdfg, inputs_fn, reference_fn, description=""):
        self.name = name
        self.cdfg = cdfg
        self._inputs_fn = inputs_fn
        self._reference_fn = reference_fn
        self.description = description

    def make_inputs(self, rng=None):
        """Generate input regions: dict region-name -> list[int]."""
        if rng is None:
            rng = np.random.default_rng(0)
        inputs = self._inputs_fn(rng)
        for region_name, values in inputs.items():
            info = self.cdfg.regions.get(region_name)
            if info is None:
                raise ReproError(
                    f"kernel {self.name!r} generated unknown region "
                    f"{region_name!r}")
            if len(values) != info["size"]:
                raise ReproError(
                    f"kernel {self.name!r} region {region_name!r}: "
                    f"{len(values)} values for size {info['size']}")
        return inputs

    def make_memory(self, inputs):
        """Assemble the initial data-memory image from input regions."""
        memory = [0] * self.cdfg.memory_size
        for region_name, values in inputs.items():
            base = self.cdfg.regions[region_name]["base"]
            memory[base: base + len(values)] = [int(v) for v in values]
        return memory

    def reference(self, inputs):
        """Golden outputs: dict region-name -> list[int]."""
        return self._reference_fn(inputs)

    @property
    def output_regions(self):
        return [name for name, info in self.cdfg.regions.items()
                if info["role"] == "output"]

    def __repr__(self):
        return f"Kernel({self.name}: {self.cdfg.n_ops} static ops)"


#: Kernel order used in the paper's tables and charts.
PAPER_KERNEL_ORDER = (
    "fir",
    "matmul",
    "convolution",
    "sep_filter",
    "nonsep_filter",
    "fft",
    "dc_filter",
)

KERNEL_NAMES = PAPER_KERNEL_ORDER

#: Pretty names used when printing paper-style tables.
DISPLAY_NAMES = {
    "fir": "FIR",
    "matmul": "MatM",
    "convolution": "Convolution",
    "sep_filter": "SepFilter",
    "nonsep_filter": "NonSepFilter",
    "fft": "FFT",
    "dc_filter": "DC Filter",
}


def _builders():
    # Imported lazily to avoid a cycle (kernel modules import this
    # module for the Kernel class).
    from repro.kernels import (
        convolution,
        dc_filter,
        fft,
        fir,
        matmul,
        nonsep_filter,
        sep_filter,
    )

    return {
        "fir": fir.build,
        "matmul": matmul.build,
        "convolution": convolution.build,
        "sep_filter": sep_filter.build,
        "nonsep_filter": nonsep_filter.build,
        "fft": fft.build,
        "dc_filter": dc_filter.build,
    }


def get_kernel(name, **params):
    """Build a kernel by name (paper-scale defaults)."""
    builders = _builders()
    try:
        builder = builders[name]
    except KeyError:
        raise ReproError(
            f"unknown kernel {name!r}; choose from "
            f"{sorted(builders)}") from None
    return builder(**params)


def iter_kernels(**params):
    """Yield all seven kernels in paper order."""
    for name in PAPER_KERNEL_ORDER:
        yield get_kernel(name, **params)


def display_name(name):
    """Paper-style display name for a kernel key."""
    return DISPLAY_NAMES.get(name, name)
