"""Matrix multiplication kernel (``C = A @ B``, row-major).

The paper's MatM is the kernel whose context-unaware mapping is shown
overflowing tiles in Fig 2 — heavy load-store traffic concentrating
instructions on the LSU tiles.  The reduction loop is fully unrolled
and the column loop unrolled by ``j_unroll`` (A-row loads shared
across the unrolled columns), producing the wide memory-bound body
that makes MatM one of the three kernels that cannot fit when every
load-store tile has a 32-word context memory (HOM32, Figs 6-7).
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.ir.opcodes import wrap32
from repro.kernels.suite import Kernel
from repro.kernels.util import tree_sum

#: Paper-scale defaults: 8x8 matrices, 2-way column unroll.
SIZE = 8
J_UNROLL = 2


def build(size=SIZE, j_unroll=J_UNROLL):
    """Build the ``size x size`` integer matrix-multiplication kernel."""
    if size % j_unroll:
        raise ValueError("j_unroll must divide size")
    k = KernelBuilder("matmul")
    a = k.array_input("a", size * size)
    b = k.array_input("b", size * size)
    c = k.array_output("c", size * size)
    with k.loop("i", 0, size) as i:
        with k.loop("j", 0, size, step=j_unroll) as j:
            iv = k.get_symbol("i")
            row = iv * size
            # The A row is loaded once and reused by every unrolled column.
            a_vals = [k.load(a.at(row + kk)) for kk in range(size)]
            for u in range(j_unroll):
                terms = [a_vals[kk] * k.load(b.at(j + (kk * size + u)))
                         for kk in range(size)]
                k.store(c.at(row + j + u), tree_sum(terms))
    cdfg = k.finish()

    def inputs_fn(rng):
        return {
            "a": [int(v) for v in rng.integers(-64, 64, size * size)],
            "b": [int(v) for v in rng.integers(-64, 64, size * size)],
        }

    def reference_fn(inputs):
        av, bv = inputs["a"], inputs["b"]
        out = [0] * (size * size)
        for i in range(size):
            for j in range(size):
                acc_v = 0
                for kk in range(size):
                    acc_v = wrap32(
                        acc_v + wrap32(av[i * size + kk] * bv[kk * size + j]))
                out[i * size + j] = acc_v
        return {"c": out}

    return Kernel("matmul", cdfg, inputs_fn, reference_fn,
                  description=f"{size}x{size} integer matrix multiply")
