"""Non-separable 2D filter kernel (full 5x5 window, unrolled).

The direct form of the filter :mod:`repro.kernels.sep_filter` splits:
25 MACs per output pixel, fully unrolled into one wide memory-bound
block.  The largest kernel in the suite — the paper reports it among
the three kernels that cannot be mapped when all load-store tiles are
over-constrained (HOM32, Figs 6-7).
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.ir.opcodes import wrap32
from repro.kernels.suite import Kernel
from repro.kernels.util import tree_sum

#: Paper-scale defaults: 24x24 image, 5x5 window, >>4 normalisation.
IMAGE = 24
KSIZE = 5
SHIFT = 4


def build(image=IMAGE, ksize=KSIZE, shift=SHIFT):
    """Build the direct (non-separable) 2D filter kernel."""
    out_size = image - ksize + 1
    k = KernelBuilder("nonsep_filter")
    img = k.array_input("img", image * image)
    coef = k.array_input("coef", ksize * ksize)
    out = k.array_output("out", out_size * out_size)
    with k.loop("r", 0, out_size) as r:
        with k.loop("c", 0, out_size) as c:
            rv = k.get_symbol("r")
            anchor = rv * image + c
            terms = []
            for kr in range(ksize):
                for kc in range(ksize):
                    pixel = k.load(img.at(anchor + (kr * image + kc)))
                    weight = k.load(coef.at(kr * ksize + kc))
                    terms.append(pixel * weight)
            k.store(out.at(rv * out_size + c), tree_sum(terms) >> shift)
    cdfg = k.finish()

    def inputs_fn(rng):
        return {
            "img": [int(v) for v in rng.integers(0, 256, image * image)],
            "coef": [int(v) for v in rng.integers(-8, 8, ksize * ksize)],
        }

    def reference_fn(inputs):
        img_v, coef_v = inputs["img"], inputs["coef"]
        result = [0] * (out_size * out_size)
        for r in range(out_size):
            for c in range(out_size):
                acc_v = 0
                for kr in range(ksize):
                    for kc in range(ksize):
                        acc_v = wrap32(acc_v + wrap32(
                            img_v[(r + kr) * image + c + kc]
                            * coef_v[kr * ksize + kc]))
                result[r * out_size + c] = acc_v >> shift
        return {"out": result}

    return Kernel("nonsep_filter", cdfg, inputs_fn, reference_fn,
                  description=f"direct {ksize}x{ksize} filter on "
                              f"{image}x{image}")
