"""FIR filter kernel.

``y[n] = sum_t x[n + t] * h[t]`` over a sliding window — the classic
near-sensor filtering workload.  The tap loop is fully unrolled, as
the paper's -O3/frontend pipeline would do, so each loop body is one
wide MAC dataflow; the sample loop stays dynamic.  FIR is the smallest
memory-bound kernel of the suite and (per the paper) maps onto every
configuration.
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.ir.opcodes import wrap32
from repro.kernels.suite import Kernel
from repro.kernels.util import tree_sum

#: Paper-scale defaults: 32 output samples, 8 taps.
N_SAMPLES = 32
N_TAPS = 8


def build(n_samples=N_SAMPLES, n_taps=N_TAPS, unroll=True):
    """Build the FIR kernel CDFG plus its reference implementation."""
    k = KernelBuilder("fir")
    x = k.array_input("x", n_samples + n_taps - 1)
    h = k.array_input("h", n_taps)
    y = k.array_output("y", n_samples)
    if unroll:
        with k.loop("n", 0, n_samples) as n:
            terms = [k.load(x.at(n + t)) * k.load(h.at(t))
                     for t in range(n_taps)]
            k.store(y.at(n), tree_sum(terms))
    else:
        acc_sym = k.symbol_var("acc", 0)
        with k.loop("n", 0, n_samples) as n:
            k.set(acc_sym, 0)
            with k.loop("t", 0, n_taps) as t:
                xv = k.load(x.at(k.get_symbol("n") + t))
                hv = k.load(h.at(t))
                k.set(acc_sym, k.get(acc_sym) + xv * hv)
            k.store(y.at(k.get_symbol("n")), k.get(acc_sym))
    cdfg = k.finish()

    def inputs_fn(rng):
        return {
            "x": [int(v) for v in rng.integers(-128, 128,
                                               n_samples + n_taps - 1)],
            "h": [int(v) for v in rng.integers(-16, 16, n_taps)],
        }

    def reference_fn(inputs):
        xs, hs = inputs["x"], inputs["h"]
        out = []
        for n in range(n_samples):
            acc_v = 0
            for t in range(n_taps):
                acc_v = wrap32(acc_v + wrap32(xs[n + t] * hs[t]))
            out.append(acc_v)
        return {"y": out}

    return Kernel("fir", cdfg, inputs_fn, reference_fn,
                  description=f"{n_taps}-tap FIR over {n_samples} samples")
