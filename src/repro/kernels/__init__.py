"""The seven compute-intensive signal-processing kernels of the paper.

Table II / Figs 5-10 evaluate: FIR, matrix multiplication (MatM),
convolution, separable filter, non-separable filter, FFT and DC filter.
Each module exposes ``build(**params)`` returning a
:class:`~repro.kernels.suite.Kernel` — the CDFG plus input generation
and a bit-exact fixed-point reference implementation.

``get_kernel(name)`` returns the paper-scale instance; ``build``
accepts size parameters so tests can use tiny instances.
"""

from repro.kernels.suite import (
    Kernel,
    KERNEL_NAMES,
    PAPER_KERNEL_ORDER,
    get_kernel,
    iter_kernels,
)

__all__ = [
    "Kernel",
    "KERNEL_NAMES",
    "PAPER_KERNEL_ORDER",
    "get_kernel",
    "iter_kernels",
]
