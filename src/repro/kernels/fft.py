"""Radix-2 DIT FFT kernel (fixed point, Q2.14 twiddles).

The iterative in-place FFT with *dynamic* loop bounds — the butterfly
span doubles per stage — exercising the builder's low-level block API
(a ``while half < N`` stage loop) and symbol-stepped counted loops.

Two -O3-style optimisations match the paper's compiled kernels:

- stage 0 (``half == 1``, twiddle ``w = 1``) is peeled into its own
  multiplier-free loop;
- the butterfly loop of the remaining stages is unrolled by two
  (always legal because ``half >= 2`` after peeling).

The host provides the bit-reversal permutation and twiddle tables as
input regions, as a real deployment would (they depend only on N).
"""

from __future__ import annotations

import math

from repro.ir.builder import KernelBuilder
from repro.ir.opcodes import wrap32
from repro.kernels.suite import Kernel

#: Paper-scale default: 32-point FFT.
N_POINTS = 32
#: Twiddle fixed-point format: Q2.14.
TWIDDLE_SHIFT = 14


def _bit_reverse(value, bits):
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def twiddle_tables(n):
    """Q2.14 twiddle factors ``w_k = e^(-2*pi*i*k/n)`` for k < n/2."""
    scale = 1 << TWIDDLE_SHIFT
    wr = [round(math.cos(2 * math.pi * k / n) * scale) for k in range(n // 2)]
    wi = [round(-math.sin(2 * math.pi * k / n) * scale) for k in range(n // 2)]
    return wr, wi


def build(n_points=N_POINTS):
    """Build the n-point radix-2 DIT FFT kernel."""
    if n_points & (n_points - 1) or n_points < 8:
        raise ValueError("n_points must be a power of two >= 8")
    log2n = n_points.bit_length() - 1

    k = KernelBuilder("fft")
    re_in = k.array_input("re", n_points)
    im_in = k.array_input("im", n_points)
    brev = k.array_input("brev", n_points)
    wr = k.array_input("wr", n_points // 2)
    wi = k.array_input("wi", n_points // 2)
    xr = k.array_output("xr", n_points)
    xi = k.array_output("xi", n_points)

    # Bit-reversal reorder into the working arrays.
    with k.loop("ri", 0, n_points) as ri:
        src = k.load(brev.at(ri))
        k.store(xr.at(ri), k.load(re_in.at(src)))
        k.store(xi.at(ri), k.load(im_in.at(src)))

    # Peeled stage 0: half == 1, w == 1 — butterflies without multiplies.
    with k.loop("p0", 0, n_points, step=2) as p0:
        addr_r0 = xr.at(p0)
        addr_i0 = xi.at(p0)
        p1 = p0 + 1
        addr_r1 = xr.at(p1)
        addr_i1 = xi.at(p1)
        ar = k.load(addr_r0)
        ai = k.load(addr_i0)
        br_ = k.load(addr_r1)
        bi = k.load(addr_i1)
        k.store(addr_r0, ar + br_)
        k.store(addr_i0, ai + bi)
        k.store(addr_r1, ar - br_)
        k.store(addr_i1, ai - bi)

    # Remaining stages: half = 2, 4, ..., n/2; butterflies unrolled x2.
    half = k.symbol_var("half", 2)
    tstep = k.symbol_var("tstep", n_points >> 2)
    size = k.symbol_var("size", 4)
    kidx = k.symbol_var("kidx", 0)
    stage_head = k.declare_block("stage_head")
    stage_body = k.declare_block("stage_body")
    stage_exit = k.declare_block("stage_exit")
    k.set(half, 2)
    k.set(tstep, n_points >> 2)
    k.set(size, 4)
    k.goto(stage_head)
    k.emit_in(stage_head)
    k.branch(k.get(half) < n_points, stage_body, stage_exit)
    k.emit_in(stage_body)
    with k.loop("gi", 0, n_points, step=size) as gi:
        k.set(kidx, 0)
        with k.loop("jj", 0, half, step=2) as jj:
            giv = k.get_symbol("gi")
            halfv = k.get(half)
            tstepv = k.get(tstep)
            kv = k.get(kidx)
            base_j = giv + jj
            for lane in range(2):
                j = base_j + lane if lane else base_j
                kidx_lane = kv + tstepv if lane else kv
                jh = j + halfv
                addr_rj = xr.at(j)
                addr_ij = xi.at(j)
                addr_rh = xr.at(jh)
                addr_ih = xi.at(jh)
                wrv = k.load(wr.at(kidx_lane))
                wiv = k.load(wi.at(kidx_lane))
                ar = k.load(addr_rj)
                ai = k.load(addr_ij)
                br_ = k.load(addr_rh)
                bi = k.load(addr_ih)
                tr = (wrv * br_ - wiv * bi) >> TWIDDLE_SHIFT
                ti = (wrv * bi + wiv * br_) >> TWIDDLE_SHIFT
                k.store(addr_rh, ar - tr)
                k.store(addr_ih, ai - ti)
                k.store(addr_rj, ar + tr)
                k.store(addr_ij, ai + ti)
            k.set(kidx, kv + (tstepv << 1))
    k.set(half, k.get(half) << 1)
    k.set(tstep, k.get(tstep) >> 1)
    k.set(size, k.get(size) << 1)
    k.goto(stage_head)
    k.emit_in(stage_exit)
    cdfg = k.finish()

    wr_table, wi_table = twiddle_tables(n_points)
    brev_table = [_bit_reverse(i, log2n) for i in range(n_points)]

    def inputs_fn(rng):
        return {
            "re": [int(v) for v in rng.integers(-512, 512, n_points)],
            "im": [int(v) for v in rng.integers(-512, 512, n_points)],
            "brev": list(brev_table),
            "wr": list(wr_table),
            "wi": list(wi_table),
        }

    def reference_fn(inputs):
        res = [inputs["re"][brev_table[i]] for i in range(n_points)]
        ims = [inputs["im"][brev_table[i]] for i in range(n_points)]
        wr_t, wi_t = inputs["wr"], inputs["wi"]
        half_v = 1
        tstep_v = n_points >> 1
        while half_v < n_points:
            for gi in range(0, n_points, half_v * 2):
                kidx_v = 0
                for jj in range(half_v):
                    j = gi + jj
                    jh = j + half_v
                    tr = wrap32(
                        wrap32(wr_t[kidx_v] * res[jh])
                        - wrap32(wi_t[kidx_v] * ims[jh])) >> TWIDDLE_SHIFT
                    ti = wrap32(
                        wrap32(wr_t[kidx_v] * ims[jh])
                        + wrap32(wi_t[kidx_v] * res[jh])) >> TWIDDLE_SHIFT
                    res[jh] = wrap32(res[j] - tr)
                    ims[jh] = wrap32(ims[j] - ti)
                    res[j] = wrap32(res[j] + tr)
                    ims[j] = wrap32(ims[j] + ti)
                    kidx_v += tstep_v
            half_v <<= 1
            tstep_v >>= 1
        return {"xr": res, "xi": ims}

    return Kernel("fft", cdfg, inputs_fn, reference_fn,
                  description=f"{n_points}-point radix-2 fixed-point FFT")
