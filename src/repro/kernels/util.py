"""Shared kernel-construction helpers."""

from __future__ import annotations


def tree_sum(values):
    """Balanced-tree reduction of a list of Vals.

    A compiler at -O3 reassociates integer additions, turning an
    n-term accumulation chain (depth n) into a log2(n)-deep tree —
    which is what gives the CGRA its instruction-level parallelism.
    """
    if not values:
        raise ValueError("tree_sum needs at least one value")
    level = list(values)
    while len(level) > 1:
        paired = []
        for index in range(0, len(level) - 1, 2):
            paired.append(level[index] + level[index + 1])
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]
