"""2D convolution kernel (3x3, valid mode).

A small image convolution: for every output pixel, a fully unrolled
3x3 window of multiply-accumulates.  The window loads make the
load-store tiles the hot spots, as in the paper's Fig 2 discussion.
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.ir.opcodes import wrap32
from repro.kernels.suite import Kernel
from repro.kernels.util import tree_sum

#: Paper-scale defaults: 10x10 image, 3x3 kernel.
IMAGE = 10
KSIZE = 3


def build(image=IMAGE, ksize=KSIZE):
    """Build the 2D valid convolution kernel (window unrolled)."""
    out_size = image - ksize + 1
    k = KernelBuilder("convolution")
    img = k.array_input("img", image * image)
    coef = k.array_input("coef", ksize * ksize)
    out = k.array_output("out", out_size * out_size)
    with k.loop("r", 0, out_size) as r:
        with k.loop("c", 0, out_size) as c:
            rv = k.get_symbol("r")
            anchor = rv * image + c
            terms = []
            for kr in range(ksize):
                for kc in range(ksize):
                    pixel = k.load(img.at(anchor + (kr * image + kc)))
                    weight = k.load(coef.at(kr * ksize + kc))
                    terms.append(pixel * weight)
            k.store(out.at(rv * out_size + c), tree_sum(terms))
    cdfg = k.finish()

    def inputs_fn(rng):
        return {
            "img": [int(v) for v in rng.integers(0, 256, image * image)],
            "coef": [int(v) for v in rng.integers(-8, 8, ksize * ksize)],
        }

    def reference_fn(inputs):
        img_v, coef_v = inputs["img"], inputs["coef"]
        result = [0] * (out_size * out_size)
        for r in range(out_size):
            for c in range(out_size):
                acc_v = 0
                for kr in range(ksize):
                    for kc in range(ksize):
                        acc_v = wrap32(acc_v + wrap32(
                            img_v[(r + kr) * image + c + kc]
                            * coef_v[kr * ksize + kc]))
                result[r * out_size + c] = acc_v
        return {"out": result}

    return Kernel("convolution", cdfg, inputs_fn, reference_fn,
                  description=f"{ksize}x{ksize} conv over {image}x{image}")
