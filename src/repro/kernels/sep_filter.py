"""Separable 2D filter kernel (5-tap horizontal pass, then vertical).

The separable formulation splits a 5x5 filter into two 1D passes
through a scratch buffer — half the MACs of the non-separable version
at the price of intermediate memory traffic.  Both tap loops are fully
unrolled; each pass normalises by an arithmetic shift, keeping
everything in 32-bit fixed point.
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.ir.opcodes import wrap32
from repro.kernels.suite import Kernel
from repro.kernels.util import tree_sum

#: Paper-scale defaults: 24x24 image, 5 taps, >>2 normalisation.
IMAGE = 24
TAPS = 5
SHIFT = 2


def build(image=IMAGE, taps=TAPS, shift=SHIFT):
    """Build the separable filter kernel (H pass into scratch, V pass)."""
    inner = image - taps + 1
    k = KernelBuilder("sep_filter")
    img = k.array_input("img", image * image)
    hcoef = k.array_input("hcoef", taps)
    vcoef = k.array_input("vcoef", taps)
    tmp = k.array_scratch("tmp", image * inner)
    out = k.array_output("out", inner * inner)
    # Horizontal pass: tmp[r][c] = (sum_t img[r][c+t]*hcoef[t]) >> shift.
    with k.loop("r", 0, image) as r:
        with k.loop("c", 0, inner) as c:
            rv = k.get_symbol("r")
            anchor = rv * image + c
            terms = [k.load(img.at(anchor + t)) * k.load(hcoef.at(t))
                     for t in range(taps)]
            k.store(tmp.at(rv * inner + c), tree_sum(terms) >> shift)
    # Vertical pass: out[r][c] = (sum_t tmp[r+t][c]*vcoef[t]) >> shift.
    with k.loop("r2", 0, inner) as r2:
        with k.loop("c2", 0, inner) as c2:
            rv = k.get_symbol("r2")
            anchor = rv * inner + c2
            terms = [k.load(tmp.at(anchor + t * inner)) * k.load(vcoef.at(t))
                     for t in range(taps)]
            k.store(out.at(anchor), tree_sum(terms) >> shift)
    cdfg = k.finish()

    def inputs_fn(rng):
        return {
            "img": [int(v) for v in rng.integers(0, 256, image * image)],
            "hcoef": [int(v) for v in rng.integers(-8, 8, taps)],
            "vcoef": [int(v) for v in rng.integers(-8, 8, taps)],
        }

    def reference_fn(inputs):
        img_v = inputs["img"]
        hc, vc = inputs["hcoef"], inputs["vcoef"]
        tmp_v = [0] * (image * inner)
        for r in range(image):
            for c in range(inner):
                acc_v = 0
                for t in range(taps):
                    acc_v = wrap32(
                        acc_v + wrap32(img_v[r * image + c + t] * hc[t]))
                tmp_v[r * inner + c] = acc_v >> shift
        result = [0] * (inner * inner)
        for r in range(inner):
            for c in range(inner):
                acc_v = 0
                for t in range(taps):
                    acc_v = wrap32(
                        acc_v + wrap32(tmp_v[(r + t) * inner + c] * vc[t]))
                result[r * inner + c] = acc_v >> shift
        return {"out": result}

    return Kernel("sep_filter", cdfg, inputs_fn, reference_fn,
                  description=f"separable {taps}-tap filter on "
                              f"{image}x{image}")
