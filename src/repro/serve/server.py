"""The ``repro serve`` HTTP front end (stdlib only).

A :class:`ThreadingHTTPServer` exposing the sweep runtime:

- ``POST /v1/sweeps`` — submit a sweep (axes, explicit specs, a
  figure name, optionally one ``shard i/N`` slice); returns ``202``
  with the job id and its stream URL.
- ``POST /v1/explorations`` — submit a design-space exploration
  (space/depths/kernels/strategy/budget/objectives — see
  :mod:`repro.dse`); same ``202`` receipt shape.
- ``GET /v1/sweeps`` / ``GET /v1/explorations`` — status snapshots
  of that kind's jobs, plus how many finished jobs the retention
  policy has evicted.
- ``GET /v1/sweeps/{id}`` — one job: queued/running/done/failed,
  points landed, cache hits — plus the full JSON payload once done
  (mergeable sweep payload, or the exploration document).  Job ids
  are unique across kinds and either path resolves either kind.
- ``GET /v1/sweeps/{id}/stream`` — NDJSON, one landed point per line
  (``pos``/``spec``/``point``/``from_cache``) as workers finish,
  cache hits first; the connection closes when the job ends.
- ``GET /v1/cache/stats`` — the shared :class:`ResultCache` counters.
- ``GET /v1/figures`` — servable figure names with point counts.
- ``GET /healthz`` — liveness plus uptime, package version, requests
  served, job-state totals and evictions.
- ``GET /metrics`` — the process's metrics registry in Prometheus
  text exposition format (see :mod:`repro.obs.metrics`).
- ``GET /dashboard`` — the read-only watchtower HTML (ledger trends,
  live span analysis, metrics snapshot; see :mod:`repro.obs.report`).

Responses are JSON; errors are ``{"error": ...}`` with the matching
status code (400 bad submission, 401 bad/missing token, 404 unknown
job/route, 429 queue full — with a ``Retry-After`` hint).  The
server binds ``127.0.0.1`` by default; binding any other interface
requires a bearer token (``--token`` / ``$REPRO_SERVE_TOKEN``),
checked on every endpoint except ``/healthz``, ``/metrics`` and
``/dashboard`` with a constant-time compare — probes and scrapers hold no credentials,
and both bodies carry counters, not results.  Every sweep the server
computes lands in the same persistent cache the CLI uses, so serving
and local runs warm each other.

Access logs go through the structured logger (``repro.serve``
component, one ``request`` event per answered request with method /
path / status) instead of raw stderr writes — ``REPRO_LOG`` levels
and ``:json`` formatting apply; ``quiet`` suppresses them.  A
``traceparent`` header on a submission is adopted as the job's trace
context: its spans stitch into the caller's trace and ride back on
the finished payload (see :mod:`repro.obs.trace`).
"""

from __future__ import annotations

import hmac
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

import repro
from repro.errors import ReproError
from repro.obs import get_logger, metrics, trace
from repro.serve.jobs import (
    BusyError,
    JobManager,
    RequestError,
    UnknownJobError,
)

_log = get_logger("repro.serve")

#: Largest accepted request body; a spec list is small, so anything
#: bigger is a mistake (or not a sweep submission at all).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Hosts a tokenless server may bind.  Anything else is reachable by
#: other machines and requires authentication.
LOOPBACK_HOSTS = ("127.0.0.1", "localhost", "::1")

#: Blank keepalive line on ``/stream`` after this many silent
#: seconds, so client read timeouts never fire on a healthy but
#: queued (or slowly computing) job.  Kept well under any sane
#: client timeout — a client whose read timeout is below this value
#: would drop healthy streams (``repro submit --timeout`` must
#: exceed it).
STREAM_KEEPALIVE_SECONDS = 5.0


class SweepServer(ThreadingHTTPServer):
    """HTTP server owning one :class:`JobManager`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, manager, quiet=False, token=None,
                 max_body_bytes=MAX_BODY_BYTES):
        self.manager = manager
        self.quiet = quiet
        self.token = token or None
        self.max_body_bytes = max_body_bytes
        self.started = time.time()
        self.requests_total = 0
        self._requests_lock = threading.Lock()
        super().__init__(address, SweepHandler)

    def note_request(self):
        """Count one answered request (handler threads race here)."""
        with self._requests_lock:
            self.requests_total += 1

    @property
    def uptime_seconds(self):
        return time.time() - self.started

    def server_close(self):
        super().server_close()
        self.manager.close()


def make_server(host="127.0.0.1", port=0, workers=1, cache=None,
                quiet=False, max_finished_jobs=None,
                finished_ttl_seconds=None, max_concurrent_jobs=None,
                max_queued_jobs=None, max_specs_per_job=None,
                token=None, max_body_bytes=None, journal=None,
                point_timeout=None, resume=False):
    """Build a ready-to-serve :class:`SweepServer`.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — what the tests and any
    port-allocating supervisor use.  The retention
    (``max_finished_jobs`` / ``finished_ttl_seconds``), scheduling
    (``max_concurrent_jobs`` / ``max_queued_jobs``) and request-limit
    (``max_specs_per_job``) knobs override the manager's bounded
    defaults when not ``None``.

    ``journal`` is a :class:`~repro.serve.journal.JobJournal` (or
    None: no durability) the manager records job transitions to;
    ``resume=True`` replays it before the socket binds, requeueing
    whatever a killed predecessor left queued or running under the
    original job IDs.  ``point_timeout`` arms the per-point deadline
    on every sweep job.

    ``token`` enables bearer-token auth; a ``host`` outside
    :data:`LOOPBACK_HOSTS` is refused without one — an open,
    unauthenticated compute endpoint on a routable interface is a
    misconfiguration, not a default.
    """
    if token is None and host not in LOOPBACK_HOSTS:
        raise ReproError(
            f"refusing to bind {host!r} without authentication: "
            f"pass a token (repro serve --token / "
            f"$REPRO_SERVE_TOKEN) to serve beyond loopback")
    overrides = {}
    for key, value in (
            ("max_finished_jobs", max_finished_jobs),
            ("finished_ttl_seconds", finished_ttl_seconds),
            ("max_concurrent_jobs", max_concurrent_jobs),
            ("max_queued_jobs", max_queued_jobs),
            ("max_specs_per_job", max_specs_per_job)):
        if value is not None:
            overrides[key] = value
    manager = JobManager(workers=workers, cache=cache,
                         journal=journal,
                         point_timeout=point_timeout, **overrides)
    try:
        if resume:
            manager.resume_from_journal()
        return SweepServer(
            (host, port), manager, quiet=quiet, token=token,
            max_body_bytes=(max_body_bytes if max_body_bytes
                            is not None else MAX_BODY_BYTES))
    except BaseException:
        # Bind failures must not leak the manager's runner threads
        # (callers probing ports in a loop would pile them up).
        manager.close()
        raise


class SweepHandler(BaseHTTPRequestHandler):
    """Routes requests to the job manager; JSON in, JSON out."""

    server_version = "repro-serve"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        # The stdlib's catch-all (bad request lines, socket errors).
        # Routed through the structured logger so nothing the HTTP
        # layer has to say ever bypasses REPRO_LOG; ``quiet``
        # silences it like the old bare stderr writes.
        if not self.server.quiet:
            _log.warning("http", client=self.address_string(),
                         detail=format % args)

    def log_request(self, code="-", size="-"):
        """One access-log event + counters per answered request.

        ``send_response`` calls this exactly once per response, which
        makes it the single choke point for the request counter, the
        ``repro_http_requests_total`` metric and the structured
        access log (suppressed by ``quiet``, like the old stderr
        lines — but emitted, never silently discarded, otherwise).
        """
        try:
            status = int(code)
        except (TypeError, ValueError):
            status = 0
        self.server.note_request()
        metrics.HTTP_REQUESTS.inc(method=self.command or "?",
                                  code=status or "?")
        if not self.server.quiet:
            _log.info("request", client=self.address_string(),
                      method=self.command, path=self.path,
                      status=status)

    def _send_json(self, body, status=200, headers=None):
        data = (json.dumps(body, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, status, message, headers=None):
        self._send_json({"error": message}, status=status,
                        headers=headers)

    def _authorized(self):
        """Bearer-token check, constant-time, tokenless = open.

        ``hmac.compare_digest`` over the whole header keeps the
        comparison independent of where a forged token first
        diverges — a plain ``==`` would let a caller binary-search
        the token one byte of timing at a time.
        """
        token = self.server.token
        if token is None:
            return True
        supplied = self.headers.get("Authorization") or ""
        expected = f"Bearer {token}"
        return hmac.compare_digest(supplied.encode("utf-8"),
                                   expected.encode("utf-8"))

    def _send_auth_required(self):
        self._send_error_json(
            401, "missing or invalid bearer token (send "
                 "'Authorization: Bearer <token>')",
            headers={"WWW-Authenticate": "Bearer"})

    def _read_body(self):
        if self.headers.get("Transfer-Encoding") is not None:
            # http.server never dechunks; reading Content-Length 0
            # here would silently drop the body — and an empty body
            # resolves to the full default sweep.
            raise RequestError(
                "chunked request bodies are not supported; send "
                "Content-Length")
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise RequestError(
                "POST requires a Content-Length header (an absent "
                "body would silently submit the default sweep)")
        try:
            length = int(raw_length)
        except ValueError:
            raise RequestError("bad Content-Length header") from None
        if length < 0:
            # read(-1) would mean "until EOF" — a handler thread
            # parked on a held-open socket, not a 400.
            raise RequestError("bad Content-Length header")
        if length > self.server.max_body_bytes:
            raise RequestError(
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit")
        raw = self.rfile.read(length) if length else b""
        if not raw.strip():
            # Content-Length: 0 (a forgotten body) must not resolve
            # to {} and silently submit the full default sweep —
            # requesting it takes an explicit `{}`.
            raise RequestError(
                "empty request body; send a JSON object ({} "
                "explicitly requests the full default sweep)")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise RequestError(
                f"request body is not JSON: {error}") from None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self):
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                # Liveness stays open even behind a token: a load
                # balancer probing health holds no credentials, and
                # the body carries counters, not results.
                return self._get_health()
            if path == "/metrics":
                # Open for the same reason: scrapers are probes.
                return self._get_metrics()
            if path == "/dashboard":
                # Read-only HTML over the same counters /metrics and
                # /healthz already expose — open for the same reason.
                return self._get_dashboard()
            if not self._authorized():
                return self._send_auth_required()
            if path == "/v1/cache/stats":
                return self._get_cache_stats()
            if path == "/v1/figures":
                return self._get_figures()
            if path == "/v1/sweeps":
                return self._list_jobs("sweep")
            if path == "/v1/explorations":
                return self._list_jobs("exploration")
            parts = path.split("/")
            if len(parts) == 4 and parts[1] == "v1" \
                    and parts[2] in ("sweeps", "explorations"):
                return self._get_job(parts[3])
            if len(parts) == 5 and parts[1] == "v1" \
                    and parts[2] in ("sweeps", "explorations") \
                    and parts[4] == "stream":
                return self._stream_job(parts[3])
            return self._send_error_json(
                404, f"no such endpoint: GET {path}")
        except UnknownJobError as error:
            return self._send_error_json(404, str(error))
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away mid-response; nothing to do
        except Exception as error:  # noqa: BLE001 — last resort:
            # an unexpected bug must answer 500, not silently drop
            # the connection (which reads as a transport failure).
            return self._send_internal_error(error)

    def do_POST(self):
        path = urlsplit(self.path).path.rstrip("/")
        try:
            if not self._authorized():
                return self._send_auth_required()
            if path == "/v1/sweeps":
                return self._post_sweep()
            if path == "/v1/explorations":
                return self._post_exploration()
            return self._send_error_json(
                404, f"no such endpoint: POST {path}")
        except BusyError as error:
            # Backpressure, not failure: the queue is at its bound,
            # so the client should retry (here, or on a sibling
            # server) instead of piling more work on.
            return self._send_json(
                {"error": str(error),
                 "retry_after": error.retry_after},
                status=429,
                headers={"Retry-After": str(int(error.retry_after))})
        except RequestError as error:
            return self._send_error_json(400, str(error))
        except (BrokenPipeError, ConnectionResetError):
            return
        except Exception as error:  # noqa: BLE001 — see do_GET
            return self._send_internal_error(error)

    def _send_internal_error(self, error):
        try:
            self._send_error_json(
                500, f"internal error: {type(error).__name__}: "
                     f"{error}")
        except OSError:
            pass  # response already underway or socket gone

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _get_health(self):
        manager = self.server.manager
        self._send_json({
            "status": "ok",
            # A fleet probe telling a fresh restart from a long-lived
            # server needs uptime + version + traffic, not just "ok".
            "uptime_seconds": round(self.server.uptime_seconds, 3),
            "version": repro.__version__,
            "requests_total": self.server.requests_total,
            "workers": manager.workers,
            "cache": manager.cache is not None,
            "jobs": manager.counts(),
            "evicted": manager.evicted,
            "auth": self.server.token is not None,
            "scheduler": {
                "max_concurrent_jobs": manager.max_concurrent_jobs,
                "max_queued_jobs": manager.max_queued_jobs,
                "queued": manager.queue_depth(),
                "workers_free": manager.pool.free,
            },
            # Durability: whether a journal is armed, where it
            # writes, and — after a --resume boot — what the replay
            # recovered, so an operator can see at a glance that the
            # restart picked the orphans up.
            "journal": None if manager.journal is None else {
                "path": str(manager.journal.path),
                "write_errors": manager.journal.write_errors,
                "replay": manager.replay_stats,
            },
        })

    def _list_jobs(self, kind):
        manager = self.server.manager
        self._send_json({
            "jobs": manager.list_jobs(kind=kind),
            "evicted": manager.evicted,
        })

    def _get_metrics(self):
        """The Prometheus text exposition of the default registry."""
        cache = self.server.manager.cache
        if cache is not None:
            # Refresh the on-disk gauges (entries/bytes/orphaned) at
            # scrape time so /metrics never lags /v1/cache/stats.
            cache.stats()
        body = metrics.REGISTRY.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _get_dashboard(self):
        """The watchtower dashboard rendered over live server state."""
        from repro.obs import analyze, report
        from repro.perf import ledger

        cache = self.server.manager.cache
        cache_stats = cache.stats() if cache is not None else None
        cache_dir = cache.directory if cache is not None else None
        entries, _skipped = ledger.read_ledger(
            ledger.ledger_path(cache_dir))
        analysis = None
        try:
            spans = trace.snapshot_spans()
            if spans:
                analysis = analyze.analyze_spans(spans)
        except ReproError:
            pass
        body = report.render_report(
            ledger_entries=entries,
            analysis=analysis,
            metrics_text=metrics.REGISTRY.render(),
            cache_stats=cache_stats,
        ).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _get_cache_stats(self):
        cache = self.server.manager.cache
        if cache is None:
            return self._send_json({"enabled": False})
        self._send_json({"enabled": True, **cache.stats()})

    def _get_figures(self):
        from repro.eval.experiments import servable_figures
        self._send_json({"figures": servable_figures()})

    def _trace_carrier(self):
        """The request's trace carrier, or None when untraced."""
        header = self.headers.get("traceparent")
        return {"traceparent": header} if header else None

    def _post_sweep(self):
        body = self._read_body()
        with trace.adopt(self._trace_carrier()), \
                trace.span("http:POST /v1/sweeps") as active:
            # The job inherits the *handler* span's context, so its
            # spans — recorded minutes later by a runner thread —
            # stitch under this request in the caller's trace.
            job = self.server.manager.submit_request(
                body, trace_carrier=trace.current_carrier())
            active.set(job_id=job.id)
        self._send_receipt(job, "sweeps")

    def _post_exploration(self):
        body = self._read_body()
        with trace.adopt(self._trace_carrier()), \
                trace.span("http:POST /v1/explorations") as active:
            job = self.server.manager.submit_exploration_request(
                body, trace_carrier=trace.current_carrier())
            active.set(job_id=job.id)
        self._send_receipt(job, "explorations")

    def _send_receipt(self, job, collection):
        # The receipt IS a status snapshot (plus navigation), so the
        # 202 body and GET /v1/{collection}/{id} can never drift
        # apart.
        self._send_json({
            **job.snapshot(),
            "url": f"/v1/{collection}/{job.id}",
            "stream": f"/v1/{collection}/{job.id}/stream",
        }, status=202)

    def _get_job(self, job_id):
        job = self.server.manager.get(job_id)
        snapshot = job.snapshot()
        if snapshot["status"] == "done":
            snapshot["payload"] = job.payload
        self._send_json(snapshot)

    def _stream_job(self, job_id):
        """NDJSON replay of the job's records, then live tail."""
        job = self.server.manager.get(job_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for record in job.iter_records(
                    heartbeat=STREAM_KEEPALIVE_SECONDS):
                if record is None:  # idle tick -> blank keepalive
                    self.wfile.write(b"\n")
                else:
                    line = json.dumps(record, separators=(",", ":"))
                    self.wfile.write(line.encode("utf-8") + b"\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # the reader hung up; the job carries on
