"""Durable job journal: serve jobs survive the server that took them.

A :class:`~repro.serve.jobs.JobManager` is in-memory; a SIGKILL (or
an OOM kill, or a deploy) used to silently drop every queued and
running job.  The journal fixes that with the cheapest durable
structure the repo already trusts: an append-only JSONL file in the
cache directory, next to ``ledger.jsonl`` and under the same
contract — one self-describing JSON object per line, schema-tagged,
writers best-effort (journalling must never fail the job it
records), readers skip-and-count malformed or foreign lines.

One line per job *transition*::

    {"kind": "job-event", "schema": 1, "event": "submitted",
     "job_id": "job-3-4fe21a09", "job_kind": "sweep",
     "body": {...original POST body...}, "priority": 0, ...}

``submitted`` carries the client's original request body — the whole
reason replay works: a restarted server re-resolves the body exactly
like the HTTP layer would have, under the *original* job ID, so a
client that noted ``job-3-4fe21a09`` before the crash re-attaches
after it.  ``started`` / ``finished`` / ``failed`` are bare
transitions; :meth:`JobJournal.replay` reduces the log to the last
event per job, and only jobs whose last event is non-terminal are
requeued.

``REPRO_JOB_JOURNAL=0`` opts out, mirroring ``REPRO_LEDGER=0``.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import threading
import time

#: Version of a job-event line.
JOURNAL_SCHEMA = 1

#: Set to ``0``/``false``/``no`` to disable job journalling.
ENV_JOURNAL = "REPRO_JOB_JOURNAL"

#: File name of the journal inside the cache directory.
JOURNAL_FILENAME = "jobs.jsonl"

#: Events a journal line may carry; the last one seen per job wins.
EVENTS = ("submitted", "started", "finished", "failed")

#: Events after which a job needs no replay.
TERMINAL_EVENTS = ("finished", "failed")


def journal_path(cache_dir=None):
    """Journal location: ``<cache dir>/jobs.jsonl``."""
    from repro.runtime.cache import default_cache_dir

    base = pathlib.Path(cache_dir) if cache_dir else default_cache_dir()
    return base / JOURNAL_FILENAME


def journalling_enabled():
    """False when ``REPRO_JOB_JOURNAL`` opts out."""
    return os.environ.get(ENV_JOURNAL, "").strip().lower() \
        not in ("0", "false", "no")


class JobJournal:
    """Append-only recorder + replayer of job lifecycle events."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        # One lock per journal: interleaved appends from the HTTP
        # threads and the runner threads must not tear lines.
        self._lock = threading.Lock()
        #: Appends that failed (filesystem trouble); exposed on
        #: /healthz so silent journal loss is at least visible.
        self.write_errors = 0

    def record(self, event, job_id, **fields):
        """Best-effort append of one transition; returns the entry.

        Never raises: the journal observes the job table, it must
        not be able to fail a submission or wedge a runner.  Returns
        None when journalling is disabled or the write failed.
        """
        if not journalling_enabled():
            return None
        now = time.time()
        entry = {
            "kind": "job-event",
            "schema": JOURNAL_SCHEMA,
            "event": event,
            "job_id": job_id,
            "recorded_unix": round(now, 3),
            "recorded_at": datetime.datetime.fromtimestamp(
                now, datetime.timezone.utc).isoformat(),
        }
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        try:
            with self._lock:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "a") as handle:
                    handle.write(line + "\n")
        except OSError:
            self.write_errors += 1
            return None
        return entry

    def replay(self):
        """``(jobs, skipped)``: last known state per journaled job.

        ``jobs`` maps ``job_id`` to a dict with the last ``event``
        seen plus whatever the ``submitted`` line carried (``body``,
        ``job_kind``, ``priority``) — enough to resubmit.  Malformed
        or foreign lines are counted in ``skipped`` and ignored, the
        same reader contract as the run ledger.
        """
        jobs, skipped = {}, 0
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except OSError:
            return {}, 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(entry, dict) \
                    or entry.get("kind") != "job-event" \
                    or entry.get("event") not in EVENTS \
                    or not isinstance(entry.get("job_id"), str):
                skipped += 1
                continue
            state = jobs.setdefault(entry["job_id"], {})
            state["event"] = entry["event"]
            if entry["event"] == "submitted":
                state["job_kind"] = entry.get("job_kind", "sweep")
                state["body"] = entry.get("body")
                state["priority"] = entry.get("priority", 0)
        return jobs, skipped
