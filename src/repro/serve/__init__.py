"""``repro.serve`` — sweeps as a service.

The runtime (:mod:`repro.runtime`) made experiment points batchable,
cacheable, shardable and streamable; this package puts that engine
behind a stdlib HTTP boundary so sweeps can be dispatched to other
machines:

- :mod:`repro.serve.jobs` — :class:`JobManager` schedules submitted
  sweeps concurrently (priority heap, shared worker pool, bounded
  queue with :class:`BusyError` backpressure) with an in-order
  record log per job (what ``/stream`` replays);
- :mod:`repro.serve.server` — :func:`make_server` builds the
  :class:`ThreadingHTTPServer` behind ``repro serve``
  (``POST /v1/sweeps``, status, NDJSON streaming, cache stats,
  health, optional bearer-token auth, 429 + Retry-After under
  queue pressure);
- :mod:`repro.serve.client` — :class:`SweepClient` for one server
  (keepalive-aware per-read idle timeout on streams) and
  :func:`run_distributed`, which shards one sweep across N servers,
  resubmits the shards a dead server still owed to the survivors,
  and merges the payloads locally with the same
  ``merge_sweep_payloads`` that merges shard files.

Quickstart (one process per box)::

    # server: repro serve --port 8000 --workers 4
    from repro.serve import SweepClient, run_distributed

    client = SweepClient("http://127.0.0.1:8000")
    payload = client.run({"kernels": ["fir"]})

    result, _ = run_distributed(
        ["http://box-a:8000", "http://box-b:8000"],
        {"variants": ["basic", "full"]})
    print(result.summary())
"""

from repro.serve.client import (
    ServeClientError,
    SweepClient,
    describe_record,
    run_distributed,
)
from repro.serve.jobs import (
    BusyError,
    JobManager,
    RequestError,
    SweepJob,
    SweepRequest,
    UnknownJobError,
    WorkerPool,
    resolve_request,
)
from repro.serve.server import SweepServer, make_server

__all__ = [
    "BusyError",
    "JobManager",
    "RequestError",
    "ServeClientError",
    "SweepClient",
    "SweepJob",
    "SweepRequest",
    "SweepServer",
    "UnknownJobError",
    "WorkerPool",
    "describe_record",
    "make_server",
    "resolve_request",
    "run_distributed",
]
