"""Client for ``repro serve``: submit, stream, and fan out shards.

:class:`SweepClient` speaks to one server with nothing but
``urllib`` — submit a sweep, follow its NDJSON stream point by
point, fetch the final mergeable payload.  Two timeouts, two jobs:
``timeout`` bounds request/response calls (submit, status), while
streams use ``idle_timeout`` *per read* — the server's 5-second
keepalives reset it, so a healthy-but-slow job (big exploration,
cold cache) can run for hours while a wedged or dead server still
trips the timeout within seconds.

:func:`run_distributed` is the distributed dispatch the runtime was
built toward: given *N* server URLs it submits ``shard i/N`` of the
same sweep to server *i* (the servers never talk to each other),
streams all shards concurrently, and reassembles the payloads
locally with :func:`repro.runtime.shard.merge_sweep_payloads` — the
exact function that merges ``--json`` shard *files*.  Distribution
is therefore pure composition of the PR 2 contract, and so is its
*fault tolerance*: when a server dies mid-sweep, the shard indices
it still owed are exactly the ones
:func:`~repro.runtime.shard.missing_shard_indices` reports absent
from the collected payloads, and resubmitting them to the surviving
servers (bounded retries, backoff between rounds) yields a payload
set the merge validates exactly as if nothing had died.  A fleet of
K servers degrades to K−1 instead of failing the dispatch.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request

from repro import chaos
from repro.errors import ReproError
from repro.obs import trace
from repro.runtime.shard import (
    merge_sweep_payloads,
    missing_shard_indices,
)

#: Per-read stream timeout (seconds).  The server emits a keepalive
#: every 5 silent seconds, so any healthy stream delivers *something*
#: well within this window; only a wedged or dead server trips it.
DEFAULT_IDLE_TIMEOUT = 60.0

#: Retry shape for the distributed dispatch: how often one shard may
#: be (re)submitted, and the base inter-round backoff.
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF_SECONDS = 0.5

#: Longest the dispatcher will sleep between retry rounds, however
#: large the backoff or the server's Retry-After hint.
MAX_BACKOFF_SECONDS = 30.0


def backoff_delay(round_number, backoff_seconds, retry_hint=0.0,
                  rng=None):
    """The jittered inter-round sleep for the distributed dispatcher.

    The base grows linearly with the round and is jittered over
    ``[0.5x, 1.5x]`` so a fleet of clients that all watched the same
    server die does not thunder back in lockstep the moment it
    recovers.  A ``Retry-After`` hint is a *floor* — the server asked
    for at least that much quiet, and jitter may only add to it —
    and :data:`MAX_BACKOFF_SECONDS` caps the result either way.
    ``rng`` is a 0-arg callable returning ``[0, 1)`` (tests inject a
    constant; production uses :func:`random.random`).
    """
    retry_hint = max(0.0, retry_hint or 0.0)
    if not backoff_seconds and not retry_hint:
        return 0.0
    jitter = (rng or random.random)()
    base = (backoff_seconds or 0.0) * round_number * (0.5 + jitter)
    return min(max(retry_hint, base), MAX_BACKOFF_SECONDS)


class ServeClientError(ReproError):
    """Transport or protocol failure talking to a sweep server.

    ``status`` is the HTTP status code when the server answered at
    all (``None`` for connection-level failures and failed jobs);
    ``retry_after`` carries the server's ``Retry-After`` hint on a
    429.  The distributed dispatcher classifies on these: 4xx except
    429 is fatal (the same request fails everywhere), everything
    else is retryable.
    """

    def __init__(self, message, status=None, retry_after=None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def describe_record(record, done, total, origin=""):
    """One ``[done/total] kernel@config/variant ...`` progress line.

    Rebuilds the streamed record's point and renders it through the
    same :func:`~repro.runtime.stream.point_status` the local
    progress lines use, so a remote sweep narrates exactly like a
    local one; ``origin`` names the server when several stream at
    once.
    """
    from repro.runtime.shard import point_from_json
    from repro.runtime.stream import point_status

    spec = record.get("spec", {})
    try:
        status = point_status(point_from_json(record.get("point")
                                              or {}))
    except (KeyError, TypeError):
        status = "error"  # a record we cannot parse is still a line
    source = "cache" if record.get("from_cache") else "computed"
    where = f" @ {origin}" if origin else ""
    return (f"[{done}/{total}] {spec.get('kernel')}"
            f"@{spec.get('config')}/{spec.get('variant')}: {status} "
            f"({source}{where})")


class SweepClient:
    """Talk to one ``repro serve`` instance.

    ``timeout`` bounds each non-streaming request; ``idle_timeout``
    is the per-read bound on ``/stream`` connections (urllib applies
    it to every socket operation, so each record or keepalive line
    resets the clock — a stream only times out after that long of
    genuine silence, never for being long-lived).  ``token`` is the
    server's bearer token, sent as ``Authorization: Bearer``.
    """

    def __init__(self, base_url, timeout=600.0,
                 idle_timeout=DEFAULT_IDLE_TIMEOUT, token=None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.idle_timeout = idle_timeout
        self.token = token or None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _open(self, path, body=None, timeout=None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        # Propagate the active trace across the hop: the server
        # adopts the header, parents its work under our span, and
        # ships its spans back inside the finished payload.
        carrier = trace.current_carrier()
        if carrier is not None:
            headers["traceparent"] = carrier["traceparent"]
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=headers)
        try:
            # Chaos hook: an armed http_cut fault severs this request
            # before it leaves, landing in the transport-error branch
            # below exactly like a yanked cable.
            chaos.maybe_cut_http(path)
            return urllib.request.urlopen(
                request,
                timeout=self.timeout if timeout is None else timeout)
        except urllib.error.HTTPError as error:
            detail = ""
            retry_after = None
            try:
                raw = error.headers.get("Retry-After")
                if raw is not None:
                    retry_after = float(raw)
            except (TypeError, ValueError):
                pass
            try:
                payload = json.loads(error.read().decode("utf-8"))
                detail = payload.get("error", "")
            except Exception:
                pass
            raise ServeClientError(
                f"{url}: HTTP {error.code}"
                + (f": {detail}" if detail else ""),
                status=error.code,
                retry_after=retry_after) from None
        except (urllib.error.URLError, OSError,
                TimeoutError) as error:
            raise ServeClientError(
                f"cannot reach sweep server at {url}: "
                f"{error}") from None

    def _json(self, path, body=None):
        try:
            with self._open(path, body=body) as response:
                raw = response.read().decode("utf-8")
        except ServeClientError:
            raise
        except OSError as error:
            raise ServeClientError(
                f"{self.base_url}{path}: connection lost "
                f"({error})") from None
        try:
            return json.loads(raw)
        except ValueError as error:
            raise ServeClientError(
                f"{self.base_url}{path}: not JSON "
                f"({error})") from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self):
        return self._json("/healthz")

    def cache_stats(self):
        return self._json("/v1/cache/stats")

    def figures(self):
        return self._json("/v1/figures")["figures"]

    def jobs(self):
        return self._json("/v1/sweeps")["jobs"]

    def submit(self, request):
        """POST one sweep request; returns the submission receipt."""
        with trace.span("submit", server=self.base_url):
            return self._json("/v1/sweeps", body=request)

    def submit_exploration(self, request):
        """POST one exploration request (see ``repro.dse``)."""
        with trace.span("submit", server=self.base_url):
            return self._json("/v1/explorations", body=request)

    def explorations(self):
        return self._json("/v1/explorations")["jobs"]

    def run_exploration(self, request, progress=None):
        """Submit an exploration, stream it, return its document.

        Rides :meth:`follow` unchanged — exploration jobs stream
        through the same record log as sweeps; the receipt's
        ``points`` is the exhaustive-grid upper bound, so the stream
        may (deliberately) end before ``done == total``.
        """
        return self.follow(self.submit_exploration(request),
                           progress=progress)

    def status(self, job_id):
        return self._json(f"/v1/sweeps/{job_id}")

    def stream(self, job_id):
        """Yield the job's point records as the server lands them.

        Reads ride the *idle* timeout: urllib applies it per socket
        operation, so the server's keepalive lines reset it and a
        stream can healthily outlive it by hours — it only fires
        after ``idle_timeout`` seconds of total silence, which no
        live server produces.  A trip (or a reset) surfaces as a
        :class:`ServeClientError` naming the server, never a bare
        ``TimeoutError``/``OSError`` — callers and the distributed
        dispatcher handle one exception family.
        """
        path = f"/v1/sweeps/{job_id}/stream"
        try:
            with self._open(path, timeout=self.idle_timeout) \
                    as response:
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except ValueError as error:
                        raise ServeClientError(
                            f"{self.base_url}{path}: bad NDJSON "
                            f"line ({error})") from None
        except ServeClientError:
            raise
        except OSError as error:
            raise ServeClientError(
                f"{self.base_url}{path}: stream dropped or silent "
                f"beyond the {self.idle_timeout}s idle timeout "
                f"({error})") from None

    def follow(self, receipt, progress=None):
        """Stream a submitted job to completion; return its payload.

        ``progress`` is called with ``(record, done, total)`` per
        landed point.  Completion is detected by the stream closing;
        a job that *failed* (rather than finishing short-handed — a
        crashed point is still a point) raises with the server-side
        error.  The single copy of the submit-side protocol: both
        :meth:`run` and the distributed dispatcher go through here.
        """
        total = receipt["points"]
        done = 0
        for record in self.stream(receipt["id"]):
            done += 1
            if progress is not None:
                progress(record, done, total)
        status = self.status(receipt["id"])
        if status["status"] != "done":
            raise ServeClientError(
                f"{self.base_url}: job {receipt['id']} "
                f"{status['status']}: {status.get('error')}")
        payload = status["payload"]
        if isinstance(payload, dict) and payload.get("trace"):
            # The server shipped its spans home: fold them into the
            # local trace (popped — merge/compare tooling must never
            # see the additive key) without re-observing their stage
            # timings, which belong to the *server's* histograms.
            trace.ingest(payload.pop("trace"))
        return payload

    def run(self, request, progress=None):
        """Submit, follow the stream, return the final payload."""
        return self.follow(self.submit(request), progress=progress)


def _is_fatal(error):
    """Would this failure repeat on any server?

    A 4xx (other than 429) means the *request* is at fault — a typo'd
    axis fails identically everywhere, so retrying just multiplies
    the noise.  Everything else (connection death, stream silence,
    429 backpressure, 5xx, a failed job) is worth another server or
    another round.
    """
    status = getattr(error, "status", None)
    return status is not None and 400 <= status < 500 and status != 429


def run_distributed(servers, request, progress=None, timeout=600.0,
                    idle_timeout=None, token=None,
                    max_attempts=DEFAULT_MAX_ATTEMPTS,
                    backoff_seconds=DEFAULT_BACKOFF_SECONDS,
                    on_receipts=None):
    """Shard one sweep across ``servers``; merge the results locally.

    Server *i* of *N* initially receives the same request plus
    ``shard = [i, N]``, so the union of what the servers compute is
    provably the whole sweep (the sharding contract) and the merge
    validates completeness and fingerprints exactly as it does for
    shard files.  Returns ``(SweepResult, payloads)``.

    **Fault tolerance.**  After each round, the shard indices still
    missing from the collected payloads (the merge-completeness
    check, via :func:`~repro.runtime.shard.missing_shard_indices`)
    are resubmitted to the surviving servers — a server that dropped
    a connection or failed a job is excluded from reassignment; a
    server that answered ``429`` stays eligible.  Each shard is
    attempted at most ``max_attempts`` times, with
    ``backoff_seconds × round`` sleep between rounds (the largest
    ``Retry-After`` hint wins when bigger; ``backoff_seconds=0``
    disables sleeping entirely).  The dispatch fails only when a
    shard exhausts its attempts, no server survives, or the failure
    is the request's own fault (4xx) — and the raised
    :class:`ServeClientError` then aggregates *every* per-server
    outcome (server URL, shard index, attempt, error), not just the
    first.

    ``progress`` (called with ``(record, done, total, server_url)``)
    may interleave across servers; a retried shard restarts its part
    of the count.  ``on_receipts`` (if given) is called once with
    ``{shard_index: receipt}`` after the first round of submissions
    — an observability hook (and the test seam for killing a server
    between submit and stream).
    """
    servers = list(servers)
    if not servers:
        raise ServeClientError("no sweep servers given")
    if "shard" in (request or {}):
        raise ServeClientError(
            "'shard' is chosen by the dispatcher; submit the "
            "unsharded request")
    if max_attempts < 1:
        raise ServeClientError("max_attempts must be >= 1")
    with trace.span("run_distributed", shards=len(servers)):
        return _run_distributed(
            servers, request, progress=progress, timeout=timeout,
            idle_timeout=idle_timeout, token=token,
            max_attempts=max_attempts,
            backoff_seconds=backoff_seconds, on_receipts=on_receipts)


def _run_distributed(servers, request, progress, timeout,
                     idle_timeout, token, max_attempts,
                     backoff_seconds, on_receipts):
    total_shards = len(servers)
    # Threads do not inherit the contextvar — capture the dispatch
    # span's identity here so each shard thread can adopt it.
    dispatch_carrier = trace.current_carrier()
    kwargs = {"timeout": timeout, "token": token}
    if idle_timeout is not None:
        kwargs["idle_timeout"] = idle_timeout
    clients = [SweepClient(url, **kwargs) for url in servers]

    payloads = [None] * total_shards
    producers = [None] * total_shards  # url that produced payloads[i]
    attempts = [0] * total_shards
    failures = []  # every (shard, server_index, attempt, error)
    dead = set()  # server indices that dropped a dispatch
    expected = [None] * total_shards  # per-shard point counts
    landed = [0] * total_shards
    counter_lock = threading.Lock()

    def narrate(shard, url, record):
        with counter_lock:
            landed[shard] += 1
            done = sum(landed)
            total = sum(count for count in expected
                        if count is not None)
        if progress is not None:
            progress(record, done, total, url)

    def fail_dispatch(pending):
        detail = "; ".join(
            f"shard {shard} @ {servers[server]} "
            f"(attempt {attempt}): {error}"
            for shard, server, attempt, error in failures)
        raise ServeClientError(
            f"{len(pending)}/{total_shards} shard(s) undispatched "
            f"after {sum(attempts)} attempt(s) across "
            f"{total_shards} server(s) — {detail}")

    assignment = {shard: shard for shard in range(total_shards)}
    pending = list(range(total_shards))
    round_number = 0
    while pending:
        round_number += 1
        # Phase 1 — submit every pending shard before streaming any,
        # so the combined total is known up front (progress never
        # shows a falsely complete "[4/4]" while another shard is
        # still pending) and a rejected submission fails the round
        # before minutes of streaming.
        receipts = {}
        round_failures = []
        for shard in pending:
            server = assignment[shard]
            attempts[shard] += 1
            shard_request = dict(request or {})
            shard_request["shard"] = [shard, total_shards]
            try:
                receipts[shard] = clients[server].submit(
                    shard_request)
                expected[shard] = receipts[shard]["points"]
            except Exception as error:  # noqa: BLE001 — gather
                round_failures.append((shard, server, error))
        if on_receipts is not None and round_number == 1:
            on_receipts(dict(receipts))

        # Phase 2 — follow this round's streams concurrently.
        def dispatch(shard, server, receipt):
            url = servers[server]
            with counter_lock:
                landed[shard] = 0  # a retried shard recounts
            try:
                with trace.adopt(dispatch_carrier), \
                        trace.span("shard", shard=shard, server=url):
                    payloads[shard] = clients[server].follow(
                        receipt,
                        progress=lambda record, _done, _total:
                        narrate(shard, url, record))
                producers[shard] = url
            except Exception as error:  # noqa: BLE001 — any
                # dispatch failure must land in the aggregate
                # report, not kill the thread and masquerade as a
                # malformed merge later.
                round_failures.append((shard, server, error))

        threads = [threading.Thread(
            target=dispatch, args=(shard, assignment[shard], receipt),
            name=f"repro-submit-{shard}", daemon=True)
            for shard, receipt in receipts.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        fatal = None
        retry_hint = 0.0
        for shard, server, error in round_failures:
            failures.append((shard, server, attempts[shard], error))
            status = getattr(error, "status", None)
            if status is None:
                # Connection-level death or a failed job: treat the
                # server as suspect for the rest of this dispatch.
                dead.add(server)
            if _is_fatal(error):
                fatal = error
            hint = getattr(error, "retry_after", None)
            if hint:
                retry_hint = max(retry_hint, float(hint))

        # Completeness — the same coverage rule the merge enforces.
        pending = missing_shard_indices(payloads, total_shards)
        if not pending:
            break
        survivors = [index for index in range(total_shards)
                     if index not in dead]
        exhausted = [shard for shard in pending
                     if attempts[shard] >= max_attempts]
        if fatal is not None or not survivors or exhausted:
            fail_dispatch(pending)
        # Rebalance: the missing shards go round-robin over the
        # survivors, avoiding the server that just dropped each
        # shard whenever there is any other choice.
        for offset, shard in enumerate(pending):
            previous = assignment[shard]
            choices = [index for index in survivors
                       if index != previous] or survivors
            assignment[shard] = choices[offset % len(choices)]
        delay = backoff_delay(round_number, backoff_seconds,
                              retry_hint)
        if delay > 0:
            time.sleep(delay)

    result = merge_sweep_payloads(
        payloads, sources=[f"shard {index} @ {producers[index]}"
                           for index in range(total_shards)])
    return result, payloads
