"""Client for ``repro serve``: submit, stream, and fan out shards.

:class:`SweepClient` speaks to one server with nothing but
``urllib`` — submit a sweep, follow its NDJSON stream point by
point, fetch the final mergeable payload.

:func:`run_distributed` is the distributed dispatch the runtime was
built toward: given *N* server URLs it submits ``shard i/N`` of the
same sweep to server *i* (the servers never talk to each other),
streams all shards concurrently, and reassembles the payloads
locally with :func:`repro.runtime.shard.merge_sweep_payloads` — the
exact function that merges ``--json`` shard *files*.  Distribution
is therefore pure composition of the PR 2 contract: a server is just
a machine that happens to produce its shard payload over a socket
instead of a filesystem.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

from repro.errors import ReproError
from repro.runtime.shard import merge_sweep_payloads


class ServeClientError(ReproError):
    """Transport or protocol failure talking to a sweep server."""


def describe_record(record, done, total, origin=""):
    """One ``[done/total] kernel@config/variant ...`` progress line.

    Rebuilds the streamed record's point and renders it through the
    same :func:`~repro.runtime.stream.point_status` the local
    progress lines use, so a remote sweep narrates exactly like a
    local one; ``origin`` names the server when several stream at
    once.
    """
    from repro.runtime.shard import point_from_json
    from repro.runtime.stream import point_status

    spec = record.get("spec", {})
    try:
        status = point_status(point_from_json(record.get("point")
                                              or {}))
    except (KeyError, TypeError):
        status = "error"  # a record we cannot parse is still a line
    source = "cache" if record.get("from_cache") else "computed"
    where = f" @ {origin}" if origin else ""
    return (f"[{done}/{total}] {spec.get('kernel')}"
            f"@{spec.get('config')}/{spec.get('variant')}: {status} "
            f"({source}{where})")


class SweepClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, base_url, timeout=600.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _open(self, path, body=None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=headers)
        try:
            return urllib.request.urlopen(request,
                                          timeout=self.timeout)
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                payload = json.loads(error.read().decode("utf-8"))
                detail = payload.get("error", "")
            except Exception:
                pass
            raise ServeClientError(
                f"{url}: HTTP {error.code}"
                + (f": {detail}" if detail else "")) from None
        except (urllib.error.URLError, OSError,
                TimeoutError) as error:
            raise ServeClientError(
                f"cannot reach sweep server at {url}: "
                f"{error}") from None

    def _json(self, path, body=None):
        try:
            with self._open(path, body=body) as response:
                raw = response.read().decode("utf-8")
        except OSError as error:
            raise ServeClientError(
                f"{self.base_url}{path}: connection lost "
                f"({error})") from None
        try:
            return json.loads(raw)
        except ValueError as error:
            raise ServeClientError(
                f"{self.base_url}{path}: not JSON "
                f"({error})") from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self):
        return self._json("/healthz")

    def cache_stats(self):
        return self._json("/v1/cache/stats")

    def figures(self):
        return self._json("/v1/figures")["figures"]

    def jobs(self):
        return self._json("/v1/sweeps")["jobs"]

    def submit(self, request):
        """POST one sweep request; returns the submission receipt."""
        return self._json("/v1/sweeps", body=request)

    def submit_exploration(self, request):
        """POST one exploration request (see ``repro.dse``)."""
        return self._json("/v1/explorations", body=request)

    def explorations(self):
        return self._json("/v1/explorations")["jobs"]

    def run_exploration(self, request, progress=None):
        """Submit an exploration, stream it, return its document.

        Rides :meth:`follow` unchanged — exploration jobs stream
        through the same record log as sweeps; the receipt's
        ``points`` is the exhaustive-grid upper bound, so the stream
        may (deliberately) end before ``done == total``.
        """
        return self.follow(self.submit_exploration(request),
                           progress=progress)

    def status(self, job_id):
        return self._json(f"/v1/sweeps/{job_id}")

    def stream(self, job_id):
        """Yield the job's point records as the server lands them.

        A socket timeout or reset mid-stream surfaces as a
        :class:`ServeClientError` (naming the server), never a bare
        ``TimeoutError``/``OSError`` — callers and the distributed
        dispatcher handle one exception family.
        """
        path = f"/v1/sweeps/{job_id}/stream"
        try:
            with self._open(path) as response:
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except ValueError as error:
                        raise ServeClientError(
                            f"{self.base_url}{path}: bad NDJSON "
                            f"line ({error})") from None
        except OSError as error:
            raise ServeClientError(
                f"{self.base_url}{path}: connection lost "
                f"mid-stream ({error})") from None

    def follow(self, receipt, progress=None):
        """Stream a submitted job to completion; return its payload.

        ``progress`` is called with ``(record, done, total)`` per
        landed point.  Completion is detected by the stream closing;
        a job that *failed* (rather than finishing short-handed — a
        crashed point is still a point) raises with the server-side
        error.  The single copy of the submit-side protocol: both
        :meth:`run` and the distributed dispatcher go through here.
        """
        total = receipt["points"]
        done = 0
        for record in self.stream(receipt["id"]):
            done += 1
            if progress is not None:
                progress(record, done, total)
        status = self.status(receipt["id"])
        if status["status"] != "done":
            raise ServeClientError(
                f"{self.base_url}: job {receipt['id']} "
                f"{status['status']}: {status.get('error')}")
        return status["payload"]

    def run(self, request, progress=None):
        """Submit, follow the stream, return the final payload."""
        return self.follow(self.submit(request), progress=progress)


def run_distributed(servers, request, progress=None, timeout=600.0):
    """Shard one sweep across ``servers``; merge the results locally.

    Server *i* of *N* receives the same request plus
    ``shard = [i, N]``, so the union of what the servers compute is
    provably the whole sweep (the sharding contract) and the merge
    validates completeness and fingerprints exactly as it does for
    shard files.  Returns ``(SweepResult, payloads)``.  Any server
    failing fails the whole dispatch — a silent partial merge would
    be worse — and ``progress`` (called with
    ``(record, done, total, server_url)``) may interleave across
    servers.
    """
    servers = list(servers)
    if not servers:
        raise ServeClientError("no sweep servers given")
    if "shard" in (request or {}):
        raise ServeClientError(
            "'shard' is chosen by the dispatcher; submit the "
            "unsharded request")
    total_shards = len(servers)
    payloads = [None] * total_shards
    failures = [None] * total_shards
    counter_lock = threading.Lock()
    counters = {"done": 0}

    def report(problems):
        detail = "; ".join(f"shard {index} @ {servers[index]}: "
                           f"{error}" for index, error in problems)
        raise ServeClientError(
            f"{len(problems)}/{total_shards} shard dispatches "
            f"failed — {detail}")

    # Phase 1 — submit every shard before streaming any, so the
    # combined total is known up front (progress never shows a
    # falsely complete "[4/4]" while another server's shard is still
    # pending) and a rejected submission fails the dispatch before
    # minutes of streaming.
    clients = [SweepClient(url, timeout=timeout) for url in servers]
    receipts = [None] * total_shards
    for index, client in enumerate(clients):
        shard_request = dict(request or {})
        shard_request["shard"] = [index, total_shards]
        try:
            receipts[index] = client.submit(shard_request)
        except Exception as error:  # noqa: BLE001 — gather, report
            failures[index] = error
    problems = [(index, error)
                for index, error in enumerate(failures)
                if error is not None]
    if problems:
        report(problems)
    total_points = sum(receipt["points"] for receipt in receipts)

    def narrate(url, record):
        with counter_lock:
            counters["done"] += 1
            done = counters["done"]
        if progress is not None:
            progress(record, done, total_points, url)

    # Phase 2 — follow all the streams concurrently.
    def dispatch(index, url):
        try:
            payloads[index] = clients[index].follow(
                receipts[index],
                progress=lambda record, _done, _total:
                narrate(url, record))
        except Exception as error:  # noqa: BLE001 — any dispatch
            # failure must surface in the combined report, not kill
            # the thread and masquerade as a malformed merge later.
            failures[index] = error

    threads = [threading.Thread(target=dispatch, args=(index, url),
                                name=f"repro-submit-{index}",
                                daemon=True)
               for index, url in enumerate(servers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    problems = [(index, error)
                for index, error in enumerate(failures)
                if error is not None]
    if problems:
        report(problems)
    result = merge_sweep_payloads(
        payloads, sources=[f"shard {i} @ {url}"
                           for i, url in enumerate(servers)])
    return result, payloads
