"""Sweep jobs: the unit of work behind the HTTP service.

A :class:`SweepJob` is one submitted sweep (whole, one shard of a
larger sweep, or a figure's prewarm set) moving through
``queued -> running -> done/failed``.  While it runs, every landed
point is appended to an in-order record log — the same
``{"pos", "spec", "point"}`` record the shard JSON payload of
:mod:`repro.runtime.shard` carries, plus ``from_cache`` — which is
what the ``/stream`` endpoint replays line by line: a reader attached
at any moment first drains everything already landed, then blocks on
a condition variable until the next point (or the end of the job).

The :class:`JobManager` schedules jobs *concurrently*: up to
``max_concurrent_jobs`` runner threads pull from one priority queue
(higher ``priority`` first, FIFO within a priority), and each job
draws a worker-process budget from one shared :class:`WorkerPool` —
so a giant exploration can saturate the pool while a one-point probe
submitted after it still starts immediately (with an inline budget)
instead of starving behind it.  Every job executes through
:func:`repro.runtime.stream.stream_specs`, so the service inherits
the runtime's whole contract for free: cache hits stream out first,
crashes are captured per point, deterministic outcomes persist to
the shared :class:`ResultCache`.  A finished job's ``payload`` is
exactly a ``sweep/figure --json`` payload, so anything the service
computes can be merged offline with ``repro merge`` — the service is
a transport, not a new format.

Admission is bounded: when ``max_queued_jobs`` jobs are already
waiting, :meth:`JobManager.submit` raises :class:`BusyError` — the
HTTP layer answers ``429`` with a ``Retry-After`` hint — instead of
queueing unboundedly, and ``max_specs_per_job`` caps how much work a
single request may claim.  Backpressure over buffering: a client
told "busy" can retry a survivor; a request buried in an unbounded
queue just times out minutes later with no information.

Two kinds of job share that machinery.  A *sweep* job
(:class:`SweepRequest`) is a fixed spec list; an *exploration* job
(:class:`ExplorationRequest`, ``POST /v1/explorations``) runs a
:mod:`repro.dse` search whose strategy decides point by point what to
evaluate — its record stream carries the points in evaluation order,
and its final payload is the exploration document
(:meth:`~repro.dse.runner.ExplorationResult.payload`) instead of a
mergeable sweep payload.

The manager is bounded for long-lived servers: finished jobs beyond
``max_finished_jobs``, or older than ``finished_ttl_seconds``, are
evicted (oldest-finished first) on every submission and listing;
the listing endpoints report how many were dropped.  Eviction is
restricted to *terminal* jobs — a queued or running job is never
dropped, however hard the retention pressure, because evicting it
would orphan a job the scheduler still intends to run.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import uuid

from repro.errors import ReproError
from repro.obs import get_logger, metrics, trace
from repro.serve.journal import TERMINAL_EVENTS
from repro.runtime.shard import (
    parse_shard,
    point_to_json,
    shard_indices,
    spec_from_json,
    spec_to_json,
    sweep_fingerprint,
    sweep_json_payload,
)
from repro.runtime.sweep import SweepResult, validated_sweep_specs

_log = get_logger("repro.serve.jobs")

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: States a job can never leave.
TERMINAL = (DONE, FAILED)

#: Default retention of finished jobs (count and age).  Bounded by
#: default: an unbounded job table on a long-lived server is a slow
#: memory leak, one payload per sweep ever submitted.
DEFAULT_MAX_FINISHED_JOBS = 64
DEFAULT_FINISHED_TTL_SECONDS = 6 * 3600.0

#: Default scheduler shape: how many jobs may run at once, and how
#: many may wait before submissions bounce with ``429``.
DEFAULT_MAX_CONCURRENT_JOBS = 4
DEFAULT_MAX_QUEUED_JOBS = 128

#: Largest spec list one job may claim (the full paper sweep is 140
#: points; the biggest exploration grids are a few thousand).  A
#: request beyond this is a mistake or abuse, not a sweep.
DEFAULT_MAX_SPECS_PER_JOB = 50_000

#: ``Retry-After`` hint handed to clients bounced by backpressure.
DEFAULT_RETRY_AFTER_SECONDS = 5

#: Accepted ``priority`` range (higher runs first; default 0).
PRIORITY_MIN, PRIORITY_MAX = -100, 100


class RequestError(ReproError):
    """A malformed or invalid sweep submission (HTTP 400)."""


class BusyError(ReproError):
    """The job queue is at capacity (HTTP 429 + ``Retry-After``)."""

    def __init__(self, message, retry_after=DEFAULT_RETRY_AFTER_SECONDS):
        super().__init__(message)
        self.retry_after = retry_after


class UnknownJobError(ReproError):
    """A job id the manager has never issued (HTTP 404)."""


def validated_priority(value):
    """Check one request's ``priority`` field (default 0)."""
    if value is None:
        return 0
    if not isinstance(value, int) or isinstance(value, bool):
        raise RequestError(
            f"'priority' must be an integer, got {value!r}")
    if not PRIORITY_MIN <= value <= PRIORITY_MAX:
        raise RequestError(
            f"'priority' must be between {PRIORITY_MIN} and "
            f"{PRIORITY_MAX}, got {value}")
    return value


class SweepRequest:
    """A validated submission: the specs to run and their identity.

    ``full_specs`` is the complete sweep the request was carved from;
    ``positions``/``specs`` are the slice this job actually computes
    (the identity when unsharded).  Carrying both lets the finished
    job emit a payload that merges with the sibling shards computed
    by *other* servers — the distributed-dispatch contract.
    """

    kind = "sweep"

    def __init__(self, full_specs, shard=None, label="sweep",
                 priority=0):
        if not full_specs:
            raise RequestError("request resolves to zero specs")
        self.full_specs = [spec.resolve() for spec in full_specs]
        self.shard = shard
        self.label = label
        self.priority = priority
        if shard is not None:
            self.positions = shard_indices(self.full_specs, *shard)
        else:
            self.positions = list(range(len(self.full_specs)))
        self.specs = [self.full_specs[i] for i in self.positions]
        self.fingerprint = sweep_fingerprint(self.full_specs)

    @property
    def spec_total(self):
        return len(self.full_specs)


class ExplorationRequest:
    """A validated ``POST /v1/explorations`` submission.

    Wraps one :class:`~repro.dse.runner.ExplorationConfig`.  The
    ``specs`` it advertises are the exhaustive design x kernel grid —
    an *upper bound* on what the strategy will actually evaluate, so
    status snapshots and stream consumers know the most points they
    could see; streams simply end earlier when the strategy prunes
    (completion is "the stream closed", exactly as for sweeps).
    """

    kind = "exploration"

    def __init__(self, config, priority=0):
        from repro.dse.runner import exploration_grid_specs

        self.config = config
        self.full_specs = [spec.resolve()
                           for spec in exploration_grid_specs(config)]
        if not self.full_specs:
            raise RequestError("exploration resolves to zero points")
        self.shard = None
        self.label = f"explore:{config.strategy}"
        self.priority = priority
        self.positions = list(range(len(self.full_specs)))
        self.specs = self.full_specs
        self.fingerprint = sweep_fingerprint(self.full_specs)

    @property
    def spec_total(self):
        return len(self.full_specs)


#: ``POST /v1/explorations`` body keys (all optional).
EXPLORATION_KEYS = ("space", "depths", "samples", "kernels", "variant",
                    "strategy", "budget", "seed", "objectives", "rows",
                    "cols", "backend", "priority")


def resolve_exploration_request(body):
    """Parse one ``POST /v1/explorations`` JSON body.

    Every field is optional — ``{}`` explicitly requests the default
    exploration (ladder + Table I space, all kernels, exhaustive) —
    and every axis is validated by the same
    :func:`~repro.dse.runner.validated_exploration_config` the CLI
    uses, so a typo fails identically through either door.
    """
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    unknown = set(body) - set(EXPLORATION_KEYS)
    if unknown:
        raise RequestError(
            f"unknown request keys {sorted(unknown)}; expected "
            f"{', '.join(EXPLORATION_KEYS)}")
    for key in ("space", "depths", "kernels", "objectives"):
        value = body.get(key)
        if value is not None and not isinstance(value, (list, tuple)):
            raise RequestError(
                f"{key!r} must be a list, got {value!r}")
    for key in ("samples", "budget", "seed", "rows", "cols"):
        value = body.get(key)
        if value is not None and (not isinstance(value, int)
                                  or isinstance(value, bool)):
            raise RequestError(
                f"{key!r} must be an integer, got {value!r}")
    backend = body.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise RequestError(f"'backend' must be a string, "
                           f"got {backend!r}")
    priority = validated_priority(body.get("priority"))
    from repro.dse.runner import validated_exploration_config

    try:
        config = validated_exploration_config(
            space=body.get("space"), depths=body.get("depths"),
            samples=body.get("samples"), kernels=body.get("kernels"),
            variant=body.get("variant"), strategy=body.get("strategy"),
            budget=body.get("budget"), seed=body.get("seed"),
            objectives=body.get("objectives"), rows=body.get("rows"),
            cols=body.get("cols"), backend=body.get("backend"))
    except RequestError:
        raise
    except (ReproError, TypeError, ValueError) as error:
        # Axis typos and malformed values are user input, hence 400.
        raise RequestError(str(error)) from None
    return ExplorationRequest(config, priority=priority)


def _string_list(body, key):
    """An optional list-of-strings field, strictly typed."""
    value = body.get(key)
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) \
            or not all(isinstance(item, str) for item in value):
        raise RequestError(
            f"{key!r} must be a list of strings, got {value!r}")
    return tuple(value)


def resolve_request(body):
    """Parse one ``POST /v1/sweeps`` JSON body into a request.

    Three submission shapes, mutually exclusive:

    - ``{"figure": "fig6"}`` — the named figure's prewarm specs;
    - ``{"specs": [{...}, ...]}`` — explicit spec dicts in the shard
      JSON encoding (what ``spec_to_json`` emits);
    - axes — ``kernels``/``configs``/``variants``/``seed``/
      ``backend``, each optional, exactly like ``repro sweep``.

    ``"shard": [i, N]`` (or ``"i/N"``) restricts the job to one
    deterministic slice of the resolved sweep; ``"priority"`` (an
    integer, higher first) orders it against other queued jobs.
    """
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    unknown = set(body) - {"figure", "specs", "kernels", "configs",
                           "variants", "seed", "backend", "shard",
                           "priority"}
    if unknown:
        # A typo'd key ({"kernals": ...}) must 400, not silently
        # widen to the full default sweep.
        raise RequestError(
            f"unknown request keys {sorted(unknown)}; expected "
            f"figure, specs, kernels, configs, variants, seed, "
            f"backend, shard, priority")
    # Presence, not truthiness: {"specs": []} must mean "zero specs"
    # (a hard error) — never silently fall through to the full
    # default sweep and burn hours of unrequested mapping.
    modes = [key for key in ("figure", "specs")
             if body.get(key) is not None]
    axes = [key for key in ("kernels", "configs", "variants")
            if body.get(key) is not None]
    if len(modes) > 1 or (modes and axes):
        raise RequestError(
            "pick one of 'figure', 'specs' or the "
            "kernels/configs/variants axes — they are exclusive")
    for pinned in ("seed", "backend"):
        if modes and body.get(pinned) is not None:
            raise RequestError(
                f"{pinned!r} only applies to axes sweeps; "
                f"{modes[0]!r} submissions pin their own specs")
    priority = validated_priority(body.get("priority"))
    shard = body.get("shard")
    if shard is not None:
        try:
            if isinstance(shard, str):
                shard = parse_shard(shard)
            elif (isinstance(shard, (list, tuple)) and len(shard) == 2
                    and all(isinstance(v, int)
                            and not isinstance(v, bool)
                            for v in shard)):
                shard = parse_shard(f"{shard[0]}/{shard[1]}")
            else:
                raise RequestError(
                    f"'shard' must be [index, total] or \"i/N\", "
                    f"got {shard!r}")
        except RequestError:
            raise
        except ReproError as error:
            raise RequestError(str(error)) from None
    try:
        if "figure" in modes:
            name = body["figure"]
            from repro.eval.experiments import (
                FIGURE_NAMES, figure_point_specs)
            if not isinstance(name, str):
                raise RequestError(f"'figure' must be a string, "
                                   f"got {name!r}")
            if name not in FIGURE_NAMES:
                # Distinct from the render-only case below: a typo
                # for a servable figure deserves "unknown", not "has
                # no prewarmable points".
                raise RequestError(
                    f"unknown figure {name!r}; choose from "
                    f"{', '.join(FIGURE_NAMES)}")
            specs = figure_point_specs(name)
            if not specs:
                raise RequestError(
                    f"figure {name!r} has no prewarmable experiment "
                    f"points; see GET /v1/figures for the servable "
                    f"set")
            return SweepRequest(specs, shard=shard, label=name,
                                priority=priority)
        if "specs" in modes:
            raw = body["specs"]
            if not isinstance(raw, list):
                raise RequestError("'specs' must be a list of spec "
                                   "objects")
            try:
                specs = [spec_from_json(item) for item in raw]
            except (AttributeError, KeyError, TypeError,
                    ValueError) as error:
                raise RequestError(
                    f"malformed spec in 'specs': {error}") from None
            return SweepRequest(specs, shard=shard, label="specs",
                                priority=priority)
        seed = body.get("seed")
        if seed is not None and (not isinstance(seed, int)
                                 or isinstance(seed, bool)):
            raise RequestError(f"'seed' must be an integer, "
                               f"got {seed!r}")
        backend = body.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise RequestError(f"'backend' must be a string, "
                               f"got {backend!r}")
        specs = validated_sweep_specs(
            kernels=_string_list(body, "kernels"),
            configs=_string_list(body, "configs"),
            variants=_string_list(body, "variants"),
            seed=seed, backend=backend)
        return SweepRequest(specs, shard=shard, label="sweep",
                            priority=priority)
    except RequestError:
        raise
    except ReproError as error:
        # Axis typos, bad shard maths: user input, hence 400.
        raise RequestError(str(error)) from None


class SweepJob:
    """One submitted sweep and its incrementally landing results."""

    def __init__(self, job_id, request, trace_carrier=None):
        self.id = job_id
        self.request = request
        # The submitting request's trace context, if it carried one:
        # the runner adopts it so the job's spans stitch under the
        # remote caller's trace (and ship home in the payload).
        self.trace_carrier = trace_carrier
        self.status = QUEUED
        self.error = None
        self.created = time.time()
        self.started = None
        self.finished = None
        self.cache_hits = 0
        self.computed = 0
        self.workers_granted = None
        #: Whether the submission was journaled (a recorded body
        #: exists to replay from); lifecycle events follow suit.
        self.journaled = False
        self.records = []
        # Only the JSON payload is retained after completion: the
        # SweepResult's points carry heavy mapping/activity graphs
        # that no endpoint serves, and jobs live for the server's
        # lifetime — keeping them would leak memory per sweep.
        self.payload = None
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    # Lifecycle (called by the manager's runner threads)
    # ------------------------------------------------------------------
    def mark_running(self, workers_granted=None):
        with self._cond:
            self.status = RUNNING
            self.started = time.time()
            self.workers_granted = workers_granted
            self._cond.notify_all()

    def add_update(self, update, positions):
        """Record one landed point at each of its full-sweep positions."""
        spec_json = spec_to_json(update.spec)
        point_json = point_to_json(update.point)
        with self._cond:
            if update.from_cache:
                self.cache_hits += 1
            else:
                self.computed += 1
            for pos in positions:
                self.records.append({
                    "pos": pos,
                    "spec": spec_json,
                    "point": point_json,
                    "from_cache": update.from_cache,
                })
            self._cond.notify_all()

    def finish(self, payload):
        with self._cond:
            self.payload = payload
            self.status = DONE
            self.finished = time.time()
            self._cond.notify_all()

    def fail(self, message):
        with self._cond:
            self.error = message
            self.status = FAILED
            self.finished = time.time()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def is_terminal(self):
        return self.status in TERMINAL

    def snapshot(self):
        """Status dict for ``GET /v1/sweeps/{id}`` (payload excluded)."""
        with self._cond:
            elapsed = None
            if self.started is not None:
                end = self.finished if self.finished is not None \
                    else time.time()
                elapsed = end - self.started
            return {
                "id": self.id,
                "status": self.status,
                "kind": self.request.kind,
                "label": self.request.label,
                "priority": self.request.priority,
                "shard": ({"index": self.request.shard[0],
                           "total": self.request.shard[1]}
                          if self.request.shard is not None else None),
                "points": len(self.request.specs),
                "spec_total": self.request.spec_total,
                "landed": len(self.records),
                "cache_hits": self.cache_hits,
                "computed": self.computed,
                "workers": self.workers_granted,
                "elapsed_seconds": elapsed,
                "error": self.error,
            }

    def iter_records(self, heartbeat=None):
        """Yield records in landing order; block until the job ends.

        Records already landed replay immediately, then the iterator
        waits on the job's condition for each new point.  Because
        records are only appended before the job turns terminal, an
        empty remainder after a terminal snapshot means the stream is
        complete.

        ``heartbeat`` (seconds) makes the iterator yield ``None``
        whenever that long passes with nothing landing — a queued job
        behind a long sweep, or one very slow point, would otherwise
        leave a network reader staring at a silent socket until its
        read timeout kills a perfectly healthy dispatch.  The
        ``/stream`` endpoint turns each ``None`` into a blank
        keepalive line.
        """
        index = 0
        last_yield = time.monotonic()
        while True:
            idle = False
            with self._cond:
                while index >= len(self.records) \
                        and not self.is_terminal:
                    if heartbeat is None:
                        self._cond.wait(timeout=0.5)
                        continue
                    # Wake in time for the heartbeat deadline, not a
                    # fixed 0.5s later — a reader whose idle timeout
                    # is shorter than 0.5s would otherwise die
                    # waiting for a keepalive we promised sooner.
                    remaining = heartbeat \
                        - (time.monotonic() - last_yield)
                    if remaining <= 0:
                        idle = True
                        break
                    self._cond.wait(timeout=min(0.5, remaining))
                batch = self.records[index:]
                terminal = self.is_terminal
            if idle and not batch and not terminal:
                last_yield = time.monotonic()
                yield None
                continue
            yield from batch
            index += len(batch)
            last_yield = time.monotonic()
            if terminal and not batch:
                return


class WorkerPool:
    """Allocator for the shared worker-process budget.

    A runner taking a job asks for as many workers as the job has
    unique specs; the pool grants a slice of what is free, capped at
    an even share of the total across the runners currently holding
    budget.  ``take`` never blocks: a grant of zero means "compute
    inline in the runner thread" (``workers=1``, no processes), so a
    one-point probe still starts immediately while a giant
    exploration holds the whole pool — latency over parallelism for
    the small job, the reverse for the big one.
    """

    def __init__(self, total):
        self.total = max(1, int(total))
        self._free = self.total
        self._holders = 0
        self._lock = threading.Lock()
        metrics.WORKERS_TOTAL.set(self.total)
        metrics.WORKERS_FREE.set(self._free)

    def take(self, want):
        """Grant between 0 and ``want`` workers; pair with give_back."""
        with self._lock:
            self._holders += 1
            share = max(1, self.total // self._holders)
            grant = max(0, min(int(want), self._free, share))
            self._free -= grant
            metrics.WORKERS_FREE.set(self._free)
            return grant

    def give_back(self, grant):
        with self._lock:
            self._free += grant
            self._holders -= 1
            metrics.WORKERS_FREE.set(self._free)

    @property
    def free(self):
        with self._lock:
            return self._free


class JobManager:
    """Concurrent executor of sweep jobs over one shared runtime cache.

    ``max_concurrent_jobs`` daemon runner threads drain one priority
    queue (higher ``priority`` first, submission order within a
    priority — "queued" in a status response is literal), each job
    drawing its worker budget from the shared :class:`WorkerPool` of
    ``workers`` processes.  ``max_queued_jobs`` bounds the queue:
    beyond it, :meth:`submit` raises :class:`BusyError` so the HTTP
    layer can answer ``429`` instead of buffering unboundedly.
    """

    def __init__(self, workers=1, cache=None,
                 max_finished_jobs=DEFAULT_MAX_FINISHED_JOBS,
                 finished_ttl_seconds=DEFAULT_FINISHED_TTL_SECONDS,
                 max_concurrent_jobs=DEFAULT_MAX_CONCURRENT_JOBS,
                 max_queued_jobs=DEFAULT_MAX_QUEUED_JOBS,
                 max_specs_per_job=DEFAULT_MAX_SPECS_PER_JOB,
                 journal=None, point_timeout=None):
        self.workers = max(1, int(workers))
        self.cache = cache
        # Durable job journal (a :class:`~repro.serve.journal.
        # JobJournal` or None): lifecycle transitions are recorded
        # best-effort, and :meth:`resume_from_journal` requeues what
        # a killed predecessor left queued or running.
        self.journal = journal
        self.replay_stats = None
        # Per-point deadline forwarded to every sweep's streaming
        # engine, so one wedged point cannot hang a job forever.
        self.point_timeout = point_timeout
        # Retention policy for terminal jobs; ``None`` disables the
        # corresponding bound.  Queued/running jobs never evict.
        self.max_finished_jobs = max_finished_jobs
        self.finished_ttl_seconds = finished_ttl_seconds
        self.max_concurrent_jobs = max(1, int(max_concurrent_jobs))
        self.max_queued_jobs = max_queued_jobs
        self.max_specs_per_job = max_specs_per_job
        self.evicted = 0
        self.pool = WorkerPool(self.workers)
        # The server is multithreaded (HTTP handlers + the runners),
        # so worker processes must never plain-fork: a child forked
        # while another thread holds a lock inherits it locked and
        # hangs, wedging the scheduler forever.  forkserver forks
        # workers from a clean single-threaded helper; spawn is the
        # fallback where it does not exist.
        # (A point deadline forces the executor path even at one
        # worker — the watchdog needs a reappable child — so the
        # non-fork context matters then too.)
        self._mp_context = None
        if self.workers > 1 or point_timeout is not None:
            import multiprocessing
            try:
                self._mp_context = multiprocessing.get_context(
                    "forkserver")
            except ValueError:
                self._mp_context = multiprocessing.get_context(
                    "spawn")
        self.jobs = {}  # insertion-ordered
        self._heap = []  # (-priority, seq, job): higher first, FIFO ties
        self._running = set()  # job ids currently held by a runner
        self._idle_runners = 0  # runner threads parked on the heap
        self._lock = threading.Condition()
        self._closed = False
        self._ids = itertools.count(1)
        self._seq = itertools.count()
        self._threads = [
            threading.Thread(target=self._run,
                             name=f"repro-serve-jobs-{index}",
                             daemon=True)
            for index in range(self.max_concurrent_jobs)]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission / lookup
    # ------------------------------------------------------------------
    def submit_request(self, body, trace_carrier=None, job_id=None):
        """Validate one POST body and enqueue its sweep job."""
        return self.submit(resolve_request(body),
                           trace_carrier=trace_carrier,
                           job_id=job_id, journal_body=body)

    def submit_exploration_request(self, body, trace_carrier=None,
                                   job_id=None):
        """Validate one POST body and enqueue its exploration job."""
        return self.submit(resolve_exploration_request(body),
                           trace_carrier=trace_carrier,
                           job_id=job_id, journal_body=body)

    def submit(self, request, trace_carrier=None, job_id=None,
               journal_body=None):
        """Enqueue one resolved request.

        ``job_id`` pins the identifier (journal replay reuses the
        crashed server's IDs so clients re-attach); ``journal_body``
        is the raw request body persisted with the ``submitted``
        event — without it the job runs normally but cannot be
        replayed after a crash (programmatic submissions have no
        body; every HTTP submission does).
        """
        if self.max_specs_per_job is not None \
                and len(request.specs) > self.max_specs_per_job:
            raise RequestError(
                f"job of {len(request.specs)} specs exceeds this "
                f"server's {self.max_specs_per_job}-spec limit; "
                f"shard the request")
        if job_id is None:
            job_id = f"job-{next(self._ids)}-{uuid.uuid4().hex[:8]}"
        job = SweepJob(job_id, request, trace_carrier=trace_carrier)
        with self._lock:
            if self._closed:
                raise ReproError("job manager is shut down")
            if job_id in self.jobs:
                raise ReproError(
                    f"job id {job_id!r} already exists; a pinned id "
                    f"may only be replayed once")
            # "Queued" means waiting: a submission an idle runner
            # will pick up immediately never counts against the
            # bound (otherwise ``max_queued_jobs=0`` could not
            # accept any work at all).
            if self.max_queued_jobs is not None \
                    and self._idle_runners == 0 \
                    and len(self._heap) >= self.max_queued_jobs:
                metrics.SCHED_REJECTIONS.inc()
                raise BusyError(
                    f"job queue is full ({len(self._heap)} waiting, "
                    f"bound {self.max_queued_jobs}); retry in "
                    f"{DEFAULT_RETRY_AFTER_SECONDS}s or submit to "
                    f"another server")
            self._evict_locked()
            self.jobs[job_id] = job
            heapq.heappush(self._heap,
                           (-request.priority, next(self._seq), job))
            metrics.SCHED_QUEUE_DEPTH.set(len(self._heap))
            self._lock.notify_all()
        if self.journal is not None and journal_body is not None:
            # Only journaled submissions get lifecycle events too:
            # a programmatic job has no recorded body to replay from,
            # so journalling its transitions would just litter replay
            # stats with unrestorable entries.
            job.journaled = True
            self.journal.record(
                "submitted", job_id, job_kind=request.kind,
                body=journal_body, priority=request.priority,
                label=request.label, points=len(request.specs))
        _log.debug("job submitted", job_id=job_id, kind=request.kind,
                  label=request.label, points=len(request.specs),
                  priority=request.priority)
        return job

    def resume_from_journal(self):
        """Requeue every journaled job that never reached a terminal
        state, under its original ID.

        The durable half of ``repro serve --resume``: the journal is
        reduced to the last event per job; ``finished`` / ``failed``
        jobs are left to rest, anything still ``submitted`` or
        ``started`` when the previous server died is resubmitted by
        re-resolving its recorded request body.  Jobs whose body was
        never recorded, no longer validates, or trips admission
        control are counted ``unrestorable`` rather than aborting
        the boot — a recovering server must come up with whatever it
        can save.  Returns (and stores) the replay stats that
        ``/healthz`` reports.
        """
        stats = {"journaled": 0, "requeued": 0, "completed": 0,
                 "unrestorable": 0, "skipped_lines": 0}
        if self.journal is None:
            self.replay_stats = stats
            return stats
        states, skipped = self.journal.replay()
        stats["journaled"] = len(states)
        stats["skipped_lines"] = skipped
        for job_id, state in states.items():
            if state.get("event") in TERMINAL_EVENTS:
                stats["completed"] += 1
                continue
            body = state.get("body")
            if body is None or job_id in self.jobs:
                stats["unrestorable"] += 1
                continue
            try:
                if state.get("job_kind") == "exploration":
                    self.submit_exploration_request(body,
                                                    job_id=job_id)
                else:
                    self.submit_request(body, job_id=job_id)
            except ReproError as error:
                stats["unrestorable"] += 1
                _log.warning("journal.unrestorable_job",
                             job_id=job_id, error=str(error))
                continue
            stats["requeued"] += 1
            metrics.JOBS_REPLAYED.inc()
            _log.info("journal.job_requeued", job_id=job_id,
                      kind=state.get("job_kind", "sweep"))
        self.replay_stats = stats
        return stats

    def get(self, job_id):
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJobError(
                f"no such sweep job: {job_id!r} (never submitted, or "
                f"finished and already evicted)")
        return job

    def list_jobs(self, kind=None):
        """Snapshots in submission order (oldest first).

        ``kind`` filters to one job kind (``"sweep"`` /
        ``"exploration"``); listing also sweeps the retention policy,
        so a long-lived server's job table stays bounded even if
        nobody submits.
        """
        with self._lock:
            self._evict_locked()
            jobs = list(self.jobs.values())
        return [job.snapshot() for job in jobs
                if kind is None or job.request.kind == kind]

    def counts(self):
        """``{status: count}`` over the retained jobs."""
        totals = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for job in list(self.jobs.values()):
            totals[job.status] += 1
        return totals

    def queue_depth(self):
        """How many submitted jobs are waiting for a runner."""
        with self._lock:
            return len(self._heap)

    def _evict_locked(self):
        """Apply the retention policy (caller holds ``_lock``).

        TTL first (a finished job older than the TTL goes regardless
        of count), then the count bound, oldest-finished first.
        Only *terminal* jobs are eligible: a job still queued (in the
        heap) or held by a runner must survive any retention
        pressure — evicting it would orphan work the scheduler still
        intends to run, and its submitter would watch a live job
        404.  The live-set check makes that hold even if a job's
        status write races this scan.
        """
        live = {job.id for _, _, job in self._heap}
        live.update(self._running)
        terminal = [job for job in self.jobs.values()
                    if job.is_terminal and job.id not in live]
        drop = []
        if self.finished_ttl_seconds is not None:
            horizon = time.time() - self.finished_ttl_seconds
            drop = [job for job in terminal
                    if job.finished is not None
                    and job.finished < horizon]
        if self.max_finished_jobs is not None:
            kept = [job for job in terminal if job not in drop]
            excess = len(kept) - self.max_finished_jobs
            if excess > 0:
                kept.sort(key=lambda job: (job.finished or 0.0,
                                           job.id))
                drop += kept[:excess]
        for job in drop:
            del self.jobs[job.id]
        self.evicted += len(drop)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            with self._lock:
                self._idle_runners += 1
                try:
                    while not self._heap and not self._closed:
                        self._lock.wait()
                finally:
                    self._idle_runners -= 1
                if self._closed:
                    return
                _, _, job = heapq.heappop(self._heap)
                metrics.SCHED_QUEUE_DEPTH.set(len(self._heap))
                self._running.add(job.id)
            try:
                grant = self.pool.take(len(job.request.specs))
                try:
                    self._execute(job, workers=max(1, grant))
                finally:
                    self.pool.give_back(grant)
            finally:
                with self._lock:
                    self._running.discard(job.id)

    def _execute(self, job, workers):
        started = time.perf_counter()
        _log.debug("job started", job_id=job.id,
                  kind=job.request.kind, workers=workers)
        if self.journal is not None and job.journaled:
            self.journal.record("started", job.id)
        try:
            if job.request.kind == "exploration":
                return self._execute_exploration(job, workers)
            return self._execute_sweep(job, workers)
        finally:
            elapsed = time.perf_counter() - started
            metrics.JOB_SECONDS.observe(elapsed)
            metrics.JOBS.inc(status=job.status)
            if self.journal is not None and job.journaled \
                    and job.is_terminal:
                # A non-terminal exit (BaseException tearing the
                # runner down) records nothing: the journal's last
                # word stays "started", so a resume requeues the job.
                self.journal.record(
                    "failed" if job.status == FAILED else "finished",
                    job.id, status=job.status, error=job.error)
            _log.debug("job finished", job_id=job.id,
                      status=job.status,
                      elapsed_seconds=round(elapsed, 3),
                      error=job.error)

    def _attach_trace(self, job, payload):
        """Ship the job's spans home inside its finished payload.

        Only for jobs submitted with a trace carrier — the remote
        caller owns the trace, so its spans are handed over (drained,
        not copied: they must not linger in this server's buffer) as
        an additive ``"trace"`` key the client pops before use.
        Must run before ``job.finish`` — the payload is read
        concurrently the moment the job turns terminal.
        """
        context = trace.parse_traceparent(
            (job.trace_carrier or {}).get("traceparent", ""))
        if context is not None:
            payload["trace"] = trace.spans_for_trace(
                context.trace_id, drain=True)

    def _execute_exploration(self, job, workers):
        """Run one :mod:`repro.dse` search as a job.

        Landed points stream in evaluation order (their ``pos`` is
        the landing index — an exploration has no "full sweep" to
        position against); the finished payload is the exploration
        document, not a mergeable sweep payload.
        """
        from repro.dse.runner import run_exploration

        job.mark_running(workers_granted=workers)
        try:
            landed = itertools.count()

            def observe(update):
                job.add_update(update, [next(landed)])

            # The job span must close before _attach_trace drains the
            # buffer, or it would miss the shipment and orphan every
            # child span on the caller's side.
            with trace.adopt(job.trace_carrier):
                with trace.span("job", kind="exploration",
                                job_id=job.id,
                                label=job.request.label):
                    result = run_exploration(
                        job.request.config, workers=workers,
                        cache=self.cache, progress=observe,
                        mp_context=self._mp_context)
            payload = result.payload()
            self._attach_trace(job, payload)
            job.finish(payload)
        except Exception as error:  # noqa: BLE001 — a job must never
            # kill its runner thread; the failure is the job's result.
            job.fail(f"{type(error).__name__}: {error}")

    def _execute_sweep(self, job, workers):
        from repro.runtime.stream import stream_specs

        job.mark_running(workers_granted=workers)
        request = job.request
        try:
            fanout = {}
            for local, spec in enumerate(request.specs):
                fanout.setdefault(spec, []).append(local)
            landed = {}

            def observe(update):
                landed[update.spec] = update.point
                job.add_update(update,
                               [request.positions[i]
                                for i in fanout[update.spec]])

            started = time.perf_counter()
            # Close the job span before _attach_trace drains the
            # buffer — a still-open span would miss the shipment and
            # orphan every child on the caller's side.
            with trace.adopt(job.trace_carrier):
                with trace.span("job", kind="sweep", job_id=job.id,
                                label=request.label,
                                points=len(request.specs)):
                    for _ in stream_specs(
                            request.specs, workers=workers,
                            cache=self.cache, progress=observe,
                            mp_context=self._mp_context,
                            point_timeout=self.point_timeout):
                        pass
            result = SweepResult(
                specs=request.specs,
                points=[landed[spec] for spec in request.specs],
                cache_hits=job.cache_hits, computed=job.computed,
                elapsed_seconds=time.perf_counter() - started)
            payload = sweep_json_payload(
                result, shard=request.shard,
                positions=request.positions,
                spec_total=request.spec_total,
                fingerprint=request.fingerprint)
            self._attach_trace(job, payload)
            job.finish(payload)
        except Exception as error:  # noqa: BLE001 — a job must never
            # kill its runner thread; the failure is the job's result.
            job.fail(f"{type(error).__name__}: {error}")

    def close(self):
        """Stop the runners; fail whatever never got to run."""
        with self._lock:
            self._closed = True
            pending = [job for _, _, job in self._heap]
            self._heap.clear()
            self._lock.notify_all()
        for job in pending:
            job.fail("job manager shut down before the job ran")
        for thread in self._threads:
            thread.join(timeout=5.0)
