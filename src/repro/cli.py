"""Command-line interface: ``python -m repro <command>``.

Commands mirror the user journeys of the examples:

- ``map KERNEL``    — map a paper kernel and print the mapping summary
  plus the per-tile context-usage chart (the Fig 2 view);
- ``run KERNEL``    — map, assemble, simulate, verify against the
  reference, and print cycles vs the CPU baseline;
- ``energy KERNEL`` — one Table II row with component breakdowns;
- ``area``          — the Fig 11 area comparison;
- ``kernels``       — list the available kernels.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.arch.configs import CGRA_CONFIGS, get_config
from repro.codegen.assembler import assemble
from repro.codegen.listing import usage_chart
from repro.errors import ReproError, UnmappableError
from repro.kernels import PAPER_KERNEL_ORDER, get_kernel
from repro.mapping.flow import VARIANTS, map_kernel
from repro.sim.cgra import CGRASimulator
from repro.sim.cpu import CPUModel


def _parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-memory aware CGRA mapping (DATE 2019 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("kernel", choices=PAPER_KERNEL_ORDER)
        p.add_argument("--config", default="HET1",
                       choices=sorted(CGRA_CONFIGS))
        p.add_argument("--flow", default="full",
                       choices=sorted(VARIANTS))
        p.add_argument("--seed", type=int, default=7)

    add_common(sub.add_parser("map", help="map a kernel, show usage"))
    add_common(sub.add_parser("run", help="map + simulate + verify"))
    add_common(sub.add_parser("energy", help="energy breakdown row"))
    sub.add_parser("area", help="Fig 11 area comparison")
    sub.add_parser("kernels", help="list available kernels")
    return parser


def _map(args):
    kernel = get_kernel(args.kernel)
    result = map_kernel(kernel.cdfg, get_config(args.config),
                        VARIANTS[args.flow]())
    print(result.summary())
    program = assemble(result, kernel.cdfg, enforce_fit=False)
    print(usage_chart(program))
    return 0


def _run(args):
    kernel = get_kernel(args.kernel)
    result = map_kernel(kernel.cdfg, get_config(args.config),
                        VARIANTS[args.flow]())
    program = assemble(result, kernel.cdfg,
                       enforce_fit=result.options.ecmap)
    inputs = kernel.make_inputs(np.random.default_rng(args.seed))
    memory = kernel.make_memory(inputs)
    run = CGRASimulator(program, memory).run()
    expected = kernel.reference(inputs)
    for region in kernel.output_regions:
        if run.region(kernel.cdfg, region) != expected[region]:
            print(f"FAIL: region {region} mismatch", file=sys.stderr)
            return 1
    cpu = CPUModel(kernel.cdfg).run(memory)
    print(f"{args.kernel} on {args.config} ({args.flow} flow): "
          f"verified OK")
    print(f"  CGRA: {run.cycles} cycles   CPU: {cpu.cycles} cycles   "
          f"speedup {cpu.cycles / run.cycles:.1f}x")
    return 0


def _energy(args):
    from repro.eval.experiments import cpu_point, execute_point
    cpu_cycles, cpu_energy = cpu_point(args.kernel)
    print(f"{args.kernel}: CPU {cpu_energy.total_uj:.4f} uJ "
          f"({cpu_cycles} cycles)")
    point = execute_point(args.kernel, args.config, args.flow)
    if not point.mapped:
        print(f"  {args.config}/{args.flow}: no mapping ({point.error})")
        return 1
    gain = cpu_energy.total_uj / point.energy_uj
    print(f"  {args.config}/{args.flow}: {point.energy_uj:.4f} uJ "
          f"({point.cycles} cycles, {gain:.1f}x vs CPU)")
    for part, pj in sorted(point.energy.parts.items()):
        print(f"    {part:15s} {pj / 1e6:8.4f} uJ "
              f"({point.energy.fraction(part):5.1%})")
    return 0


def _area(_args):
    from repro.eval.experiments import fig11_data
    from repro.eval.reporting import render_fig11
    print(render_fig11(fig11_data()))
    return 0


def _kernels(_args):
    for name in PAPER_KERNEL_ORDER:
        kernel = get_kernel(name)
        print(f"{name:14s} {kernel.cdfg.n_ops:4d} static ops, "
              f"{len(kernel.cdfg.blocks):2d} blocks — "
              f"{kernel.description}")
    return 0


def main(argv=None):
    args = _parser().parse_args(argv)
    handlers = {"map": _map, "run": _run, "energy": _energy,
                "area": _area, "kernels": _kernels}
    try:
        return handlers[args.command](args)
    except UnmappableError as error:
        print(f"no mapping: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
