"""Command-line interface: ``python -m repro <command>``.

Commands mirror the user journeys of the examples:

- ``map KERNEL``    — map a paper kernel and print the mapping summary
  plus the per-tile context-usage chart (the Fig 2 view);
- ``run KERNEL``    — map, assemble, simulate, verify against the
  reference, and print cycles vs the CPU baseline;
- ``energy KERNEL`` — one Table II row with component breakdowns;
- ``area``          — the Fig 11 area comparison;
- ``kernels``       — list the available kernels;
- ``sweep``         — batch-run kernels × configs × flow variants in
  parallel (``--workers N``) against the persistent result cache
  (``--no-cache`` / ``--clear-cache`` to bypass or wipe it); with
  ``--shard i/N`` runs one deterministic slice of the batch and with
  ``--json`` emits a machine-readable result payload that a later
  ``merge`` reassembles; ``--backend`` picks the execution backend
  (see :mod:`repro.runtime.backends`);
- ``diff``          — run the suite through two backends and compare
  per-point cycles/outputs within configurable tolerances
  (``--backends``, ``--abs-tol``, ``--rel-tol``); exits 4 on any
  out-of-tolerance mismatch — the CI differential lane;
- ``merge``         — combine N shard JSON files back into the one
  sweep result the unsharded run would have produced;
- ``cache``         — manage the persistent result cache
  (``stats`` / ``prune`` / ``clear``);
- ``figure NAME``   — regenerate one paper figure/table; the
  mapping-bound ones accept ``--workers``, ``--shard`` (distributed
  prewarm) and ``--json``;
- ``explore``       — design-space exploration (see
  :mod:`repro.dse`): search homogeneous ladders, Table I, banded and
  per-tile heterogeneous CM assignments with a pluggable strategy
  (``--strategy exhaustive|random|adaptive``, ``--budget``,
  ``--objectives``) and report the Pareto frontier; ``--shard i/N``
  prewarms one slice of the exhaustive grid, ``--json`` emits the
  exploration document;
- ``bench``         — time ``map_kernel`` across benchmark cases with
  warmup/repeat control and emit/compare the ``BENCH_*.json`` perf
  document (``--compare BASELINE.json --max-regress PCT`` exits
  non-zero on regression; see :mod:`repro.perf`);
- ``trace``         — run a sweep with pipeline tracing on and write
  the spans as Chrome trace-event JSON (load in Perfetto or
  ``chrome://tracing``); ``--analyze`` adds the critical path /
  self-time / occupancy / straggler report, ``--from FILE`` analyses
  a saved trace instead of running; ``sweep``/``diff``/``submit``/
  ``explore`` grow the same capture via ``--trace-out FILE``
  (see :mod:`repro.obs`);
- ``metrics``       — print the Prometheus text exposition of this
  process's metric registry, or scrape a running server's
  ``/metrics`` with ``--server URL``;
- ``profile``       — cProfile one mapping and print the top
  functions, so perf work starts from data; ``--flame`` switches to
  the zero-overhead sampling profiler with collapsed-stack output
  (``--flame-out``; ``sweep``/``bench`` accept the same flag);
- ``history``       — render the persistent run ledger every
  bench/sweep/diff run appends to (see :mod:`repro.perf.ledger`);
- ``report``        — write the self-contained watchtower dashboard
  HTML (ledger trends, critical path, metrics snapshot; also served
  at ``GET /dashboard``);
- ``serve``         — expose sweeps and explorations over HTTP
  (``--port``, ``--workers``, job retention via
  ``--max-finished-jobs``/``--job-ttl``): submission, status, NDJSON
  point streaming, cache stats (see :mod:`repro.serve`);
- ``serve --resume``  replays the durable job journal on startup,
  requeueing jobs a killed server left queued or running under
  their original IDs (see :mod:`repro.serve.journal`);
- ``submit``        — dispatch a sweep to one ``repro serve``
  instance — or, with ``--shard-across``, shard it across several
  and merge the streamed results locally;
- ``chaos``         — run the same sweep clean and under an injected
  fault plan (``--faults`` / ``$REPRO_FAULT``: worker crashes,
  point hangs, cache corruption) and exit 5 unless the self-healing
  runtime converged the faulted runs to the clean answer
  (see :mod:`repro.chaos`).

Sweeps and figure prewarms stream one progress line per landed point
to stderr, so stdout stays clean for tables and JSON; ``--quiet`` (or
``REPRO_QUIET=1``) silences those lines.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys

import numpy as np

from repro.arch.configs import CGRA_CONFIGS, get_config
from repro.codegen.assembler import assemble
from repro.codegen.listing import usage_chart
from repro.errors import ReproError, UnmappableError
from repro.kernels import PAPER_KERNEL_ORDER, get_kernel
from repro.mapping.flow import VARIANTS, map_kernel
from repro.sim.cgra import CGRASimulator
from repro.sim.cpu import CPUModel


def _parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-memory aware CGRA mapping (DATE 2019 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("kernel", choices=PAPER_KERNEL_ORDER)
        p.add_argument("--config", default="HET1",
                       choices=sorted(CGRA_CONFIGS))
        p.add_argument("--flow", default="full",
                       choices=sorted(VARIANTS))
        p.add_argument("--seed", type=int, default=7)

    def add_cache_flags(p):
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result cache")
        p.add_argument("--cache-dir", default=None,
                       help="cache directory (default ~/.cache/repro "
                            "or $REPRO_CACHE_DIR)")

    def add_quiet(p):
        p.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines on "
                            "stderr (also $REPRO_QUIET=1)")

    add_common(sub.add_parser("map", help="map a kernel, show usage"))
    add_common(sub.add_parser("run", help="map + simulate + verify"))
    energy = sub.add_parser("energy", help="energy breakdown row")
    add_common(energy)
    add_cache_flags(energy)
    sub.add_parser("area", help="Fig 11 area comparison")
    sub.add_parser("kernels", help="list available kernels")

    sweep = sub.add_parser(
        "sweep", help="batch-run experiment points in parallel")
    sweep.add_argument("--kernels", default=None,
                       help="comma-separated kernels (default: all)")
    sweep.add_argument("--configs", default=None,
                       help="comma-separated configs (default: "
                            "HOM64,HOM32,HET1,HET2)")
    sweep.add_argument("--variants", default=None,
                       help="comma-separated flow variants "
                            "(default: all)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial)")
    sweep.add_argument("--point-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-point wall-clock deadline: an "
                            "overrunning point's worker is reaped "
                            "and the point retried, then yielded as "
                            "a timeout error (default "
                            "$REPRO_POINT_TIMEOUT, else unlimited)")
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--backend", default=None,
                       help="execution backend: analytic (default) "
                            "or cycle — see repro.runtime.backends")
    sweep.add_argument("--clear-cache", action="store_true",
                       help="wipe the cache before running")
    sweep.add_argument("--shard", default=None, metavar="I/N",
                       help="run only shard I of N (deterministic, "
                            "disjoint, cost-balanced slices)")
    sweep.add_argument("--cache-balanced", action="store_true",
                       help="balance shards by residual (uncached) "
                            "cost — every shard producer must see "
                            "the same shared cache")
    sweep.add_argument("--json", action="store_true",
                       help="emit a machine-readable result payload "
                            "on stdout instead of the table")
    sweep.add_argument("--trace-out", default=None, metavar="FILE",
                       help="record pipeline spans and write Chrome "
                            "trace JSON to FILE (Perfetto-loadable)")
    sweep.add_argument("--flame-out", default=None, metavar="FILE",
                       help="sample the driving thread during the "
                            "sweep and write collapsed flame stacks "
                            "to FILE (rate: $REPRO_PROFILE_HZ)")
    add_cache_flags(sweep)
    add_quiet(sweep)

    diff = sub.add_parser(
        "diff", help="run specs through two backends and compare "
                     "cycles/outputs (see repro.runtime.diff)")
    diff.add_argument("--kernels", default=None,
                      help="comma-separated kernels (default: all)")
    diff.add_argument("--configs", default=None,
                      help="comma-separated configs (default: "
                           "HOM64,HOM32,HET1,HET2)")
    diff.add_argument("--variants", default=None,
                      help="comma-separated flow variants "
                           "(default: all)")
    diff.add_argument("--seed", type=int, default=7)
    diff.add_argument("--backends", default=None, metavar="A,B",
                      help="the two backends to compare "
                           "(default analytic,cycle)")
    diff.add_argument("--abs-tol", type=float, default=None,
                      help="absolute cycle tolerance (default 2; "
                           "measured bound is 1)")
    diff.add_argument("--rel-tol", type=float, default=None,
                      help="relative cycle tolerance vs the first "
                           "backend (default 0.01)")
    diff.add_argument("--workers", type=int, default=1,
                      help="worker processes (1 = serial)")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff report as JSON on stdout")
    diff.add_argument("--out", default=None, metavar="FILE",
                      help="also write the JSON report to FILE "
                           "(the CI artifact)")
    diff.add_argument("--trace-out", default=None, metavar="FILE",
                      help="record pipeline spans and write Chrome "
                           "trace JSON to FILE (Perfetto-loadable)")
    add_cache_flags(diff)
    add_quiet(diff)

    merge = sub.add_parser(
        "merge", help="combine shard JSON result files into one sweep")
    merge.add_argument("files", nargs="+",
                       help="JSON files written by sweep/figure --json")
    merge.add_argument("--json", action="store_true",
                       help="emit the merged payload as JSON")

    cache = sub.add_parser(
        "cache", help="manage the persistent result cache")
    cache.add_argument("action", choices=("stats", "prune", "clear"))
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default ~/.cache/repro "
                            "or $REPRO_CACHE_DIR)")
    cache.add_argument("--max-bytes", default=None,
                       help="byte cap for prune, e.g. 4096 / 512K / "
                            "64M / 2G (default $REPRO_CACHE_MAX_BYTES)")
    cache.add_argument("--json", action="store_true",
                       help="machine-readable stats")

    # Mirrors experiments.FIGURE_NAMES (cross-checked by a test);
    # kept literal so building the parser never imports the whole
    # eval/experiments stack for commands that don't touch figures.
    figure = sub.add_parser(
        "figure", help="regenerate one paper figure/table")
    figure.add_argument("name", choices=(
        "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "table2"))
    figure.add_argument("--workers", type=int, default=1,
                        help="worker processes for the mapping-bound "
                             "figures (fig6-8, fig10, table2)")
    figure.add_argument("--shard", default=None, metavar="I/N",
                        help="compute only shard I of N of this "
                             "figure's points (distributed prewarm); "
                             "emits the partial sweep, not the figure")
    figure.add_argument("--cache-balanced", action="store_true",
                        help="balance shards by residual (uncached) "
                             "cost — every shard producer must see "
                             "the same shared cache")
    figure.add_argument("--json", action="store_true",
                        help="emit the figure data (or the shard "
                             "payload) as JSON")
    add_cache_flags(figure)
    add_quiet(figure)

    explore = sub.add_parser(
        "explore", help="design-space exploration (see repro.dse)")
    explore.add_argument("--space", default="ladder,table1",
                         help="comma-separated design generators: "
                              "ladder,table1,rowband,colband,tiles "
                              "(default ladder,table1)")
    explore.add_argument("--depths", default=None,
                         help="comma-separated CM depths for the "
                              "ladder/banded/tiles spaces "
                              "(default 8,16,24,32,48,64)")
    explore.add_argument("--samples", type=int, default=None,
                         help="sampled per-tile designs for the "
                              "'tiles' space (default 8)")
    explore.add_argument("--kernels", default=None,
                         help="comma-separated kernels (default: all)")
    explore.add_argument("--variant", default=None,
                         help="flow variant to evaluate under "
                              "(default full)")
    explore.add_argument("--strategy", default=None,
                         help="search strategy: exhaustive, random "
                              "or adaptive (default exhaustive)")
    explore.add_argument("--budget", type=int, default=None,
                         help="max evaluated (design, kernel) points "
                              "(default unlimited)")
    explore.add_argument("--objectives", default=None,
                         help="comma-separated subset of "
                              "energy,latency,cm_area,mappability "
                              "(default all four)")
    explore.add_argument("--seed", type=int, default=None,
                         help="input seed; also drives the random "
                              "strategy's sampling")
    explore.add_argument("--backend", default=None,
                         help="execution backend for every evaluated "
                              "point (default analytic)")
    explore.add_argument("--rows", type=int, default=None,
                         help="array rows for generated designs "
                              "(default 4)")
    explore.add_argument("--cols", type=int, default=None,
                         help="array columns for generated designs "
                              "(default 4)")
    explore.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = serial)")
    explore.add_argument("--shard", default=None, metavar="I/N",
                         help="prewarm only shard I of N of the "
                              "exhaustive design x kernel grid into "
                              "the shared cache (emits the partial "
                              "sweep, not the frontier)")
    explore.add_argument("--cache-balanced", action="store_true",
                         help="balance shards by residual (uncached) "
                              "cost — every shard producer must see "
                              "the same shared cache")
    explore.add_argument("--json", action="store_true",
                         help="emit the exploration document (or the "
                              "shard payload) as JSON")
    explore.add_argument("--trace-out", default=None, metavar="FILE",
                         help="record pipeline spans and write Chrome "
                              "trace JSON to FILE (Perfetto-loadable)")
    add_cache_flags(explore)
    add_quiet(explore)

    bench = sub.add_parser(
        "bench", help="time map_kernel across cases (see repro.perf)")
    bench.add_argument("--cases", default=None,
                       help="comma-separated kernel@CONFIG/variant "
                            "cases (overrides the axes)")
    bench.add_argument("--kernels", default=None,
                       help="comma-separated kernels (default: all)")
    bench.add_argument("--configs", default=None,
                       help="comma-separated configs (default: HOM32)")
    bench.add_argument("--variants", default=None,
                       help="comma-separated flow variants "
                            "(default: full)")
    bench.add_argument("--warmup", type=int, default=1,
                       help="unrecorded runs per case (default 1)")
    bench.add_argument("--repeat", type=int, default=3,
                       help="recorded runs per case (default 3)")
    bench.add_argument("--reducer", default="min",
                       choices=("min", "median", "mean"),
                       help="statistic over the repeats (default min "
                            "— mapping is deterministic, noise only "
                            "adds)")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="also write the JSON document to FILE")
    bench.add_argument("--json", action="store_true",
                       help="emit the benchmark document on stdout")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="compare against a BENCH_*.json baseline; "
                            "exit 3 on regression")
    bench.add_argument("--max-regress", type=float, default=None,
                       metavar="PCT",
                       help="allowed per-case slowdown vs the "
                            "--compare / --compare-ledger baseline "
                            "(default 25%%; rejected without either)")
    bench.add_argument("--compare-ledger", action="store_true",
                       help="gate against the rolling median of the "
                            "last --window same-host bench runs in "
                            "the run ledger; exit 3 on regression")
    bench.add_argument("--window", type=int, default=5, metavar="N",
                       help="ledger entries in the rolling median "
                            "(default 5)")
    bench.add_argument("--flame-out", default=None, metavar="FILE",
                       help="sample the bench thread and write "
                            "collapsed flame stacks to FILE (rate: "
                            "$REPRO_PROFILE_HZ)")
    bench.add_argument("--cache-dir", default=None,
                       help="directory holding the run ledger "
                            "(default ~/.cache/repro or "
                            "$REPRO_CACHE_DIR)")
    add_quiet(bench)

    profile = sub.add_parser(
        "profile", help="cProfile one map_kernel run (see repro.perf)")
    profile.add_argument("--kernel", required=True,
                        choices=PAPER_KERNEL_ORDER)
    profile.add_argument("--config", default="HOM32",
                        choices=sorted(CGRA_CONFIGS))
    profile.add_argument("--variant", default="full",
                        choices=sorted(VARIANTS))
    profile.add_argument("--top", type=int, default=20,
                        help="functions to print (default 20)")
    profile.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default cumulative)")
    profile.add_argument("--flame", action="store_true",
                        help="sample with the zero-overhead wall-"
                             "clock profiler instead of cProfile "
                             "(collapsed-stack flame output)")
    profile.add_argument("--hz", type=float, default=None,
                        help="sampling rate for --flame (default "
                             "$REPRO_PROFILE_HZ or 97)")
    profile.add_argument("--repeat", type=int, default=5,
                        help="mappings sampled under one --flame "
                             "profile (default 5 — one mapping is "
                             "too fast to sample)")
    profile.add_argument("--flame-out", default=None, metavar="FILE",
                        help="write collapsed flame stacks to FILE "
                             "(flamegraph.pl / speedscope input)")

    trace_cmd = sub.add_parser(
        "trace", help="run a traced sweep, write Chrome trace JSON "
                      "(see repro.obs)")
    trace_cmd.add_argument("--kernels", default=None,
                           help="comma-separated kernels "
                                "(default: all)")
    trace_cmd.add_argument("--configs", default=None,
                           help="comma-separated configs (default: "
                                "HOM64,HOM32,HET1,HET2)")
    trace_cmd.add_argument("--variants", default=None,
                           help="comma-separated flow variants "
                                "(default: all)")
    trace_cmd.add_argument("--seed", type=int, default=7)
    trace_cmd.add_argument("--backend", default=None,
                           help="execution backend (default analytic)")
    trace_cmd.add_argument("--workers", type=int, default=1,
                           help="worker processes (1 = serial); "
                                "worker spans stitch into the tree")
    trace_cmd.add_argument("--out", default="trace.json",
                           metavar="FILE",
                           help="Chrome trace-event JSON output "
                                "(default trace.json); load it in "
                                "Perfetto or chrome://tracing")
    trace_cmd.add_argument("--analyze", action="store_true",
                           help="also print trace analytics: "
                                "critical path, per-stage self time, "
                                "worker occupancy, straggler shards")
    trace_cmd.add_argument("--from", dest="from_file", default=None,
                           metavar="FILE",
                           help="analyze a saved --trace-out file "
                                "instead of running a sweep "
                                "(implies --analyze)")
    trace_cmd.add_argument("--json", action="store_true",
                           help="emit the trace-analysis payload as "
                                "JSON on stdout")
    add_cache_flags(trace_cmd)
    add_quiet(trace_cmd)

    history = sub.add_parser(
        "history", help="render the persistent run ledger "
                        "(see repro.perf.ledger)")
    history.add_argument("--command", dest="filter_command",
                         default=None,
                         choices=("bench", "sweep", "diff"),
                         help="only entries from this command")
    history.add_argument("--limit", type=int, default=20,
                         help="newest entries shown (default 20)")
    history.add_argument("--json", action="store_true",
                         help="emit the entries as JSON")
    history.add_argument("--cache-dir", default=None,
                         help="directory holding the run ledger "
                              "(default ~/.cache/repro or "
                              "$REPRO_CACHE_DIR)")

    report = sub.add_parser(
        "report", help="write the watchtower dashboard HTML "
                       "(see repro.obs.report)")
    report.add_argument("--out", default="report.html", metavar="FILE",
                        help="output file (default report.html; "
                             "'-' for stdout)")
    report.add_argument("--trace", default=None, metavar="FILE",
                        help="fold the critical-path analysis of "
                             "this saved --trace-out file into the "
                             "report")
    report.add_argument("--limit", type=int, default=50,
                        help="newest ledger entries charted "
                             "(default 50)")
    add_cache_flags(report)

    metrics_cmd = sub.add_parser(
        "metrics", help="print Prometheus metrics (local registry or "
                        "a server's /metrics)")
    metrics_cmd.add_argument("--server", default=None, metavar="URL",
                             help="scrape URL/metrics from a running "
                                  "repro serve instead of the local "
                                  "registry")
    add_cache_flags(metrics_cmd)

    serve = sub.add_parser(
        "serve", help="expose sweeps over HTTP (see repro.serve)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port (0 = ephemeral; default 8000)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes per sweep job")
    serve.add_argument("--max-finished-jobs", type=int, default=None,
                       help="finished jobs retained before eviction "
                            "(default 64)")
    serve.add_argument("--job-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="age after which finished jobs evict "
                            "(default 21600 = 6h)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="jobs run concurrently, sharing the "
                            "--workers pool (default 4)")
    serve.add_argument("--max-queued", type=int, default=None,
                       metavar="N",
                       help="queued jobs beyond which POSTs answer "
                            "429 + Retry-After (default 128)")
    serve.add_argument("--max-specs", type=int, default=None,
                       metavar="N",
                       help="specs accepted per job (default 50000)")
    serve.add_argument("--token", default=None,
                       help="bearer token clients must present "
                            "(default $REPRO_SERVE_TOKEN; required "
                            "to bind beyond 127.0.0.1)")
    serve.add_argument("--point-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-point deadline for every sweep job "
                            "(default $REPRO_POINT_TIMEOUT); a "
                            "wedged point is reaped and retried "
                            "instead of hanging its job forever")
    serve.add_argument("--resume", action="store_true",
                       help="replay the job journal on startup: "
                            "jobs left queued/running by a killed "
                            "server are requeued under their "
                            "original IDs")
    serve.add_argument("--no-journal", action="store_true",
                       help="do not record job transitions to the "
                            "durable journal (<cache-dir>/"
                            "jobs.jsonl)")
    add_cache_flags(serve)
    add_quiet(serve)

    submit = sub.add_parser(
        "submit", help="dispatch a sweep to repro serve instance(s)")
    submit.add_argument("--server", required=True, metavar="URL[,URL]",
                        help="server URL; several (comma-separated) "
                             "with --shard-across")
    submit.add_argument("--kernels", default=None,
                        help="comma-separated kernels (default: all)")
    submit.add_argument("--configs", default=None,
                        help="comma-separated configs (default: "
                             "HOM64,HOM32,HET1,HET2)")
    submit.add_argument("--variants", default=None,
                        help="comma-separated flow variants "
                             "(default: all)")
    submit.add_argument("--seed", type=int, default=None,
                        help="input seed (default: the server's)")
    submit.add_argument("--backend", default=None,
                        help="execution backend for the submitted "
                             "sweep (axes mode only)")
    submit.add_argument("--figure", default=None, metavar="NAME",
                        help="submit a figure's prewarm points "
                             "instead of sweep axes")
    submit.add_argument("--shard", default=None, metavar="I/N",
                        help="have the server compute only shard I "
                             "of N (payload merges with the others)")
    submit.add_argument("--shard-across", action="store_true",
                        help="split the sweep across all given "
                             "servers (one shard per URL) and merge "
                             "the results locally")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="per-request timeout in seconds for "
                             "submit/status calls")
    submit.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="max silence on the point stream; the "
                             "server's 5s keepalives reset it "
                             "(default 60)")
    submit.add_argument("--priority", type=int, default=None,
                        help="job priority, -100..100; higher runs "
                             "first (default 0)")
    submit.add_argument("--retries", type=int, default=None,
                        metavar="N",
                        help="attempts per shard with "
                             "--shard-across before the dispatch "
                             "fails (default 3)")
    submit.add_argument("--token", default=None,
                        help="bearer token for the server(s) "
                             "(default $REPRO_SERVE_TOKEN)")
    submit.add_argument("--json", action="store_true",
                        help="emit the result payload as JSON")
    submit.add_argument("--trace-out", default=None, metavar="FILE",
                        help="trace the submission; server-side "
                             "spans stitch into the local tree via "
                             "the propagated traceparent")
    add_quiet(submit)

    chaos_cmd = sub.add_parser(
        "chaos", help="run a sweep under injected faults and prove "
                      "it converges to the clean answer "
                      "(see repro.chaos)")
    chaos_cmd.add_argument("--kernels", default=None,
                           help="comma-separated kernels "
                                "(default: all)")
    chaos_cmd.add_argument("--configs", default=None,
                           help="comma-separated configs (default: "
                                "HOM64,HOM32,HET1,HET2)")
    chaos_cmd.add_argument("--variants", default=None,
                           help="comma-separated flow variants "
                                "(default: all)")
    chaos_cmd.add_argument("--seed", type=int, default=7)
    chaos_cmd.add_argument("--backend", default=None,
                           help="execution backend (default "
                                "analytic)")
    chaos_cmd.add_argument("--faults", default=None, metavar="PLAN",
                           help="fault plan, e.g. 'worker_crash:"
                                "p=0.1,attempts=1;cache_corrupt:"
                                "p=0.2' (default $REPRO_FAULT, else "
                                "a crash+corrupt plan)")
    chaos_cmd.add_argument("--workers", type=int, default=2,
                           help="worker processes (>= 2: process "
                                "faults need real worker children)")
    chaos_cmd.add_argument("--point-timeout", type=float,
                           default=30.0, metavar="SECONDS",
                           help="per-point deadline during the "
                                "faulted runs (default 30)")
    chaos_cmd.add_argument("--allow-quarantine", type=int, default=0,
                           metavar="N",
                           help="tolerate up to N quarantined points "
                                "in the verdict (default 0: every "
                                "fault must heal)")
    chaos_cmd.add_argument("--json", action="store_true",
                           help="emit the chaos report as JSON on "
                                "stdout")
    chaos_cmd.add_argument("--out", default=None, metavar="FILE",
                           help="also write the JSON report to FILE "
                                "(the CI artifact)")
    add_quiet(chaos_cmd)
    return parser


#: Environment variable silencing per-point progress (any value but
#: ``0``/``false``/``no``/empty counts as on).
ENV_QUIET = "REPRO_QUIET"


def _stderr_progress(update):
    """Narrate a streaming sweep on stderr, one line per point."""
    print(update.describe(), file=sys.stderr, flush=True)


def _quiet_requested(args):
    """``--quiet`` or ``$REPRO_QUIET`` — either silences progress."""
    if getattr(args, "quiet", False):
        return True
    value = os.environ.get(ENV_QUIET, "")
    return value.strip().lower() not in ("", "0", "false", "no")


def _progress(args):
    """The progress callback honouring ``--quiet``/``$REPRO_QUIET``."""
    return None if _quiet_requested(args) else _stderr_progress


@contextlib.contextmanager
def _flame_scope(args):
    """Sample the driving thread for ``--flame-out``, if requested.

    Stacks are written even when the wrapped run fails — a profile
    of the run that misbehaved is the one worth keeping.
    """
    flame_out = getattr(args, "flame_out", None)
    if not flame_out:
        yield
        return
    import threading

    from repro.obs import flame
    rate = flame.resolve_hz() or flame.DEFAULT_HZ
    profiler = flame.SamplingProfiler(
        rate, thread_ids={threading.get_ident()})
    profiler.start()
    try:
        yield
    finally:
        counts = profiler.stop()
        flame.write_collapsed(flame_out, counts)
        print(f"{sum(counts.values())} stack sample(s) @ {rate:g} Hz "
              f"-> {flame_out}", file=sys.stderr, flush=True)


def _record_ledger(args, command, summary):
    """Best-effort ledger append for a finished measured run."""
    from repro.perf import ledger
    ledger.record(command, summary,
                  cache_dir=getattr(args, "cache_dir", None))


def _check_shard_output(args):
    """--shard needs a durable output: the cache or a --json payload.

    A shard's contribution lives on only through the shared cache or
    a mergeable payload; with neither, hours of mapping would print
    a table and evaporate.
    """
    if args.no_cache and not args.json:
        raise ReproError(
            "--shard with --no-cache discards all results: "
            "add --json (mergeable payload) or drop --no-cache")


def _run_shard(args, cache, specs, shard, label=""):
    """Run one shard of ``specs``; emits a mergeable ``--json``
    payload or a partial-sweep table.  Shared by ``sweep --shard``,
    ``figure --shard`` and ``explore --shard`` so their payloads
    cannot drift apart.  ``--cache-balanced`` charges already-cached
    specs ~zero cost when carving the shard, so warm re-runs split
    the residual work evenly — coherent only while every cooperating
    producer sees the same shared cache."""
    from repro.eval.reporting import render_sweep
    from repro.runtime.pool import run_sweep
    from repro.runtime.shard import (
        shard_indices, sweep_fingerprint, sweep_json_payload)

    balance_cache = cache if getattr(args, "cache_balanced", False) \
        else None
    if getattr(args, "cache_balanced", False) and cache is None:
        raise ReproError(
            "--cache-balanced balances against the shared cache; "
            "drop --no-cache")
    positions = shard_indices(specs, *shard, cache=balance_cache)
    result = run_sweep([specs[i] for i in positions],
                       workers=args.workers, cache=cache,
                       progress=_progress(args),
                       point_timeout=getattr(args, "point_timeout",
                                             None))
    if args.json:
        print(json.dumps(sweep_json_payload(
            result, shard=shard, positions=positions,
            spec_total=len(specs),
            fingerprint=sweep_fingerprint(specs)), indent=2))
    else:
        print(f"{label}shard {shard[0]}/{shard[1]}: "
              f"{len(positions)} of {len(specs)} points")
        print(render_sweep(result))
    return 1 if result.crashed else 0


def _map(args):
    kernel = get_kernel(args.kernel)
    result = map_kernel(kernel.cdfg, get_config(args.config),
                        VARIANTS[args.flow]())
    print(result.summary())
    program = assemble(result, kernel.cdfg, enforce_fit=False)
    print(usage_chart(program))
    return 0


def _run(args):
    kernel = get_kernel(args.kernel)
    result = map_kernel(kernel.cdfg, get_config(args.config),
                        VARIANTS[args.flow]())
    program = assemble(result, kernel.cdfg,
                       enforce_fit=result.options.ecmap)
    inputs = kernel.make_inputs(np.random.default_rng(args.seed))
    memory = kernel.make_memory(inputs)
    run = CGRASimulator(program, memory).run()
    expected = kernel.reference(inputs)
    for region in kernel.output_regions:
        if run.region(kernel.cdfg, region) != expected[region]:
            print(f"FAIL: region {region} mismatch", file=sys.stderr)
            return 1
    cpu = CPUModel(kernel.cdfg).run(memory)
    print(f"{args.kernel} on {args.config} ({args.flow} flow): "
          f"verified OK")
    print(f"  CGRA: {run.cycles} cycles   CPU: {cpu.cycles} cycles   "
          f"speedup {cpu.cycles / run.cycles:.1f}x")
    return 0


def _cache_from(args):
    """ResultCache honouring --no-cache/--cache-dir (None = disabled)."""
    if getattr(args, "no_cache", False):
        return None
    from repro.runtime.cache import ResultCache
    return ResultCache(getattr(args, "cache_dir", None))


def _energy(args):
    from repro.eval.experiments import (
        PointSpec, cpu_point, execute_spec, prefetch_points)
    cpu_cycles, cpu_energy = cpu_point(args.kernel)
    print(f"{args.kernel}: CPU {cpu_energy.total_uj:.4f} uJ "
          f"({cpu_cycles} cycles)")
    spec = PointSpec(args.kernel, args.config, args.flow, seed=args.seed)
    prefetch_points([spec], cache=_cache_from(args))
    point = execute_spec(spec)
    if not point.mapped:
        print(f"  {args.config}/{args.flow}: no mapping ({point.error})")
        return 1
    gain = cpu_energy.total_uj / point.energy_uj
    print(f"  {args.config}/{args.flow}: {point.energy_uj:.4f} uJ "
          f"({point.cycles} cycles, {gain:.1f}x vs CPU)")
    for part, pj in sorted(point.energy.parts.items()):
        print(f"    {part:15s} {pj / 1e6:8.4f} uJ "
              f"({point.energy.fraction(part):5.1%})")
    return 0


def _area(_args):
    from repro.eval.experiments import fig11_data
    from repro.eval.reporting import render_fig11
    print(render_fig11(fig11_data()))
    return 0


def _split_axis(value):
    """Comma-separated CLI axis -> tuple, or None (use the default)."""
    return tuple(value.split(",")) if value else None


def _sweep(args):
    from repro.eval.reporting import render_sweep
    from repro.runtime.sweep import validated_sweep_specs

    # Every axis — and the shard string below — is validated before
    # any destructive action: a typo must not cost the user their
    # whole accumulated cache.
    specs = validated_sweep_specs(kernels=_split_axis(args.kernels),
                                  configs=_split_axis(args.configs),
                                  variants=_split_axis(args.variants),
                                  seed=args.seed,
                                  backend=args.backend)
    shard = None
    if args.shard:
        from repro.runtime.shard import parse_shard
        shard = parse_shard(args.shard)
        _check_shard_output(args)
    cache = _cache_from(args)
    if args.clear_cache:
        # Wipe even under --no-cache ("clear it, then recompute
        # without it") via a throwaway handle on the same directory.
        from repro.runtime.cache import ResultCache
        target = cache if cache is not None \
            else ResultCache(getattr(args, "cache_dir", None))
        removed = target.clear()
        # Status narration, not a result: under --json stdout must
        # hold nothing but the payload.
        print(f"cleared {removed} cache entries from {target.directory}",
              file=sys.stderr if args.json else sys.stdout)
    if shard is not None:
        # Shard slices are partial by construction — they are not
        # recorded in the ledger, whose trends compare whole runs.
        return _run_shard(args, cache, specs, shard)
    from repro.runtime.pool import run_sweep
    with _flame_scope(args):
        result = run_sweep(specs, workers=args.workers, cache=cache,
                           progress=_progress(args),
                           point_timeout=args.point_timeout)
    from repro.perf.ledger import sweep_summary
    _record_ledger(args, "sweep", sweep_summary(result))
    if args.json:
        from repro.runtime.shard import sweep_json_payload
        print(json.dumps(sweep_json_payload(result), indent=2))
    else:
        print(render_sweep(result))
        if cache is not None:
            print(f"cache: {cache.directory} ({cache.hits} hits, "
                  f"{cache.stores} new entries)")
    return 1 if result.crashed else 0


def _diff(args):
    from repro.runtime.diff import (
        DEFAULT_ABS_TOL, DEFAULT_REL_TOL, run_diff,
        validated_diff_backends)
    from repro.runtime.sweep import validated_sweep_specs

    backends = validated_diff_backends(
        _split_axis(args.backends))
    specs = validated_sweep_specs(kernels=_split_axis(args.kernels),
                                  configs=_split_axis(args.configs),
                                  variants=_split_axis(args.variants),
                                  seed=args.seed)
    abs_tol = args.abs_tol if args.abs_tol is not None \
        else DEFAULT_ABS_TOL
    rel_tol = args.rel_tol if args.rel_tol is not None \
        else DEFAULT_REL_TOL
    result = run_diff(specs, backends=backends, abs_tol=abs_tol,
                      rel_tol=rel_tol, workers=args.workers,
                      cache=_cache_from(args),
                      progress=_progress(args))
    from repro.perf.ledger import diff_summary
    _record_ledger(args, "diff", diff_summary(result))
    payload = result.to_json()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for record in result.mismatches:
            status = record.classify(abs_tol, rel_tol)
            print(f"  {status:8s} {record.describe()}: "
                  f"{record.backend_a}={record.cycles_a} "
                  f"{record.backend_b}={record.cycles_b} "
                  f"output_match={record.digest_match} "
                  f"errors=({record.error_a!r}, {record.error_b!r})")
        print(result.summary())
    # Exit 4 is the differential verdict, distinct from usage errors
    # (1) and unmappable (2) — CI keys off it.
    return 0 if result.ok else 4


def _chaos(args):
    from repro.chaos.harness import render_report, run_chaos
    from repro.runtime.sweep import validated_sweep_specs

    specs = validated_sweep_specs(kernels=_split_axis(args.kernels),
                                  configs=_split_axis(args.configs),
                                  variants=_split_axis(args.variants),
                                  seed=args.seed,
                                  backend=args.backend)
    report = run_chaos(specs, faults=args.faults,
                       workers=args.workers,
                       point_timeout=args.point_timeout,
                       allow_quarantine=args.allow_quarantine,
                       progress=_progress(args))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
    # Exit 5 is the chaos verdict — the faulted sweep failed to
    # converge to the clean answer — distinct from usage errors (1),
    # unmappable (2), bench regressions (3) and diff mismatches (4).
    return 0 if report["ok"] else 5


def _merge(args):
    from repro.eval.reporting import render_sweep
    from repro.runtime.shard import merge_sweep_files, sweep_json_payload

    result = merge_sweep_files(args.files)
    if args.json:
        print(json.dumps(sweep_json_payload(result), indent=2))
    else:
        print(render_sweep(result))
    return 1 if result.crashed else 0


def _format_bytes(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024


def _cache(args):
    from repro.runtime.cache import ResultCache, parse_bytes

    cache = ResultCache(getattr(args, "cache_dir", None))
    if args.action == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            cap = (_format_bytes(stats["max_bytes"])
                   if stats["max_bytes"] is not None else "none")
            print(f"cache: {stats['directory']} "
                  f"(format {stats['format']})")
            print(f"  entries:     {stats['entries']}")
            print(f"  total size:  "
                  f"{_format_bytes(stats['total_bytes'])}")
            if stats["orphaned_entries"]:
                print(f"  orphaned:    {stats['orphaned_entries']} "
                      f"entries from older cache formats, "
                      f"{_format_bytes(stats['orphaned_bytes'])} "
                      f"(reclaim with prune/clear)")
            print(f"  byte cap:    {cap}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.directory}")
        return 0
    try:
        cap = (parse_bytes(args.max_bytes)
               if args.max_bytes is not None else None)
        evicted = cache.prune(cap)
    except ValueError as error:
        raise ReproError(str(error)) from None
    print(f"evicted {evicted} entries; "
          f"{_format_bytes(cache.size_bytes())} in {cache.directory}")
    return 0


def _figure_shard(args, cache):
    """Distributed prewarm: compute one shard of a figure's points.

    Emits the partial sweep (table or ``--json`` payload) instead of
    the figure — the shards fill a shared cache and/or merge into the
    full point set; the figure itself renders from any machine that
    sees all of them.
    """
    from repro.eval.experiments import figure_point_specs
    from repro.runtime.shard import parse_shard

    specs = figure_point_specs(args.name)
    if not specs:
        raise ReproError(
            f"{args.name} has no prewarmable experiment points to "
            f"shard; only the latency figures (fig6-8), fig10 and "
            f"table2 have one")
    shard = parse_shard(args.shard)
    _check_shard_output(args)
    return _run_shard(args, cache, specs, shard,
                      label=f"{args.name} ")


def _figure(args):
    from repro.eval import experiments, reporting
    cache = _cache_from(args)
    workers = args.workers
    if args.shard:
        return _figure_shard(args, cache)
    if args.name == "fig5":
        data = experiments.fig5_data()
        render = reporting.render_fig5
    elif args.name in experiments.FIGURE_VARIANTS:
        variant = experiments.FIGURE_VARIANTS[args.name]
        data = experiments.latency_figure_data(
            variant, workers=workers, cache=cache,
            progress=_progress(args))

        def render(chart):
            return reporting.render_latency_figure(
                f"Fig {args.name[3:]} — {variant} flow", chart,
                experiments.LATENCY_CONFIGS)
    elif args.name == "fig9":
        # Compile-time measurements stay serial: sharing cores would
        # distort the very quantity the figure reports.
        data = experiments.fig9_data()
        render = reporting.render_fig9
    elif args.name == "fig10":
        data = experiments.fig10_data(workers=workers, cache=cache,
                                      progress=_progress(args))
        render = reporting.render_fig10
    elif args.name == "fig11":
        data = experiments.fig11_data()
        render = reporting.render_fig11
    else:
        data = experiments.table2_data(workers=workers, cache=cache,
                                       progress=_progress(args))
        render = reporting.render_table2
    print(json.dumps(data, indent=2) if args.json else render(data))
    return 0


def _explore(args):
    from repro.dse.runner import (
        exploration_grid_specs,
        run_exploration,
        validated_exploration_config,
    )
    from repro.eval.reporting import render_exploration

    depths = None
    if args.depths:
        try:
            depths = [int(d) for d in args.depths.split(",")]
        except ValueError:
            raise ReproError(
                f"--depths expects comma-separated integers "
                f"(e.g. 8,16,32), got {args.depths!r}") from None
    config = validated_exploration_config(
        space=_split_axis(args.space),
        depths=depths,
        samples=args.samples,
        kernels=_split_axis(args.kernels),
        variant=args.variant,
        strategy=args.strategy,
        budget=args.budget,
        seed=args.seed,
        objectives=_split_axis(args.objectives),
        rows=args.rows, cols=args.cols,
        backend=args.backend)
    cache = _cache_from(args)
    if args.shard:
        from repro.runtime.shard import parse_shard
        shard = parse_shard(args.shard)
        _check_shard_output(args)
        # The prewarm unit is the exhaustive grid: shards fill the
        # shared cache; any strategy run afterwards resolves its
        # requests from hits.
        return _run_shard(args, cache, exploration_grid_specs(config),
                          shard, label="explore ")
    result = run_exploration(config, workers=args.workers,
                             cache=cache, progress=_progress(args))
    payload = result.payload()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_exploration(payload))
    return 0


def _bench(args):
    import time as _time

    from repro.perf import (
        bench_payload, compare_benchmarks, default_cases,
        load_bench_file, parse_case, render_bench, render_comparison,
        run_bench)

    if args.max_regress is not None and not (args.compare
                                             or args.compare_ledger):
        # Silently ignoring the threshold would let a user believe
        # the regression gate ran when nothing was compared.
        raise ReproError("--max-regress only applies with --compare "
                         "or --compare-ledger")
    max_regress = args.max_regress if args.max_regress is not None \
        else 25.0
    if args.cases:
        cases = [parse_case(text.strip())
                 for text in args.cases.split(",") if text.strip()]
        if not cases:
            raise ReproError("--cases named no cases")
    else:
        cases = default_cases(kernels=_split_axis(args.kernels),
                              configs=_split_axis(args.configs),
                              variants=_split_axis(args.variants))
    progress = None if _quiet_requested(args) else (
        lambda line: print(line, file=sys.stderr, flush=True))
    with _flame_scope(args):
        results = run_bench(cases, warmup=args.warmup,
                            repeat=args.repeat,
                            reducer=args.reducer, progress=progress)
    payload = bench_payload(results, args.warmup, args.repeat,
                            args.reducer,
                            created_unix=int(_time.time()))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_bench(payload))
    status = 0
    # The comparison is narration under --json (stdout holds the
    # document); regressions still gate the exit code.
    out = sys.stderr if args.json else sys.stdout
    if args.compare:
        baseline = load_bench_file(args.compare)
        rows, regressions = compare_benchmarks(payload, baseline,
                                               max_regress)
        print(render_comparison(rows, regressions, max_regress),
              file=out)
        if regressions:
            status = 3
    if args.compare_ledger:
        import platform as _platform

        from repro.perf import ledger
        # Gate against history *before* recording this run, so a run
        # can never be part of its own baseline; same-host only,
        # since wall-clock across machines compares nothing.
        entries, _skipped = ledger.read_ledger(
            ledger.ledger_path(getattr(args, "cache_dir", None)),
            host=_platform.node())
        rows, regressions, used = ledger.compare_to_ledger(
            payload, entries, window=args.window,
            max_regress_pct=max_regress)
        print(f"ledger gate: rolling median of the last {used} "
              f"same-host bench run(s)", file=out)
        print(render_comparison(rows, regressions, max_regress),
              file=out)
        if regressions:
            status = 3
    from repro.perf.ledger import bench_summary
    _record_ledger(args, "bench", bench_summary(payload))
    return status


def _print_analysis(spans, as_json):
    from repro.obs import analyze
    payload = analyze.analyze_spans(spans)
    print(json.dumps(payload, indent=2) if as_json
          else analyze.render_analysis(payload))


def _trace(args):
    from repro.obs import trace
    from repro.runtime.pool import run_sweep
    from repro.runtime.sweep import validated_sweep_specs

    if args.from_file:
        # Post-mortem mode: analyse a saved --trace-out file without
        # running anything.
        from repro.obs import analyze
        _print_analysis(analyze.load_trace_file(args.from_file),
                        args.json)
        return 0
    specs = validated_sweep_specs(kernels=_split_axis(args.kernels),
                                  configs=_split_axis(args.configs),
                                  variants=_split_axis(args.variants),
                                  seed=args.seed,
                                  backend=args.backend)
    trace.enable_tracing()
    result = run_sweep(specs, workers=args.workers,
                       cache=_cache_from(args),
                       progress=_progress(args))
    spans = trace.drain_spans()
    out = trace.write_chrome_trace(args.out, spans)
    print(f"{len(spans)} spans from {len(specs)} point(s) -> {out}",
          file=sys.stderr, flush=True)
    if args.analyze:
        _print_analysis(spans, args.json)
    return 1 if result.crashed else 0


def _history(args):
    from repro.perf import ledger

    path = ledger.ledger_path(getattr(args, "cache_dir", None))
    entries, skipped = ledger.read_ledger(
        path, command=args.filter_command, limit=args.limit)
    if args.json:
        print(json.dumps({
            "kind": "ledger-history",
            "schema": ledger.LEDGER_SCHEMA,
            "path": str(path),
            "entries": entries,
            "skipped": skipped,
        }, indent=2))
    else:
        print(ledger.render_history(entries, skipped))
    return 0


def _report(args):
    from repro.obs import analyze, metrics, report
    from repro.perf import ledger

    entries, _skipped = ledger.read_ledger(
        ledger.ledger_path(getattr(args, "cache_dir", None)),
        limit=args.limit)
    analysis = None
    if args.trace:
        analysis = analyze.analyze_spans(
            analyze.load_trace_file(args.trace))
    cache = _cache_from(args)
    cache_stats = cache.stats() if cache is not None else None
    html_text = report.render_report(
        ledger_entries=entries, analysis=analysis,
        metrics_text=metrics.REGISTRY.render(),
        cache_stats=cache_stats)
    if args.out == "-":
        sys.stdout.write(html_text)
    else:
        with open(args.out, "w") as fh:
            fh.write(html_text)
        print(f"report -> {args.out}", file=sys.stderr, flush=True)
    return 0


def _metrics(args):
    if args.server:
        import urllib.error
        import urllib.request
        url = args.server.rstrip("/") + "/metrics"
        # Every way a scrape fails — non-2xx, refused connection,
        # unresolvable host, schemeless URL — is one diagnostic line
        # and exit 1, never a traceback.
        try:
            with urllib.request.urlopen(url, timeout=30.0) as response:
                sys.stdout.write(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise ReproError(
                f"scrape of {url} failed: HTTP {error.code} "
                f"{error.reason}") from None
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot scrape {url}: {error.reason}") from None
        except OSError as error:
            raise ReproError(
                f"cannot scrape {url}: {error}") from None
        except ValueError as error:
            raise ReproError(
                f"bad --server URL {args.server!r}: {error}") \
                from None
        return 0
    from repro.obs import metrics
    # Prime the cache gauges so a fresh process reports the
    # persistent cache's real state, not zeros.
    cache = _cache_from(args)
    if cache is not None:
        cache.stats()
    sys.stdout.write(metrics.REGISTRY.render())
    return 0


def _profile(args):
    from repro.perf import BenchCase, flame_case, profile_case

    case = BenchCase(args.kernel, args.config, args.variant)
    if args.flame or args.flame_out:
        from repro.obs import flame
        rate = args.hz if args.hz is not None \
            else (flame.resolve_hz() or flame.DEFAULT_HZ)
        counts, wakeups = flame_case(case, rate, repeat=args.repeat)
        if args.flame_out:
            flame.write_collapsed(args.flame_out, counts)
            print(f"{sum(counts.values())} stack sample(s) -> "
                  f"{args.flame_out}", file=sys.stderr, flush=True)
        print(f"flame: {case.name} ({wakeups} wakeup(s) @ {rate:g} Hz "
              f"x {max(1, args.repeat)} mapping(s))")
        print(flame.render_flame(counts, top=args.top))
        return 0
    if args.hz is not None:
        raise ReproError("--hz only applies with --flame")
    text, _ = profile_case(case, top=args.top, sort=args.sort)
    print(text)
    return 0


def _kernels(_args):
    for name in PAPER_KERNEL_ORDER:
        kernel = get_kernel(name)
        print(f"{name:14s} {kernel.cdfg.n_ops:4d} static ops, "
              f"{len(kernel.cdfg.blocks):2d} blocks — "
              f"{kernel.description}")
    return 0


def _serve(args):
    from repro.serve.journal import (
        JobJournal, journal_path, journalling_enabled)
    from repro.serve.server import make_server

    cache = _cache_from(args)
    token = args.token or os.environ.get("REPRO_SERVE_TOKEN") or None
    # The journal lives next to ledger.jsonl in the cache directory
    # (the cache may itself be disabled; the journal still needs a
    # home, so it falls back to the default directory).
    journal = None
    if not args.no_journal and journalling_enabled():
        journal = JobJournal(journal_path(
            cache.directory if cache is not None
            else getattr(args, "cache_dir", None)))
    if args.resume and journal is None:
        raise ReproError(
            "--resume needs the job journal; drop --no-journal "
            "and REPRO_JOB_JOURNAL=0")
    try:
        server = make_server(host=args.host, port=args.port,
                             workers=args.workers, cache=cache,
                             quiet=_quiet_requested(args),
                             max_finished_jobs=args.max_finished_jobs,
                             finished_ttl_seconds=args.job_ttl,
                             max_concurrent_jobs=args.jobs,
                             max_queued_jobs=args.max_queued,
                             max_specs_per_job=args.max_specs,
                             token=token, journal=journal,
                             point_timeout=args.point_timeout,
                             resume=args.resume)
    except (OSError, OverflowError) as error:
        # Port in use / privileged / out of range / bad address: a
        # one-line diagnosis, not a traceback.  (bind() reports an
        # out-of-range port as OverflowError, not OSError.)
        raise ReproError(f"cannot bind {args.host}:{args.port}: "
                         f"{error}") from None
    host, port = server.server_address[:2]
    where = cache.directory if cache is not None else "disabled"
    from repro.obs import get_logger
    log = get_logger("repro.serve")
    log.info("serving", url=f"http://{host}:{port}",
             workers=args.workers, cache=where,
             auth="token" if token else "off",
             journal=str(journal.path) if journal else "off")
    if server.manager.replay_stats is not None:
        log.info("journal.replayed", **server.manager.replay_stats)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log.info("shutting down")
    finally:
        server.server_close()
    return 0


def _submit_request(args):
    """Build the POST body from the submit axes/figure flags."""
    request = {}
    if args.figure:
        if args.kernels or args.configs or args.variants:
            raise ReproError(
                "--figure and the kernels/configs/variants axes are "
                "exclusive")
        request["figure"] = args.figure
    else:
        for key, value in (("kernels", args.kernels),
                           ("configs", args.configs),
                           ("variants", args.variants)):
            if value:
                request[key] = value.split(",")
    if args.backend is not None:
        if args.figure:
            raise ReproError(
                "--backend applies to axes submissions, not --figure "
                "(figures pin their own specs)")
        request["backend"] = args.backend
    if args.seed is not None:
        request["seed"] = args.seed
    if args.priority is not None:
        request["priority"] = args.priority
    return request


def _submit(args):
    from repro.eval.reporting import render_sweep
    from repro.runtime.shard import (
        sweep_json_payload, sweep_result_from_payload)
    from repro.serve.client import (
        SweepClient, describe_record, run_distributed)

    servers = [url.strip() for url in args.server.split(",")
               if url.strip()]
    if not servers:
        raise ReproError("no server URLs given")
    request = _submit_request(args)
    quiet = _quiet_requested(args)
    token = args.token or os.environ.get("REPRO_SERVE_TOKEN") or None
    client_kwargs = {"timeout": args.timeout, "token": token}
    if args.idle_timeout is not None:
        client_kwargs["idle_timeout"] = args.idle_timeout

    if args.shard_across:
        if args.shard:
            raise ReproError(
                "--shard picks one slice by hand; --shard-across "
                "shards over the servers — use one or the other")

        def narrate(record, done, total, url):
            print(describe_record(record, done, total, origin=url),
                  file=sys.stderr, flush=True)

        dispatch_kwargs = dict(client_kwargs)
        if args.retries is not None:
            dispatch_kwargs["max_attempts"] = args.retries
        result, _ = run_distributed(
            servers, request,
            progress=None if quiet else narrate, **dispatch_kwargs)
        if args.json:
            print(json.dumps(sweep_json_payload(result), indent=2))
        else:
            print(render_sweep(result))
        return 1 if result.crashed else 0

    if len(servers) > 1:
        raise ReproError(
            "several --server URLs only make sense with "
            "--shard-across; pick one URL otherwise")
    if args.shard:
        from repro.runtime.shard import parse_shard
        request["shard"] = list(parse_shard(args.shard))

    def narrate_one(record, done, total):
        print(describe_record(record, done, total),
              file=sys.stderr, flush=True)

    client = SweepClient(servers[0], **client_kwargs)
    payload = client.run(request,
                         progress=None if quiet else narrate_one)
    result = sweep_result_from_payload(payload)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_sweep(result))
    return 1 if result.crashed else 0


def main(argv=None):
    args = _parser().parse_args(argv)
    handlers = {"map": _map, "run": _run, "energy": _energy,
                "area": _area, "kernels": _kernels, "sweep": _sweep,
                "diff": _diff, "merge": _merge, "cache": _cache,
                "figure": _figure, "explore": _explore,
                "serve": _serve, "submit": _submit, "bench": _bench,
                "profile": _profile, "trace": _trace,
                "metrics": _metrics, "history": _history,
                "report": _report, "chaos": _chaos}
    # ``--trace-out`` (sweep/diff) records the whole command and
    # dumps whatever landed even on a failing exit — a trace of the
    # run that misbehaved is the one worth keeping.
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.obs import trace
        trace.enable_tracing()
    try:
        return handlers[args.command](args)
    except UnmappableError as error:
        print(f"no mapping: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if trace_out:
            spans = trace.drain_spans()
            trace.write_chrome_trace(trace_out, spans)
            print(f"{len(spans)} spans -> {trace_out}",
                  file=sys.stderr, flush=True)


if __name__ == "__main__":
    sys.exit(main())
