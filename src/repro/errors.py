"""Exception hierarchy for the repro package.

Every failure mode that the paper's flow can hit has a dedicated
exception so callers (and the experiment harness) can distinguish
"no mapping exists under these context-memory constraints" — an
*expected* outcome reproduced in Figs 6-8 — from genuine bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed or inconsistent CDFG/DFG."""


class ValidationError(IRError):
    """A graph failed structural validation."""


class ArchitectureError(ReproError):
    """Inconsistent CGRA description (bad grid, bad CM layout...)."""


class MappingError(ReproError):
    """Generic mapping-flow failure."""


class UnmappableError(MappingError):
    """No valid mapping exists for the kernel under the given constraints.

    This is the outcome rendered as zero-height bars in the paper's
    Figs 6-8: the flow exhausted transformations and every partial
    mapping violated the context-memory constraints.
    """

    def __init__(self, message, kernel=None, config=None, block=None):
        super().__init__(message)
        self.kernel = kernel
        self.config = config
        self.block = block


class RoutingError(MappingError):
    """No legal MOV chain between a producer and a consumer placement."""


class SchedulingError(MappingError):
    """List scheduling could not order the data-flow graph."""


class CodegenError(ReproError):
    """Assembler or binary encoder failure."""


class EncodingError(CodegenError):
    """A field does not fit its instruction-word slot."""


class SimulationError(ReproError):
    """CGRA or CPU simulation failed (bad context, runaway loop...)."""


class ContextOverflowError(SimulationError):
    """A tile's context stream exceeds its context-memory depth.

    The simulator enforces the same constraint the mapper optimises
    (`n(Mo) + n(pnop) <= n(I)`), so a mapping that silently violated it
    is caught at load time rather than producing bogus energy numbers.
    """
