"""The parallel experiment engine (batch interface).

:func:`run_specs` executes a batch of
:class:`~repro.runtime.sweep.PointSpec` with three guarantees:

- **Deterministic ordering** — results come back in the order the
  specs were given, regardless of which worker finished first.
  Duplicate specs within a batch are computed once and fanned back
  out to every requesting position.
- **Exception capture** — the pipeline already folds
  :class:`~repro.errors.UnmappableError` into an error-carrying
  :class:`~repro.runtime.sweep.ExperimentPoint`; any *other*
  exception inside a worker is captured the same way (with its
  traceback in ``point.error``) so one broken point can never kill a
  140-point sweep.  Captured crashes are never persisted to the
  cache — only deterministic outcomes are.
- **Serial fallback** — ``workers=1`` runs the identical code path
  inline, with no executor and no pickling, which is what the
  equivalence tests compare the parallel path against.

The batch path is a thin collector over
:func:`repro.runtime.stream.stream_specs` — the generator owns the
executor, the cache protocol and the progress callbacks, so the
streaming and batch interfaces cannot drift apart.  Workers are plain
``concurrent.futures.ProcessPoolExecutor`` processes; specs and
points cross the boundary by pickling.  The mapping flow seeds every
random stream from ``FlowOptions.seed``, so a point computes
identically in any process.
"""

from __future__ import annotations

import time
import traceback

from repro.runtime.sweep import (
    ExperimentPoint,
    SweepResult,
    compute_point,
    sweep_specs,
)


def _compute_captured(spec):
    """Worker entry point: compute one spec, capture any failure.

    Catches ``Exception``, not ``BaseException``: the serial path
    runs this inline in the main process, where KeyboardInterrupt /
    SystemExit must abort the whole sweep, not burn one point each.
    """
    try:
        return compute_point(spec)
    except Exception as error:  # noqa: BLE001 — capture is the contract
        detail = traceback.format_exc(limit=8)
        return ExperimentPoint(
            spec.kernel_name, spec.config_name, spec.variant,
            error=f"{type(error).__name__}: {error}\n{detail}")


def _compute_job(spec, carrier=None, attempt=0):
    """Worker entry for the supervised parallel path.

    Runs the chaos hook first — an armed ``REPRO_FAULT`` plan may
    crash or stall this very process, which is how the containment
    layer in :mod:`repro.runtime.stream` is exercised — then defers
    to the captured (optionally traced) computation.  ``attempt`` is
    the 0-based resubmission ordinal stamped by the supervisor; it
    only feeds the fault plan's decision hash, so a retried spec
    re-rolls its faults instead of deterministically dying forever.
    """
    from repro.chaos import maybe_fail_point

    maybe_fail_point(spec, attempt)
    if carrier is not None:
        return _compute_traced(spec, carrier)
    return _compute_captured(spec)


def _compute_traced(spec, carrier):
    """Worker entry when the submitting side is tracing.

    Runs the normal captured computation under the parent's adopted
    trace context (so the point's spans stitch into the sweep's
    tree), then returns ``(point, spans)`` — the worker process's
    span buffer dies with the process, so the spans ride home on the
    result.  Kept separate from :func:`_compute_captured` because
    that 1-arg signature is a monkeypatch seam for the whole test
    suite; going through the module attribute here means a patched
    compute function is honoured under tracing too.
    """
    from repro.obs import trace

    trace.enable_tracing()
    with trace.adopt(carrier):
        point = _compute_captured(spec)
    return point, trace.drain_spans()


def run_specs(specs, workers=1, cache=None, progress=None,
              point_timeout=None):
    """Execute a batch of specs; returns ``(points, cache_hits)``.

    ``points`` is ordered like ``specs``.  ``cache`` is a
    :class:`~repro.runtime.cache.ResultCache` or None (disabled).
    ``progress`` is forwarded to the streaming engine: it is called
    with a :class:`~repro.runtime.stream.StreamUpdate` as each unique
    point lands, so long batches can report incrementally.
    ``point_timeout`` is the per-point wall-clock deadline in seconds
    (None: ``$REPRO_POINT_TIMEOUT``, else unlimited).
    """
    from repro.runtime.stream import stream_specs

    specs = [spec.resolve() for spec in specs]
    positions = {}
    for index, spec in enumerate(specs):
        positions.setdefault(spec, []).append(index)

    points = [None] * len(specs)
    cache_hits = 0

    def observe(update):
        nonlocal cache_hits
        if update.from_cache:
            cache_hits += 1
        if progress is not None:
            progress(update)

    for spec, point in stream_specs(specs, workers=workers, cache=cache,
                                    progress=observe,
                                    point_timeout=point_timeout):
        for index in positions[spec]:
            points[index] = point
    return points, cache_hits


def run_sweep(specs=None, workers=1, cache=None, progress=None,
              point_timeout=None):
    """Run a batch (default: the full paper sweep) into a SweepResult."""
    if specs is None:
        specs = sweep_specs()
    specs = [spec.resolve() for spec in specs]
    started = time.perf_counter()
    points, cache_hits = run_specs(specs, workers=workers, cache=cache,
                                   progress=progress,
                                   point_timeout=point_timeout)
    return SweepResult(specs=specs, points=points, cache_hits=cache_hits,
                       computed=len({s for s in specs}) - cache_hits,
                       elapsed_seconds=time.perf_counter() - started)
