"""The parallel experiment engine.

:func:`run_specs` executes a batch of
:class:`~repro.runtime.sweep.PointSpec` with three guarantees:

- **Deterministic ordering** — results come back in the order the
  specs were given, regardless of which worker finished first.
  Duplicate specs within a batch are computed once and fanned back
  out to every requesting position.
- **Exception capture** — the pipeline already folds
  :class:`~repro.errors.UnmappableError` into an error-carrying
  :class:`~repro.runtime.sweep.ExperimentPoint`; any *other*
  exception inside a worker is captured the same way (with its
  traceback in ``point.error``) so one broken point can never kill a
  140-point sweep.  Captured crashes are never persisted to the
  cache — only deterministic outcomes are.
- **Serial fallback** — ``workers=1`` runs the identical code path
  inline, with no executor and no pickling, which is what the
  equivalence tests compare the parallel path against.

Workers are plain ``concurrent.futures.ProcessPoolExecutor``
processes; specs and points cross the boundary by pickling.  The
mapping flow seeds every random stream from ``FlowOptions.seed``, so
a point computes identically in any process.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.runtime.sweep import (
    DETERMINISTIC_ERRORS,
    ExperimentPoint,
    SweepResult,
    compute_point,
    sweep_specs,
)


def _compute_captured(spec):
    """Worker entry point: compute one spec, capture any failure.

    Catches ``Exception``, not ``BaseException``: the serial path
    runs this inline in the main process, where KeyboardInterrupt /
    SystemExit must abort the whole sweep, not burn one point each.
    """
    try:
        return compute_point(spec)
    except Exception as error:  # noqa: BLE001 — capture is the contract
        detail = traceback.format_exc(limit=8)
        return ExperimentPoint(
            spec.kernel_name, spec.config_name, spec.variant,
            error=f"{type(error).__name__}: {error}\n{detail}")


def run_specs(specs, workers=1, cache=None):
    """Execute a batch of specs; returns ``(points, cache_hits)``.

    ``points`` is ordered like ``specs``.  ``cache`` is a
    :class:`~repro.runtime.cache.ResultCache` or None (disabled).
    """
    specs = [spec.resolve() for spec in specs]
    points = [None] * len(specs)
    positions = {}
    for index, spec in enumerate(specs):
        positions.setdefault(spec, []).append(index)

    cache_hits = 0
    pending = []
    for spec, indices in positions.items():
        cached = cache.get_point(spec) if cache is not None else None
        if cached is not None:
            cache_hits += 1
            for index in indices:
                points[index] = cached
        else:
            pending.append(spec)

    if pending:
        if workers <= 1:
            computed = [(spec, _compute_captured(spec)) for spec in pending]
        else:
            computed = _run_pool(pending, workers)
        for spec, point in computed:
            if cache is not None and point.error in DETERMINISTIC_ERRORS:
                cache.store_point(spec, point)
            for index in positions[spec]:
                points[index] = point
    return points, cache_hits


def _run_pool(pending, workers):
    """Fan unique specs out over a process pool."""
    results = {}
    with ProcessPoolExecutor(max_workers=min(workers,
                                             len(pending))) as executor:
        futures = {executor.submit(_compute_captured, spec): spec
                   for spec in pending}
        for future in as_completed(futures):
            spec = futures[future]
            try:
                point = future.result()
            except Exception as error:  # a worker died outright
                point = ExperimentPoint(
                    spec.kernel_name, spec.config_name, spec.variant,
                    error=f"worker failure: {type(error).__name__}: "
                          f"{error}")
            results[spec] = point
    return [(spec, results[spec]) for spec in pending]


def run_sweep(specs=None, workers=1, cache=None):
    """Run a batch (default: the full paper sweep) into a SweepResult."""
    if specs is None:
        specs = sweep_specs()
    specs = [spec.resolve() for spec in specs]
    started = time.perf_counter()
    points, cache_hits = run_specs(specs, workers=workers, cache=cache)
    return SweepResult(specs=specs, points=points, cache_hits=cache_hits,
                       computed=len({s for s in specs}) - cache_hits,
                       elapsed_seconds=time.perf_counter() - started)
