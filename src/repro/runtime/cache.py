"""Persistent on-disk cache for computed experiment points.

Mapping is by far the dominant cost of reproducing the paper's
figures, and it is fully deterministic: the flow derives every random
stream from the options' seed.  So a computed
:class:`~repro.runtime.sweep.ExperimentPoint` is worth keeping across
processes and sessions.

Keys are a SHA-256 content hash of *everything that determines the
result*: kernel name, configuration name, flow variant, the complete
:class:`~repro.mapping.flow.FlowOptions`, the input seed, any custom
context-memory depths, the package version and the cache format
version.  Change any of them — a different pruning seed, a new
release that alters the energy model — and the key changes, so stale
payloads are never returned; they are merely orphaned until the next
``clear()``.

Writes are atomic: payloads are pickled to a temporary file in the
cache directory and ``os.replace``-d into place, so a reader never
observes a partially written entry and an interrupted run leaves at
worst an ignored ``*.tmp*`` file behind.  Unreadable or truncated
entries are treated as misses and deleted.

The cache directory defaults to ``~/.cache/repro`` and is overridden
with the ``REPRO_CACHE_DIR`` environment variable.

The cache is managed: every entry's mtime is refreshed on hit, so
recency order is literal file recency, and an optional byte cap —
``max_bytes=`` or the ``REPRO_CACHE_MAX_BYTES`` environment variable
(plain bytes or ``512K`` / ``64M`` / ``2G``) — evicts
least-recently-used entries after each store.  ``stats()`` reports
size and session counters; ``prune()`` applies a cap on demand;
``repro cache stats|prune|clear`` exposes all of it on the command
line.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import tempfile

import repro
from repro.chaos import maybe_corrupt_cache_entry
from repro.obs import get_logger, metrics as _metrics

_log = get_logger("repro.runtime.cache")

#: Environment variable overriding the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable capping the cache size in bytes (suffixes
#: ``K``/``M``/``G`` = KiB/MiB/GiB accepted).
ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

#: Bump when the on-disk payload layout changes incompatibly.
#: Format 2: ExperimentPoint grew an explicit ``mapped`` override.
#: Format 3: PointSpec grew ``rows``/``cols`` (array-shape scaling
#: for design-space exploration) — the fields join the key payload.
#: Format 4: PointSpec grew ``backend`` (pluggable execution
#: backends) and ExperimentPoint an ``output_digest``; entry
#: filenames now carry an ``f4-`` format prefix, so entries written
#: by other formats are recognisably *orphaned* — never read, never
#: crashed on, reported by ``stats()`` and reclaimed by ``clear()``
#: or LRU eviction.
CACHE_FORMAT = 4

_SUFFIX = ".pkl"

#: Filename prefix of entries written by *this* format.  Pre-format-4
#: entries were bare ``<hash>.pkl``; any entry without the current
#: prefix is orphaned by definition.
_FORMAT_PREFIX = f"f{CACHE_FORMAT}-"

_BYTE_SUFFIXES = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro"


def parse_bytes(text):
    """``"4096"`` -> 4096, ``"512K"``/``"64M"``/``"2G"`` -> bytes."""
    given = str(text).strip()
    digits = given.upper()
    multiplier = 1
    if digits and digits[-1] in _BYTE_SUFFIXES:
        multiplier = _BYTE_SUFFIXES[digits[-1]]
        digits = digits[:-1]
    try:
        value = int(digits) * multiplier
    except ValueError:
        raise ValueError(
            f"not a byte size: {given!r} (expected e.g. 4096, 512K, "
            f"64M, 2G)") from None
    if value < 0:
        raise ValueError(f"byte size must be >= 0, got {value}")
    return value


def default_max_bytes():
    """``$REPRO_CACHE_MAX_BYTES`` as an int, or None (unlimited).

    ``0`` follows the common env-var convention and means *no cap* —
    a standing cap of zero would evict every entry the moment it is
    written, silently turning the cache into pure wasted I/O.  (An
    explicit ``prune(0)`` still means "evict everything", which is a
    deliberate one-shot action.)
    """
    override = os.environ.get(ENV_CACHE_MAX_BYTES)
    if not override:
        return None
    return parse_bytes(override) or None


def spec_payload(spec):
    """Canonical JSON-safe dict of a spec's result-determining fields.

    The single definition shared by the cache key and the shard JSON
    serialisation (:mod:`repro.runtime.shard`): a field added here
    perturbs cache keys, sweep fingerprints and shard payloads in
    lockstep, so the three can never silently disagree about what
    identifies a computation.
    """
    spec = spec.resolve()
    return {
        "kernel": spec.kernel_name,
        "config": spec.config_name,
        "variant": spec.variant,
        "options": dataclasses.asdict(spec.options),
        "seed": spec.seed,
        "cm_depths": (list(spec.cm_depths)
                      if spec.cm_depths is not None else None),
        "rows": spec.rows,
        "cols": spec.cols,
        "backend": spec.backend,
    }


def point_key(spec, version=None):
    """Content hash identifying one experiment point's result.

    Two specs that describe the same computation hash identically
    (``options=None`` is resolved to the variant's preset first);
    any field that could change the outcome perturbs the digest.
    """
    payload = dict(spec_payload(spec))
    payload["format"] = CACHE_FORMAT
    payload["version"] = (version if version is not None
                          else repro.__version__)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of pickled experiment points, one file per key.

    Tracks ``hits`` / ``misses`` / ``stores`` / ``evictions`` for the
    session so callers can assert "a warm run re-mapped zero points".

    ``max_bytes`` (default: ``$REPRO_CACHE_MAX_BYTES``, else
    unlimited) caps the directory's total entry size; after every
    store, least-recently-used entries (by mtime — refreshed on every
    hit) are evicted until the cap holds again.
    """

    def __init__(self, directory=None, max_bytes=None):
        self.directory = (pathlib.Path(directory) if directory is not None
                          else default_cache_dir())
        self.max_bytes = (max_bytes if max_bytes is not None
                          else default_max_bytes())
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        # Running size estimate under a cap: seeded by one full scan,
        # bumped per store, re-synced against the directory whenever
        # it crosses the cap.  Overwrites double-count (conservative:
        # at worst an early re-sync), other processes' writes are
        # caught by the authoritative rescan inside _evict_to.
        self._tracked_bytes = None

    # ------------------------------------------------------------------
    # Key-level interface
    # ------------------------------------------------------------------
    def path_for(self, key):
        return self.directory / f"{_FORMAT_PREFIX}{key}{_SUFFIX}"

    def get(self, key):
        """The cached payload for ``key``, or None on a miss.

        A corrupt or truncated entry (e.g. the machine died mid-write
        of a non-atomic filesystem, or a payload pickled by an
        incompatible interpreter) counts as a miss and is removed.
        """
        path = self.path_for(key)
        if path.exists():
            # Chaos hook: an armed cache_corrupt fault garbles the
            # entry on disk right here, so the discard path below is
            # exercised by exactly the failure it guards against.
            maybe_corrupt_cache_entry(path, key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            _metrics.CACHE_MISSES.inc()
            return None
        except Exception as error:
            # pickle.load on a corrupt payload can raise nearly
            # anything (UnpicklingError, EOFError, KeyError, ValueError,
            # struct.error, ...); any failure to read is a miss and the
            # entry is dropped so it cannot crash the next run either.
            # Loud, though: disk-level corruption is an operator
            # problem, not a cache miss, so it gets its own counter
            # and a structured warning.
            self._discard(path)
            self.misses += 1
            _metrics.CACHE_MISSES.inc()
            _metrics.CACHE_CORRUPT.inc()
            _log.warning("cache.corrupt_entry", key=key,
                         path=str(path),
                         error=f"{type(error).__name__}: {error}")
            return None
        self.hits += 1
        _metrics.CACHE_HITS.inc()
        self._touch(path)
        return payload

    def put(self, key, payload):
        """Atomically persist ``payload`` under ``key``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f"{key}{_SUFFIX}.tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, final)
        except BaseException:
            self._discard(pathlib.Path(temp_name))
            raise
        self.stores += 1
        _metrics.CACHE_STORES.inc()
        if self.max_bytes is not None:
            self._account_store(final)
        return final

    def invalidate(self, key):
        """Drop one entry; True if it existed."""
        path = self.path_for(key)
        existed = path.exists()
        self._discard(path)
        return existed

    # ------------------------------------------------------------------
    # Spec-level convenience
    # ------------------------------------------------------------------
    def get_point(self, spec):
        return self.get(point_key(spec))

    def has_point(self, spec):
        """Whether a completed entry exists for ``spec``.

        A bare existence check (one ``stat``, no unpickling, no
        hit/miss accounting) — cheap enough to probe thousands of
        specs, which is what cache-aware shard balancing does.
        """
        return self.path_for(point_key(spec)).exists()

    def store_point(self, spec, point):
        return self.put(point_key(spec), point)

    def invalidate_point(self, spec):
        return self.invalidate(point_key(spec))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def entries(self):
        """Paths of all complete cache entries (ignores temp files).

        Includes *orphaned* entries — files written under an earlier
        :data:`CACHE_FORMAT` (recognisable by their filename prefix).
        They are never read back (``path_for`` only names
        current-format files) but they still occupy bytes, so size
        accounting, LRU eviction and ``clear()`` all see them.
        """
        if not self.directory.is_dir():
            return []
        return sorted(path for path in self.directory.iterdir()
                      if path.suffix == _SUFFIX
                      and ".tmp" not in path.name)

    @staticmethod
    def is_orphaned(path):
        """Whether an entry was written under a different format."""
        return not path.name.startswith(_FORMAT_PREFIX)

    def size_bytes(self):
        """Total size of all complete entries, in bytes."""
        return sum(size for _, _, size in self._inventory())

    def stats(self):
        """Size accounting plus session counters, as a plain dict.

        ``entries``/``total_bytes`` cover the whole directory;
        ``orphaned_entries``/``orphaned_bytes`` single out entries
        from other cache formats — dead weight a format bump left
        behind, reclaimable with ``prune``/``clear``.
        """
        inventory = self._inventory()
        orphaned = [(path, size) for _, path, size in inventory
                    if self.is_orphaned(path)]
        _metrics.CACHE_ENTRIES.set(len(inventory))
        _metrics.CACHE_BYTES.set(
            sum(size for _, _, size in inventory))
        _metrics.CACHE_ORPHANED_BYTES.set(
            sum(size for _, size in orphaned))
        return {
            "directory": str(self.directory),
            "format": CACHE_FORMAT,
            "entries": len(inventory),
            "total_bytes": sum(size for _, _, size in inventory),
            "orphaned_entries": len(orphaned),
            "orphaned_bytes": sum(size for _, size in orphaned),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def prune(self, max_bytes=None):
        """Evict LRU entries until the cap holds; returns the count.

        ``max_bytes=None`` uses the cache's configured cap; pruning a
        cache with no cap at all is an error (it would be a no-op the
        caller almost certainly did not intend).
        """
        cap = max_bytes if max_bytes is not None else self.max_bytes
        if cap is None:
            raise ValueError(
                "no byte cap to prune to: pass max_bytes or set "
                f"${ENV_CACHE_MAX_BYTES}")
        return self._evict_to(cap)

    def _inventory(self):
        """``(mtime, path, size)`` of every entry, oldest first.

        Entries that vanish mid-scan (a concurrent clear or another
        process's eviction) are simply skipped.
        """
        rows = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append((stat.st_mtime, path, stat.st_size))
        rows.sort(key=lambda row: (row[0], row[1].name))
        return rows

    def _account_store(self, path):
        """Track one store against the cap without a full rescan."""
        if self._tracked_bytes is None:
            self._tracked_bytes = self.size_bytes()  # includes `path`
        else:
            try:
                self._tracked_bytes += path.stat().st_size
            except OSError:
                pass
        if self._tracked_bytes > self.max_bytes:
            self._evict_to(self.max_bytes)

    def _evict_to(self, cap):
        """Drop least-recently-used entries until ``total <= cap``."""
        inventory = self._inventory()
        total = sum(size for _, _, size in inventory)
        evicted = 0
        for _, path, size in inventory:
            if total <= cap:
                break
            self._discard(path)
            total -= size
            evicted += 1
        self.evictions += evicted
        if evicted:
            _metrics.CACHE_EVICTIONS.inc(evicted)
        self._tracked_bytes = total  # authoritative re-sync
        return evicted

    @staticmethod
    def _touch(path):
        """Refresh mtime on a hit so recency order is literal."""
        try:
            os.utime(path)
        except OSError:
            pass

    def clear(self):
        """Wipe every entry (and stray temp files); returns the count."""
        removed = 0
        self._tracked_bytes = None
        if not self.directory.is_dir():
            return removed
        for path in self.directory.iterdir():
            if path.suffix == _SUFFIX or ".tmp" in path.name:
                self._discard(path)
                removed += 1
        return removed

    @staticmethod
    def _discard(path):
        try:
            os.unlink(path)
        except OSError:
            pass

    def __repr__(self):
        return (f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores}, "
                f"evictions={self.evictions})")
