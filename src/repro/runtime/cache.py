"""Persistent on-disk cache for computed experiment points.

Mapping is by far the dominant cost of reproducing the paper's
figures, and it is fully deterministic: the flow derives every random
stream from the options' seed.  So a computed
:class:`~repro.runtime.sweep.ExperimentPoint` is worth keeping across
processes and sessions.

Keys are a SHA-256 content hash of *everything that determines the
result*: kernel name, configuration name, flow variant, the complete
:class:`~repro.mapping.flow.FlowOptions`, the input seed, any custom
context-memory depths, the package version and the cache format
version.  Change any of them — a different pruning seed, a new
release that alters the energy model — and the key changes, so stale
payloads are never returned; they are merely orphaned until the next
``clear()``.

Writes are atomic: payloads are pickled to a temporary file in the
cache directory and ``os.replace``-d into place, so a reader never
observes a partially written entry and an interrupted run leaves at
worst an ignored ``*.tmp*`` file behind.  Unreadable or truncated
entries are treated as misses and deleted.

The cache directory defaults to ``~/.cache/repro`` and is overridden
with the ``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import tempfile

import repro

#: Environment variable overriding the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Bump when the on-disk payload layout changes incompatibly.
CACHE_FORMAT = 1

_SUFFIX = ".pkl"


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro"


def point_key(spec, version=None):
    """Content hash identifying one experiment point's result.

    Two specs that describe the same computation hash identically
    (``options=None`` is resolved to the variant's preset first);
    any field that could change the outcome perturbs the digest.
    """
    spec = spec.resolve()
    payload = {
        "format": CACHE_FORMAT,
        "version": version if version is not None else repro.__version__,
        "kernel": spec.kernel_name,
        "config": spec.config_name,
        "variant": spec.variant,
        "options": dataclasses.asdict(spec.options),
        "seed": spec.seed,
        "cm_depths": (list(spec.cm_depths)
                      if spec.cm_depths is not None else None),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of pickled experiment points, one file per key.

    Tracks ``hits`` / ``misses`` / ``stores`` for the session so
    callers can assert "a warm run re-mapped zero points".
    """

    def __init__(self, directory=None):
        self.directory = (pathlib.Path(directory) if directory is not None
                          else default_cache_dir())
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # Key-level interface
    # ------------------------------------------------------------------
    def path_for(self, key):
        return self.directory / f"{key}{_SUFFIX}"

    def get(self, key):
        """The cached payload for ``key``, or None on a miss.

        A corrupt or truncated entry (e.g. the machine died mid-write
        of a non-atomic filesystem, or a payload pickled by an
        incompatible interpreter) counts as a miss and is removed.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # pickle.load on a corrupt payload can raise nearly
            # anything (UnpicklingError, EOFError, KeyError, ValueError,
            # struct.error, ...); any failure to read is a miss and the
            # entry is dropped so it cannot crash the next run either.
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key, payload):
        """Atomically persist ``payload`` under ``key``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f"{key}{_SUFFIX}.tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, final)
        except BaseException:
            self._discard(pathlib.Path(temp_name))
            raise
        self.stores += 1
        return final

    def invalidate(self, key):
        """Drop one entry; True if it existed."""
        path = self.path_for(key)
        existed = path.exists()
        self._discard(path)
        return existed

    # ------------------------------------------------------------------
    # Spec-level convenience
    # ------------------------------------------------------------------
    def get_point(self, spec):
        return self.get(point_key(spec))

    def store_point(self, spec, point):
        return self.put(point_key(spec), point)

    def invalidate_point(self, spec):
        return self.invalidate(point_key(spec))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def entries(self):
        """Paths of all complete cache entries (ignores temp files)."""
        if not self.directory.is_dir():
            return []
        return sorted(path for path in self.directory.iterdir()
                      if path.suffix == _SUFFIX)

    def clear(self):
        """Wipe every entry (and stray temp files); returns the count."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.iterdir():
            if path.suffix == _SUFFIX or ".tmp" in path.name:
                self._discard(path)
                removed += 1
        return removed

    @staticmethod
    def _discard(path):
        try:
            os.unlink(path)
        except OSError:
            pass

    def __repr__(self):
        return (f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")
