"""Differential execution: the same specs through two backends.

"Evaluation of CGRA Toolchains" makes the case that cross-toolchain
comparison is how silent modeling errors surface; this module is that
comparison turned into a first-class batch operation.  Every spec is
paired — once per backend under test — and the pairs run as *one*
combined :func:`~repro.runtime.pool.run_specs` batch, so the process
pool, the cache and the progress stream all work exactly as they do
for an ordinary sweep (backends already perturb the cache key, so
pairs can never collide).

Per pair, three comparisons in order of severity:

1. **Outcome class** — mapped vs not, and the deterministic error
   string (``unmappable`` / ``context overflow``).  Backends share
   the mapping front half, so any disagreement here is a dispatch
   bug, not a modeling gap.
2. **Outputs** — the :func:`~repro.runtime.backends.output_digest`
   content hashes must be identical.  Both backends verify against
   the kernel reference internally, so a digest mismatch means one
   of them silently mutated memory it should not have.
3. **Cycles** — within tolerance
   ``abs(a - b) <= max(abs_tol, rel_tol * a)`` where ``a`` is the
   first (baseline) backend's count.  The backends *legitimately*
   disagree here: the analytic path charges the mapper's scheduled
   block lengths, the cycle-level path measures the stream (see
   :data:`~repro.sim.executor.CYCLE_TOLERANCE_NOTE`).

The default tolerances are measured, not guessed: across the full
paper sweep (140 mapped points) the analytic count exceeds the
cycle-level count by exactly one cycle — the schedule's trailing
slack — for a worst-case relative gap of 0.34%.  The defaults
(:data:`DEFAULT_ABS_TOL` = 2, :data:`DEFAULT_REL_TOL` = 0.01) sit
comfortably above that bound while still catching any real timing
regression, which would show up as a multi-cycle divergence.
"""

from __future__ import annotations

import dataclasses
import time

from repro.errors import ReproError
from repro.runtime.backends import (
    DEFAULT_BACKEND,
    backend_names,
    get_backend,
)
from repro.runtime.sweep import DETERMINISTIC_ERRORS

#: Bump when the ``repro diff --json`` payload layout changes.
DIFF_JSON_SCHEMA = 1

#: Default cycle tolerances (measured — see module docstring).
DEFAULT_ABS_TOL = 2
DEFAULT_REL_TOL = 0.01

#: The pair of backends ``repro diff`` compares by default.
DEFAULT_DIFF_BACKENDS = (DEFAULT_BACKEND, "cycle")


@dataclasses.dataclass(frozen=True)
class PointDiff:
    """One spec's outcome under two backends, compared."""

    kernel_name: str
    config_name: str
    variant: str
    backend_a: str
    backend_b: str
    mapped_a: bool
    mapped_b: bool
    error_a: str
    error_b: str
    cycles_a: int
    cycles_b: int
    digest_a: str
    digest_b: str

    def describe(self):
        return f"{self.kernel_name}@{self.config_name}/{self.variant}"

    @property
    def crashed(self):
        """Either side failed non-deterministically (worker crash)."""
        return (self.error_a not in DETERMINISTIC_ERRORS
                or self.error_b not in DETERMINISTIC_ERRORS)

    @property
    def outcome_match(self):
        """Same mapped/error class on both sides."""
        return (self.mapped_a == self.mapped_b
                and self.error_a == self.error_b)

    @property
    def digest_match(self):
        return self.digest_a == self.digest_b

    @property
    def cycle_delta(self):
        if self.cycles_a is None or self.cycles_b is None:
            return None
        return self.cycles_a - self.cycles_b

    def cycles_within(self, abs_tol, rel_tol):
        delta = self.cycle_delta
        if delta is None:
            return True
        return abs(delta) <= max(abs_tol, rel_tol * abs(self.cycles_a))

    def classify(self, abs_tol, rel_tol):
        """Most severe disagreement, or ``"ok"``.

        ``crash`` > ``outcome`` > ``output`` > ``cycles`` — a crashed
        point makes the other comparisons meaningless, a class
        disagreement makes digests incomparable, and so on.
        """
        if self.crashed:
            return "crash"
        if not self.outcome_match:
            return "outcome"
        if not self.mapped_a:
            return "ok"
        if not self.digest_match:
            return "output"
        if not self.cycles_within(abs_tol, rel_tol):
            return "cycles"
        return "ok"

    def to_json(self, abs_tol, rel_tol):
        return {
            "kernel": self.kernel_name,
            "config": self.config_name,
            "variant": self.variant,
            "status": self.classify(abs_tol, rel_tol),
            "mapped": {self.backend_a: self.mapped_a,
                       self.backend_b: self.mapped_b},
            "error": {self.backend_a: self.error_a,
                      self.backend_b: self.error_b},
            "cycles": {self.backend_a: self.cycles_a,
                       self.backend_b: self.cycles_b},
            "cycle_delta": self.cycle_delta,
            "output_match": self.digest_match,
        }


@dataclasses.dataclass
class DiffResult:
    """Outcome of one differential run, in input spec order."""

    backend_a: str
    backend_b: str
    records: list
    abs_tol: float
    rel_tol: float
    cache_hits: int
    elapsed_seconds: float

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)

    def classified(self):
        """status -> [PointDiff], every record in exactly one bucket."""
        buckets = {}
        for record in self.records:
            status = record.classify(self.abs_tol, self.rel_tol)
            buckets.setdefault(status, []).append(record)
        return buckets

    @property
    def mismatches(self):
        """Records out of tolerance (anything not ``ok``)."""
        return [record for record in self.records
                if record.classify(self.abs_tol,
                                   self.rel_tol) != "ok"]

    @property
    def ok(self):
        return not self.mismatches

    def max_cycle_delta(self):
        """Largest absolute cycle delta among comparable records."""
        deltas = [abs(record.cycle_delta) for record in self.records
                  if record.cycle_delta is not None]
        return max(deltas, default=0)

    def summary(self):
        buckets = self.classified()
        counted = ", ".join(
            f"{len(buckets[status])} {status}"
            for status in ("crash", "outcome", "output", "cycles")
            if status in buckets)
        verdict = counted if counted else "all within tolerance"
        return (f"{len(self.records)} points diffed "
                f"({self.backend_a} vs {self.backend_b}): {verdict}; "
                f"max cycle delta {self.max_cycle_delta()}; "
                f"{self.cache_hits} from cache in "
                f"{self.elapsed_seconds:.1f}s")

    def to_json(self):
        return {
            "schema": DIFF_JSON_SCHEMA,
            "backends": [self.backend_a, self.backend_b],
            "tolerance": {"abs": self.abs_tol, "rel": self.rel_tol},
            "ok": self.ok,
            "mismatches": len(self.mismatches),
            "max_cycle_delta": self.max_cycle_delta(),
            "summary": {
                "points": len(self.records),
                "cache_hits": self.cache_hits,
                "elapsed_seconds": self.elapsed_seconds,
            },
            "points": [record.to_json(self.abs_tol, self.rel_tol)
                       for record in self.records],
        }


def validated_diff_backends(names):
    """Two distinct, known backend names (None = the default pair)."""
    if names is None:
        return DEFAULT_DIFF_BACKENDS
    names = tuple(names)
    if len(names) != 2:
        raise ReproError(
            f"diff compares exactly two backends, got {len(names)}")
    for name in names:
        get_backend(name)
    if names[0] == names[1]:
        raise ReproError(
            f"diff needs two distinct backends, got {names[0]!r} "
            f"twice; choose from {', '.join(backend_names())}")
    return names


def run_diff(specs, backends=None, abs_tol=DEFAULT_ABS_TOL,
             rel_tol=DEFAULT_REL_TOL, workers=1, cache=None,
             progress=None):
    """Run every spec through two backends and compare the outcomes.

    ``specs`` may name any backend themselves — it is overwritten by
    the pair under comparison.  The 2N paired specs execute as one
    combined batch, so workers interleave the two backends and the
    cache/progress behaviour matches an ordinary sweep.
    """
    from repro.obs import metrics, trace
    from repro.runtime.pool import run_specs

    backend_a, backend_b = validated_diff_backends(backends)
    resolved = [spec.resolve() for spec in specs]
    paired = [dataclasses.replace(spec, backend=name)
              for spec in resolved
              for name in (backend_a, backend_b)]
    started = time.perf_counter()
    with trace.span("diff", backends=f"{backend_a},{backend_b}",
                    points=len(resolved)):
        points, cache_hits = run_specs(paired, workers=workers,
                                       cache=cache, progress=progress)
    records = []
    for index, spec in enumerate(resolved):
        point_a, point_b = points[2 * index], points[2 * index + 1]
        if point_a.mapped and point_b.mapped:
            # The observable the differential lane exists to watch:
            # how far the two engines' cycle counts sit apart.
            metrics.CYCLE_DELTA.observe(
                abs(point_a.cycles - point_b.cycles))
        records.append(PointDiff(
            kernel_name=spec.kernel_name,
            config_name=spec.config_name,
            variant=spec.variant,
            backend_a=backend_a, backend_b=backend_b,
            mapped_a=point_a.mapped, mapped_b=point_b.mapped,
            error_a=point_a.error, error_b=point_b.error,
            cycles_a=point_a.cycles, cycles_b=point_b.cycles,
            digest_a=point_a.output_digest,
            digest_b=point_b.output_digest))
    return DiffResult(backend_a=backend_a, backend_b=backend_b,
                      records=records, abs_tol=abs_tol,
                      rel_tol=rel_tol, cache_hits=cache_hits,
                      elapsed_seconds=time.perf_counter() - started)
