"""Deterministic sweep sharding and the shard-merge path.

A sweep of *kernels × configs × flow variants* multiplies quickly —
the DSE ladders multiply it again — and one process pool should not
own all of it.  This module splits a spec list into ``N`` disjoint
shards that together are provably the whole list, so independent
machines (or CI matrix entries) can each run
``repro sweep --shard i/N``, write a JSON result file, and a final
merge step reassembles the one :class:`~repro.runtime.sweep.SweepResult`
the unsharded run would have produced.

**Sharding contract** (tested in ``tests/runtime/test_shard.py``):

- *Partition*: every input position is assigned to exactly one shard,
  so shards are pairwise disjoint and their union is the input —
  by construction, not by convention.
- *Determinism*: assignment is computed from a canonical ordering of
  the specs (estimated cost, then content hash), never from input
  positions, so every machine that builds the same spec list carves
  it identically — and re-ordering the list cannot move a spec to a
  different shard.
- *Order stability*: within a shard, specs keep the relative order
  they had in the full list.
- *Load balance*: specs are assigned greedily (longest processing
  time first) to the currently lightest shard, using an estimated
  cost heuristic — kernel size times a flow-variant weight from the
  paper's compile-time ratios — so heavy kernels spread across
  shards instead of piling up in one.

**JSON result files** carry, per point, the position it had in the
full spec list; the merge validates that the shard files cover every
position exactly once before rebuilding the sweep, so a missing or
duplicated shard is a hard error rather than a silently short result.
Rebuilt points are *summaries*: deterministic fields (cycles, energy,
error class, compile seconds) round-trip exactly, the heavy mapping
and activity objects do not.
"""

from __future__ import annotations

import hashlib
import heapq
import json

from repro.errors import ReproError
from repro.mapping.flow import FlowOptions
from repro.power.energy import EnergyBreakdown
from repro.runtime.cache import point_key, spec_payload
from repro.runtime.sweep import ExperimentPoint, PointSpec, SweepResult

#: Bump when the JSON sweep-result payload layout changes.
#: Schema 2: spec dicts carry ``rows``/``cols`` (array-shape scaling).
#: Schema 3: spec dicts carry ``backend`` (execution backend axis);
#: point dicts carry ``output_digest`` (cross-backend comparison
#: token).
SWEEP_JSON_SCHEMA = 3

#: Cost multiplier for already-cached specs under cache-aware
#: balancing: near zero (a hit is one unpickle), but not exactly zero
#: so warm specs still spread across shards instead of all landing on
#: whichever shard the greedy heap happens to favour.
CACHED_COST_SCALE = 1e-6

#: Relative compile-cost weight per flow variant (Fig 9's shape: the
#: full context-aware flow costs ~1.8x the basic flow).
_VARIANT_COST = {"basic": 1.0, "weighted": 1.0, "acmap": 1.2,
                 "ecmap": 1.5, "full": 1.8}

#: Fallback op count for kernels that fail to build (the cost model
#: must never crash a sweep that would have captured the failure).
_DEFAULT_KERNEL_OPS = 64

_KERNEL_OPS = {}


def _kernel_ops(name):
    ops = _KERNEL_OPS.get(name)
    if ops is None:
        try:
            from repro.kernels import get_kernel
            ops = get_kernel(name).cdfg.n_ops
        except Exception:
            ops = _DEFAULT_KERNEL_OPS
        _KERNEL_OPS[name] = ops
    return ops


def estimated_cost(spec):
    """Relative cost of computing one spec (unitless, deterministic).

    Mapping dominates and scales with the kernel's static op count;
    the context-aware stages multiply it by a roughly constant factor.
    Only *relative* accuracy matters — the heuristic spreads heavy
    kernels across shards, it does not predict seconds.
    """
    weight = _VARIANT_COST.get(spec.variant, 1.5)
    return _kernel_ops(spec.kernel_name) * weight


def parse_shard(text):
    """Parse a ``--shard INDEX/TOTAL`` value into ``(index, total)``."""
    try:
        index_text, total_text = text.split("/")
        index, total = int(index_text), int(total_text)
    except ValueError:
        raise ReproError(
            f"--shard expects INDEX/TOTAL (e.g. 0/4), got {text!r}"
        ) from None
    _check_shard(index, total)
    return index, total


def _check_shard(index, total):
    if total < 1:
        raise ReproError(f"shard total must be >= 1, got {total}")
    if not 0 <= index < total:
        raise ReproError(
            f"shard index must be in [0, {total}), got {index}")


def shard_indices(specs, index, total, cache=None):
    """Positions (into ``specs``) owned by shard ``index`` of ``total``.

    The canonical ordering sorts by descending estimated cost with
    the spec's content hash as tie-break — both are properties of the
    spec alone, so the assignment is invariant under re-ordering of
    the input.  Greedy longest-first assignment to the lightest shard
    (ties to the lowest shard index) balances the load.

    ``cache`` (a :class:`~repro.runtime.cache.ResultCache`) makes the
    balancing *cache-aware*: specs whose result is already cached are
    charged :data:`CACHED_COST_SCALE` of their cost, so on a warm
    re-run the *residual* (uncached) work splits evenly instead of
    some shards drawing all the cache hits and others all the cold
    mapping.  The partition contract is unchanged — shards stay
    disjoint and union-complete — but the assignment is now a
    function of (spec multiset, cache state): every cooperating shard
    producer must see the same cache (the shared ``$REPRO_CACHE_DIR``
    this mode exists for), or their shards may overlap or leave gaps.
    """
    _check_shard(index, total)
    resolved = [spec.resolve() for spec in specs]
    costs = [estimated_cost(spec) for spec in resolved]
    if cache is not None:
        costs = [cost * CACHED_COST_SCALE
                 if cache.has_point(spec) else cost
                 for spec, cost in zip(resolved, costs)]
    order = sorted(range(len(resolved)),
                   key=lambda i: (-costs[i], point_key(resolved[i])))
    loads = [(0.0, shard) for shard in range(total)]
    heapq.heapify(loads)
    mine = []
    for i in order:
        load, shard = heapq.heappop(loads)
        if shard == index:
            mine.append(i)
        heapq.heappush(loads, (load + costs[i], shard))
    return sorted(mine)


def shard_specs(specs, index, total, cache=None):
    """Shard ``index`` of ``total``: a disjoint, order-stable slice.

    For any spec list and any ``total``, the ``total`` shards
    partition the list: pairwise disjoint, union exactly the input.
    ``cache`` opts in to cache-aware balancing (see
    :func:`shard_indices`).
    """
    return [specs[i]
            for i in shard_indices(specs, index, total, cache=cache)]


# ----------------------------------------------------------------------
# JSON payloads
# ----------------------------------------------------------------------
def sweep_fingerprint(specs):
    """Content hash identifying a full spec list (order included).

    Every shard payload carries the fingerprint of the *full* sweep
    it was carved from, so the merge can refuse to combine shards of
    different sweeps — same length and disjoint positions are not
    enough (two sweeps differing only in ``--seed`` satisfy both).
    The underlying :func:`~repro.runtime.cache.point_key` embeds the
    package version, so results from different releases do not merge
    either.
    """
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(point_key(spec).encode("ascii"))
    return digest.hexdigest()


def spec_to_json(spec):
    """JSON-safe dict fully describing one resolved spec.

    Delegates to :func:`~repro.runtime.cache.spec_payload` — the same
    canonical dict the cache key hashes — so a field added to
    :class:`PointSpec` can never be persisted by the cache but
    dropped from shard payloads (or vice versa).
    """
    return spec_payload(spec)


def spec_from_json(data):
    """Rebuild a resolved :class:`PointSpec` from its JSON dict."""
    from repro.runtime.backends import DEFAULT_BACKEND

    options = data.get("options")
    cm_depths = data.get("cm_depths")
    return PointSpec(
        data["kernel"], data["config"], data["variant"],
        options=FlowOptions(**options) if options is not None else None,
        seed=data["seed"],
        cm_depths=tuple(cm_depths) if cm_depths is not None else None,
        rows=data.get("rows"), cols=data.get("cols"),
        backend=data.get("backend", DEFAULT_BACKEND),
    ).resolve()


def point_to_json(point):
    """Deterministic summary fields of one experiment point."""
    return {
        "kernel": point.kernel_name,
        "config": point.config_name,
        "variant": point.variant,
        "mapped": point.mapped,
        "cycles": point.cycles,
        "compile_seconds": point.compile_seconds,
        "energy_uj": point.energy_uj,
        "energy_parts_pj": (dict(point.energy.parts)
                            if point.energy is not None else None),
        "error": point.error,
        "output_digest": point.output_digest,
    }


def point_from_json(data):
    """Rebuild a summary :class:`ExperimentPoint` (no mapping object)."""
    parts = data.get("energy_parts_pj")
    return ExperimentPoint(
        data["kernel"], data["config"], data["variant"],
        compile_seconds=data.get("compile_seconds"),
        cycles=data.get("cycles"),
        energy=EnergyBreakdown(parts) if parts is not None else None,
        error=data.get("error"),
        mapped=data.get("mapped"),
        output_digest=data.get("output_digest"))


def sweep_json_payload(result, shard=None, positions=None,
                       spec_total=None, fingerprint=None):
    """Machine-readable payload for one sweep (whole or one shard).

    ``positions`` maps each point to its index in the *full* spec
    list (default: the identity — an unsharded sweep); ``spec_total``
    is the full list's length.  ``shard`` is ``(index, total)`` or
    None.  ``fingerprint`` is the full sweep's
    :func:`sweep_fingerprint`; shard producers must pass it (they
    only hold a slice), unsharded payloads default to their own.
    """
    if positions is None:
        positions = list(range(len(result.specs)))
    if spec_total is None:
        spec_total = len(result.specs)
    if len(positions) != len(result.specs):
        raise ReproError(
            f"{len(positions)} positions for {len(result.specs)} specs")
    if fingerprint is None:
        if spec_total != len(result.specs):
            raise ReproError(
                "a shard payload needs the full sweep's fingerprint")
        fingerprint = sweep_fingerprint(result.specs)
    return {
        "schema": SWEEP_JSON_SCHEMA,
        "shard": ({"index": shard[0], "total": shard[1]}
                  if shard is not None else None),
        "spec_total": spec_total,
        "fingerprint": fingerprint,
        "summary": {
            "points": len(result.points),
            "mapped": len(result.mapped),
            "unmapped": len(result.unmapped),
            "crashed": len(result.crashed),
            "cache_hits": result.cache_hits,
            "computed": result.computed,
            "elapsed_seconds": result.elapsed_seconds,
        },
        "points": [
            {"pos": pos, "spec": spec_to_json(spec),
             "point": point_to_json(point)}
            for pos, spec, point in zip(positions, result.specs,
                                        result.points)
        ],
    }


def sweep_result_from_payload(payload):
    """Rebuild one payload's (possibly partial) :class:`SweepResult`.

    No completeness validation — rendering a single shard's table or
    a remote job's result is legitimate on its own.  *Combining*
    payloads still goes through :func:`merge_sweep_payloads`, which
    does validate.
    """
    specs = []
    points = []
    for record in _field(payload, "points", "payload"):
        try:
            specs.append(spec_from_json(
                _field(record, "spec", "point record")))
            points.append(point_from_json(
                _field(record, "point", "point record")))
        except (KeyError, TypeError) as error:
            raise ReproError(
                f"malformed sweep payload record: {error}") from None
    summary = _field(payload, "summary", "payload")
    return SweepResult(
        specs=specs, points=points,
        cache_hits=_field(summary, "cache_hits", "summary"),
        computed=_field(summary, "computed", "summary"),
        elapsed_seconds=_field(summary, "elapsed_seconds", "summary"))


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _field(mapping, key, context):
    """Indexing with a diagnosis: malformed payloads are user input
    (hand-edited, truncated, or simply the wrong file), so a missing
    field must be a one-line :class:`ReproError`, not a traceback."""
    try:
        return mapping[key]
    except (KeyError, TypeError, IndexError):
        raise ReproError(
            f"malformed sweep payload: no {key!r} in {context}"
        ) from None


def _first_missing(present, total, limit=8):
    """First ``limit`` integers in ``[0, total)`` absent from
    ``present`` — by gap-scanning the (small) present set, never by
    materialising ``range(total)``: ``total`` comes from an
    untrusted payload, and a corrupt trillion-value total must still
    produce a prompt diagnostic rather than an out-of-memory hang.
    """
    missing = []
    expect = 0
    for value in sorted(present):
        if not 0 <= value < total:
            continue
        while expect < value and len(missing) < limit:
            missing.append(expect)
            expect += 1
        if len(missing) >= limit:
            return missing
        expect = value + 1
    while expect < total and len(missing) < limit:
        missing.append(expect)
        expect += 1
    return missing


def _payload_labels(payloads, sources):
    """Human-readable origin of each payload, for diagnostics.

    ``sources`` (file paths, server URLs) is optional: a bad merge
    must name the offending *shard file* when there is one, because
    "position 17 is duplicated" is useless across forty files while
    "… in shard-3.json" is actionable.
    """
    if sources is None:
        return [f"payload {i + 1}" for i in range(len(payloads))]
    sources = [str(source) for source in sources]
    if len(sources) != len(payloads):
        raise ReproError(
            f"{len(sources)} source labels for {len(payloads)} "
            f"payloads")
    return [f"payload {i + 1} ({source})"
            for i, source in enumerate(sources)]


def payload_shard_index(payload):
    """The shard index one payload declares, or ``None`` if unsharded.

    Tolerant of ``None``/malformed payloads (returns ``None``): the
    fault-tolerant dispatcher calls this on whatever a possibly-dead
    server managed to hand over before it went away.
    """
    if not isinstance(payload, dict):
        return None
    shard = payload.get("shard")
    if not isinstance(shard, dict):
        return None
    index = shard.get("index")
    if isinstance(index, int) and not isinstance(index, bool):
        return index
    return None


def missing_shard_indices(payloads, total):
    """Shard indices of ``total`` not covered by ``payloads``.

    The dispatch-side half of the merge-completeness contract: given
    the payloads collected so far (``None`` and malformed entries
    count as absent), return the sorted shard indices that still need
    computing — what a fault-tolerant dispatcher resubmits to the
    surviving servers.  An *unsharded* payload covers the whole
    sweep, so its presence means nothing is missing.
    """
    present = set()
    for payload in payloads:
        index = payload_shard_index(payload)
        if index is not None:
            present.add(index)
        elif isinstance(payload, dict) and payload.get("shard") is None \
                and payload.get("points") is not None:
            return []
    return [index for index in range(total) if index not in present]


def merge_sweep_payloads(payloads, sources=None):
    """Combine shard payloads back into one :class:`SweepResult`.

    Validates schema compatibility, consistent shard totals and
    ``spec_total``, no duplicated shard index, and — decisively —
    that the union of the shards covers every position of the full
    spec list exactly once.  Counters are combined run-style:
    ``cache_hits``/``computed`` sum, ``elapsed_seconds`` is the max
    (shards run concurrently).  ``sources`` optionally labels each
    payload (file path, server URL); every diagnostic then names the
    offending shard indices *and* where they came from.
    """
    if not payloads:
        raise ReproError("no sweep payloads to merge")
    labels = _payload_labels(payloads, sources)
    records = {}
    record_sources = {}
    spec_total = None
    spec_total_source = None
    shard_totals = {}
    seen_shards = {}
    fingerprints = {}
    cache_hits = computed = 0
    elapsed = 0.0
    for label, payload in zip(labels, payloads):
        if not isinstance(payload, dict):
            raise ReproError(
                f"malformed sweep payload: {label} is not a JSON "
                f"object (is this really a sweep/figure --json "
                f"file?)")
        schema = payload.get("schema")
        if schema != SWEEP_JSON_SCHEMA:
            raise ReproError(
                f"cannot merge {label} with schema {schema!r} "
                f"(expected {SWEEP_JSON_SCHEMA})")
        payload_total = _field(payload, "spec_total", label)
        if not isinstance(payload_total, int) \
                or isinstance(payload_total, bool):
            raise ReproError(
                f"malformed sweep payload: spec_total of {label} is "
                f"{payload_total!r}, expected an integer")
        if spec_total is None:
            spec_total, spec_total_source = payload_total, label
        elif payload_total != spec_total:
            raise ReproError(
                f"shards disagree on the sweep size: {spec_total} "
                f"({spec_total_source}) vs {payload_total} ({label})")
        fingerprint = _field(payload, "fingerprint", label)
        if not isinstance(fingerprint, str):
            raise ReproError(
                f"malformed sweep payload: fingerprint of {label} "
                f"is {fingerprint!r}, expected a string")
        fingerprints.setdefault(fingerprint, label)
        if len(fingerprints) > 1:
            listing = ", ".join(
                f"{value[:12]}… from {origin}"
                for value, origin in fingerprints.items())
            raise ReproError(
                f"shards come from different sweeps (fingerprints "
                f"disagree: {listing}) — same axes, seed and package "
                f"version are required to merge")
        shard = payload.get("shard")
        if shard is not None:
            index = _field(shard, "index", f"shard of {label}")
            total = _field(shard, "total", f"shard of {label}")
            if not all(isinstance(v, int) and not isinstance(v, bool)
                       for v in (index, total)):
                raise ReproError(
                    f"malformed sweep payload: shard index/total of "
                    f"{label} must be integers")
            shard_totals.setdefault(total, label)
            if index in seen_shards:
                raise ReproError(
                    f"shard {index} appears more than once "
                    f"({seen_shards[index]} and {label})")
            seen_shards[index] = label
        summary = _field(payload, "summary", label)
        hits = _field(summary, "cache_hits", f"summary of {label}")
        ran = _field(summary, "computed", f"summary of {label}")
        took = _field(summary, "elapsed_seconds",
                      f"summary of {label}")
        if not all(isinstance(v, (int, float))
                   and not isinstance(v, bool)
                   for v in (hits, ran, took)):
            raise ReproError(
                f"malformed sweep payload: summary counters of "
                f"{label} must be numbers")
        cache_hits += hits
        computed += ran
        elapsed = max(elapsed, took)
        for record in _field(payload, "points", label):
            pos = _field(record, "pos", f"point record of {label}")
            if not isinstance(pos, int) or isinstance(pos, bool) \
                    or not 0 <= pos < spec_total:
                raise ReproError(
                    f"point position {pos} of {label} outside sweep "
                    f"of {spec_total}")
            if pos in records:
                raise ReproError(
                    f"position {pos} appears in more than one shard "
                    f"({record_sources[pos]} and {label})")
            records[pos] = record
            record_sources[pos] = label
    if len(shard_totals) > 1:
        listing = ", ".join(f"{total} ({origin})"
                            for total, origin
                            in sorted(shard_totals.items()))
        raise ReproError(
            f"shards disagree on the shard count: {listing}")
    if len(records) != spec_total:
        missing = _first_missing(records, spec_total)
        detail = ""
        if len(shard_totals) == 1:
            declared_total = next(iter(shard_totals))
            absent = _first_missing(seen_shards, declared_total)
            if absent:
                have = ", ".join(
                    f"{index} from {seen_shards[index]}"
                    for index in sorted(seen_shards))
                detail = (f"; missing shard indices {absent} of "
                          f"{declared_total} (have {have})")
        raise ReproError(
            f"merged shards cover {len(records)}/{spec_total} points"
            f"{detail}; first missing positions: {missing}")
    specs = []
    points = []
    for pos in range(spec_total):
        record = records[pos]
        context = f"point record of {record_sources[pos]}"
        try:
            specs.append(spec_from_json(
                _field(record, "spec", context)))
            points.append(point_from_json(
                _field(record, "point", context)))
        except (KeyError, TypeError) as error:
            raise ReproError(
                f"malformed sweep payload at position {pos} "
                f"({record_sources[pos]}): {error}") from None
    declared = next(iter(fingerprints))
    if sweep_fingerprint(specs) != declared:
        raise ReproError(
            "merged specs do not match the sweep the shards declare "
            "(corrupted payload, or a different package version)")
    return SweepResult(specs=specs, points=points, cache_hits=cache_hits,
                       computed=computed, elapsed_seconds=elapsed)


def load_sweep_payload(path):
    """Read one sweep JSON file (as written by ``repro sweep --json``)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        raise ReproError(f"cannot read sweep payload {path}: "
                         f"{error}") from None


def merge_sweep_files(paths):
    """Merge shard JSON files into one :class:`SweepResult`.

    File paths become the payload source labels, so every merge
    diagnostic — duplicate shard, foreign fingerprint, bad record —
    names the offending file, not just an index into the argument
    list.
    """
    return merge_sweep_payloads(
        [load_sweep_payload(path) for path in paths],
        sources=[str(path) for path in paths])
