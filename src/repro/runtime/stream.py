"""Streaming result collection: points as they finish, not at the end.

:func:`stream_specs` is the incremental counterpart of
:func:`repro.runtime.pool.run_specs`: it yields ``(spec, point)``
pairs *as workers finish them*, so a consumer — a progress bar, an
incrementally rendered figure, a shard writer — can act on each
result while the slowest point is still mapping.  The batch API is a
thin wrapper over this generator, which is what makes
streaming-vs-batch equivalence hold by construction rather than by
luck.

Ordering contract:

- one pair is yielded per *unique resolved* spec (duplicates in the
  input are computed once, exactly like the batch path; callers that
  need per-position fan-out keep their own ``spec -> indices`` map);
- cache hits are yielded first, in input order — they are available
  immediately and a consumer should not wait behind a cold point for
  them;
- computed points follow in completion order, which is
  non-deterministic under ``workers > 1``.  Consumers that need spec
  order collect into a dict and re-walk the input (see
  ``pool.run_specs``).

Every yielded result is also reported to the optional ``progress``
callback as a :class:`StreamUpdate` carrying running counts, so
callers that only want a heartbeat never have to do bookkeeping.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.obs import metrics, trace
from repro.runtime.sweep import DETERMINISTIC_ERRORS, ExperimentPoint


def point_status(point):
    """One-phrase outcome of a landed point.

    The single definition of the ``N cycles, X uJ`` / first-error-
    line rendering, shared by local progress (:class:`StreamUpdate`)
    and the serve client's remote narration — the two can not drift.
    """
    if point.mapped:
        status = f"{point.cycles} cycles"
        if point.energy_uj is not None:
            status += f", {point.energy_uj:.4f} uJ"
        return status
    return (point.error or "error").splitlines()[0]


@dataclasses.dataclass(frozen=True)
class StreamUpdate:
    """One progress tick: the point that just landed plus counters."""

    spec: object
    point: object
    done: int
    total: int
    from_cache: bool
    elapsed_seconds: float

    def describe(self):
        """``[done/total] kernel@config/variant status`` one-liner."""
        source = "cache" if self.from_cache else "computed"
        return (f"[{self.done}/{self.total}] {self.spec.describe()}: "
                f"{point_status(self.point)} "
                f"({source}, {self.elapsed_seconds:.1f}s)")


def stream_specs(specs, workers=1, cache=None, progress=None,
                 mp_context=None):
    """Yield ``(spec, point)`` per unique resolved spec as results land.

    ``cache`` is a :class:`~repro.runtime.cache.ResultCache` or None;
    hits stream out first and deterministic outcomes are persisted as
    they complete.  ``progress`` is called with a
    :class:`StreamUpdate` just before each pair is yielded.
    ``workers=1`` computes inline (no executor, no pickling) —
    identical results, serial completion order.  ``mp_context`` is
    an optional :mod:`multiprocessing` context for the executor:
    multithreaded callers (the HTTP service) must pass a non-fork
    context, because forking a process with live threads can leave a
    worker child holding an inherited lock forever.
    """
    from repro.runtime import pool

    started = time.perf_counter()
    unique = []
    seen = set()
    for spec in specs:
        spec = spec.resolve()
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)

    total = len(unique)
    done = 0

    def ticked(spec, point, from_cache):
        nonlocal done
        done += 1
        metrics.POINTS.inc(
            source="cache" if from_cache else "computed")
        if progress is not None:
            progress(StreamUpdate(
                spec=spec, point=point, done=done, total=total,
                from_cache=from_cache,
                elapsed_seconds=time.perf_counter() - started))
        return spec, point

    def finished(spec, point):
        if cache is not None and point.error in DETERMINISTIC_ERRORS:
            cache.store_point(spec, point)
        return ticked(spec, point, False)

    # When a trace is active (locally enabled, or adopted from a
    # remote submitter), the whole generator runs inside one "sweep"
    # span: inline computes parent to it through the context
    # variable, and worker submissions carry its context explicitly —
    # worker processes start with fresh contexts, so nothing
    # propagates by accident.
    traced = trace.tracing_active()
    sweep_span = trace.span("sweep", points=total) if traced else None
    carrier = None

    def worker_point(future_result):
        """Unwrap a worker result, folding returned spans in.

        Traced submissions return ``(point, spans)`` — the spans are
        ingested here (stitching the tree) and their stage timings
        fed to the local histograms, which the worker's own
        (about-to-die) registry never could.
        """
        if not traced:
            return future_result
        point, spans = future_result
        trace.ingest(spans, observe_stages=True)
        return point

    pending = []
    executor = None
    futures = {}
    delivered = set()
    try:
        if sweep_span is not None:
            sweep_span.__enter__()
            carrier = trace.current_carrier()
        # One pass over the specs: hits are yielded as they are read,
        # misses start computing immediately (the executor is created
        # lazily at the first miss), so on a mixed warm/cold sweep
        # the workers churn through cold points while the remaining
        # warm payloads are still being unpickled.
        for spec in unique:
            cached = (cache.get_point(spec) if cache is not None
                      else None)
            if cached is not None:
                if traced:
                    with trace.span("cache_hit",
                                    spec=spec.describe()):
                        pass
                yield ticked(spec, cached, True)
            elif workers > 1:
                if executor is None:
                    executor = ProcessPoolExecutor(
                        max_workers=workers, mp_context=mp_context)
                if traced:
                    futures[executor.submit(pool._compute_traced,
                                            spec, carrier)] = spec
                else:
                    futures[executor.submit(pool._compute_captured,
                                            spec)] = spec
            else:
                pending.append(spec)

        if workers <= 1:
            # Attribute lookup on the module keeps the serial path
            # monkeypatchable, exactly like the old batch engine.
            for spec in pending:
                yield finished(spec, pool._compute_captured(spec))
            return

        for future in as_completed(futures):
            spec = futures[future]
            try:
                point = worker_point(future.result())
            except Exception as error:  # a worker died outright
                point = ExperimentPoint(
                    spec.kernel_name, spec.config_name, spec.variant,
                    error=f"worker failure: {type(error).__name__}: "
                          f"{error}")
            delivered.add(spec)
            yield finished(spec, point)
    finally:
        if executor is not None:
            # A consumer that stops iterating early (closes the
            # generator) must not block behind every queued point:
            # cancel what hasn't started, wait only for in-flight
            # work — and persist what those in-flight workers
            # finished, so the minutes already paid for are not
            # thrown away.
            for future in futures:
                future.cancel()
            executor.shutdown(wait=True)
            if cache is not None:
                for future, spec in futures.items():
                    if spec in delivered or not future.done() \
                            or future.cancelled():
                        continue
                    try:
                        point = worker_point(future.result())
                    except Exception:
                        continue
                    if point.error in DETERMINISTIC_ERRORS:
                        cache.store_point(spec, point)
        if sweep_span is not None:
            sweep_span.__exit__(None, None, None)
