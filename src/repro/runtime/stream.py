"""Streaming result collection: points as they finish, not at the end.

:func:`stream_specs` is the incremental counterpart of
:func:`repro.runtime.pool.run_specs`: it yields ``(spec, point)``
pairs *as workers finish them*, so a consumer — a progress bar, an
incrementally rendered figure, a shard writer — can act on each
result while the slowest point is still mapping.  The batch API is a
thin wrapper over this generator, which is what makes
streaming-vs-batch equivalence hold by construction rather than by
luck.

Ordering contract:

- one pair is yielded per *unique resolved* spec (duplicates in the
  input are computed once, exactly like the batch path; callers that
  need per-position fan-out keep their own ``spec -> indices`` map);
- cache hits are yielded first, in input order — they are available
  immediately and a consumer should not wait behind a cold point for
  them;
- computed points follow in completion order, which is
  non-deterministic under ``workers > 1``.  Consumers that need spec
  order collect into a dict and re-walk the input (see
  ``pool.run_specs``).

Every yielded result is also reported to the optional ``progress``
callback as a :class:`StreamUpdate` carrying running counts, so
callers that only want a heartbeat never have to do bookkeeping.

Self-healing contract (the parallel path):

- a dead worker (segfault, OOM kill, ``os._exit``) breaks the
  process pool; the supervisor restarts it and resubmits every
  undelivered in-flight spec, charging each one crash strike — the
  killer cannot be identified, so every suspect pays one;
- a spec that keeps killing its pool is quarantined after
  ``max_point_attempts`` submissions as a ``worker-crash:`` error
  point instead of sinking the sweep;
- with a point deadline armed (``point_timeout`` /
  ``$REPRO_POINT_TIMEOUT``), a watchdog reaps the pool when a point
  overruns ``deadline + grace``, retries the overdue spec and, once
  its budget is spent, yields it as a ``timeout:`` error point;
  innocent co-flying specs are resubmitted without charge;
- if the pool itself cannot be rebuilt, the remaining specs land as
  ``pool-broken:`` error points.

None of the synthesized error classes (``worker-crash:``,
``timeout:``, ``pool-broken:``, ``worker failure:``) is ever
persisted to the cache — only :data:`DETERMINISTIC_ERRORS` are.
"""

from __future__ import annotations

import collections
import dataclasses
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)

from repro.errors import ReproError
from repro.obs import metrics, trace
from repro.runtime.sweep import DETERMINISTIC_ERRORS, ExperimentPoint

ENV_POINT_TIMEOUT = "REPRO_POINT_TIMEOUT"
ENV_POINT_ATTEMPTS = "REPRO_POINT_ATTEMPTS"

#: Submissions a spec gets before the supervisor gives up on it —
#: the first attempt plus two retries.
DEFAULT_MAX_POINT_ATTEMPTS = 3

#: Slack added to every point deadline: a freshly (re)started pool
#: spawns its workers lazily, so submit-to-start latency must not be
#: billed to the point itself.
TIMEOUT_GRACE_SECONDS = 5.0

#: How long the supervisor waits for a broken pool's remaining
#: futures to settle before cancelling and recharging them anyway.
_SETTLE_SECONDS = 5.0


def point_status(point):
    """One-phrase outcome of a landed point.

    The single definition of the ``N cycles, X uJ`` / first-error-
    line rendering, shared by local progress (:class:`StreamUpdate`)
    and the serve client's remote narration — the two can not drift.
    """
    if point.mapped:
        status = f"{point.cycles} cycles"
        if point.energy_uj is not None:
            status += f", {point.energy_uj:.4f} uJ"
        return status
    return (point.error or "error").splitlines()[0]


@dataclasses.dataclass(frozen=True)
class StreamUpdate:
    """One progress tick: the point that just landed plus counters."""

    spec: object
    point: object
    done: int
    total: int
    from_cache: bool
    elapsed_seconds: float

    def describe(self):
        """``[done/total] kernel@config/variant status`` one-liner."""
        source = "cache" if self.from_cache else "computed"
        return (f"[{self.done}/{self.total}] {self.spec.describe()}: "
                f"{point_status(self.point)} "
                f"({source}, {self.elapsed_seconds:.1f}s)")


def resolve_point_timeout(value=None):
    """The effective per-point deadline in seconds, or None.

    Explicit ``value`` wins; otherwise ``$REPRO_POINT_TIMEOUT`` is
    consulted so deadlines can be armed fleet-wide without touching
    every call site.  Zero or negative disables.
    """
    if value is None:
        raw = os.environ.get(ENV_POINT_TIMEOUT)
        if not raw:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise ReproError(
                f"bad {ENV_POINT_TIMEOUT}={raw!r}: expected seconds "
                f"as a number") from None
    return value if value > 0 else None


def resolve_point_attempts(value=None):
    """The per-spec submission budget (``$REPRO_POINT_ATTEMPTS``)."""
    if value is None:
        raw = os.environ.get(ENV_POINT_ATTEMPTS)
        if not raw:
            return DEFAULT_MAX_POINT_ATTEMPTS
        try:
            value = int(raw)
        except ValueError:
            raise ReproError(
                f"bad {ENV_POINT_ATTEMPTS}={raw!r}: expected an "
                f"integer") from None
    return max(1, value)


def _synthetic(spec, error):
    return ExperimentPoint(
        spec.kernel_name, spec.config_name, spec.variant, error=error)


class _PoolSupervisor:
    """Owns the executor; contains crashes; enforces deadlines.

    Keeps at most ``workers`` specs in flight — a deliberate window:
    every submitted task is (about to be) running on a real worker,
    so a wall-clock deadline measured from submission is honest, and
    a pool death implicates a small, known set of suspects.

    :meth:`drain` yields ``(spec, outcome)`` events where outcome is
    ``("ok", worker_payload)`` for a result that must still be
    unwrapped by the caller, or ``("synthetic", point)`` for a point
    the supervisor manufactured (quarantine, timeout, pool-broken,
    captured worker failure).
    """

    def __init__(self, workers, mp_context=None, carrier=None,
                 point_timeout=None, max_attempts=None):
        self.workers = max(1, workers)
        self.mp_context = mp_context
        self.carrier = carrier
        self.point_timeout = point_timeout
        self.max_attempts = (max_attempts if max_attempts is not None
                             else DEFAULT_MAX_POINT_ATTEMPTS)
        self.queue = collections.deque()
        self.inflight = {}  # future -> (spec, deadline or None)
        self.attempts = {}  # spec -> submissions so far
        self.executor = None
        self.restarts = 0
        self.broken_reason = None

    # -- submission ----------------------------------------------------
    def offer(self, spec):
        """Enqueue a cold spec; starts computing as soon as possible."""
        self.queue.append(spec)
        self._fill()

    def _fill(self):
        while self.queue and len(self.inflight) < self.workers \
                and self.broken_reason is None:
            if self.executor is None:
                try:
                    self.executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        mp_context=self.mp_context)
                except Exception as error:  # noqa: BLE001 — terminal
                    self.broken_reason = (f"{type(error).__name__}: "
                                          f"{error}")
                    return
            spec = self.queue.popleft()
            attempt = self.attempts.get(spec, 0)
            self.attempts[spec] = attempt + 1
            from repro.runtime import pool
            try:
                future = self.executor.submit(
                    pool._compute_job, spec, self.carrier, attempt)
            except (BrokenExecutor, RuntimeError):
                # The pool died between the last drain and now; put
                # the spec back (uncharged — submission never
                # happened) and let drain's recovery sort it out.
                self.attempts[spec] = attempt
                self.queue.appendleft(spec)
                return
            deadline = None
            if self.point_timeout is not None:
                deadline = (time.monotonic() + self.point_timeout
                            + TIMEOUT_GRACE_SECONDS)
            self.inflight[future] = (spec, deadline)

    # -- the event loop ------------------------------------------------
    def drain(self):
        while self.queue or self.inflight:
            if self.broken_reason is not None:
                yield from self._fail_remaining()
                return
            self._fill()
            if not self.inflight:
                if self.queue:
                    # _fill could not submit: the executor broke on
                    # submit. Recover (restart) and try again.
                    yield from self._recover("crash", charged=set())
                    continue
                return
            done, _ = wait(set(self.inflight),
                           timeout=self._wait_timeout(),
                           return_when=FIRST_COMPLETED)
            suspects = set()
            for future in done:
                spec, _deadline = self.inflight.pop(future)
                if future.cancelled():
                    self.queue.append(spec)
                    continue
                error = future.exception()
                if error is None:
                    yield spec, ("ok", future.result())
                elif isinstance(error, BrokenExecutor):
                    suspects.add(spec)
                else:
                    # The task itself failed to round-trip (e.g. an
                    # unpicklable result) — a per-point defect, not a
                    # pool death: no retry, keep the classic stamp.
                    yield spec, ("synthetic", _synthetic(
                        spec, f"worker failure: "
                              f"{type(error).__name__}: {error}"))
            if suspects:
                yield from self._recover("crash", charged=suspects)
            elif self.point_timeout is not None:
                overdue = self._overdue()
                if overdue:
                    self._kill_workers()
                    yield from self._recover("timeout", charged=overdue)

    def _wait_timeout(self):
        deadlines = [deadline for _, deadline in self.inflight.values()
                     if deadline is not None]
        if not deadlines:
            return None
        return max(0.05, min(deadlines) - time.monotonic())

    def _overdue(self):
        now = time.monotonic()
        return {spec for spec, deadline in self.inflight.values()
                if deadline is not None and now >= deadline}

    # -- recovery ------------------------------------------------------
    def _kill_workers(self):
        """Reap every worker process of the current executor.

        ``ProcessPoolExecutor`` cannot cancel a *running* task, so a
        wedged point is unstuck the only way it can be: by killing
        the worker under it.  The pool is about to be restarted
        anyway; co-running points are resubmitted free of charge.
        (``_processes`` is private but load-bearing across CPython
        versions; guarded so its absence degrades to a slow
        shutdown, not a crash.)
        """
        processes = getattr(self.executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # noqa: BLE001 — already-dead races
                pass

    def _recover(self, cause, charged):
        """Restart the pool; charge ``charged``, requeue the rest.

        Yields synthesized quarantine points for specs whose
        submission budget is exhausted.  Completed-but-undelivered
        futures are salvaged and yielded as normal results — work a
        healthy worker finished before a sibling died is not redone.
        """
        remaining = dict(self.inflight)
        self.inflight.clear()
        if remaining:
            wait(set(remaining), timeout=_SETTLE_SECONDS)
        charged = set(charged)
        for future, (spec, _deadline) in remaining.items():
            settled = future.done() and not future.cancelled()
            if settled and future.exception() is None:
                yield spec, ("ok", future.result())
                continue
            future.cancel()
            if spec in charged:
                continue
            if cause == "crash" and settled \
                    and isinstance(future.exception(), BrokenExecutor):
                charged.add(spec)
            else:
                # Collateral: reaped alongside the guilty party (or
                # never started). Requeued without touching its
                # budget — but the resubmission itself is counted.
                self.attempts[spec] = max(
                    0, self.attempts.get(spec, 1) - 1)
                self.queue.append(spec)
                metrics.POINT_RETRIES.inc(reason="collateral")
        for spec in charged:
            attempts = self.attempts.get(spec, 1)
            if attempts >= self.max_attempts:
                metrics.POINT_QUARANTINES.inc(reason=cause)
                yield spec, ("synthetic", _synthetic(
                    spec, self._quarantine_error(cause, attempts)))
            else:
                metrics.POINT_RETRIES.inc(reason=cause)
                self.queue.append(spec)
        self._stop_executor()
        self.restarts += 1
        metrics.POOL_RESTARTS.inc(cause=cause)

    def _quarantine_error(self, cause, attempts):
        if cause == "timeout":
            return (f"timeout: point exceeded the "
                    f"{self.point_timeout:g}s deadline on "
                    f"{attempts} attempt(s)")
        return (f"worker-crash: worker process died computing this "
                f"point on {attempts} attempt(s); quarantined")

    def _fail_remaining(self):
        """Terminal: the pool cannot be rebuilt — stamp what's left."""
        error = (f"pool-broken: worker pool could not be restarted "
                 f"({self.broken_reason})")
        leftovers = [spec for spec, _ in self.inflight.values()]
        self.inflight.clear()
        leftovers.extend(self.queue)
        self.queue.clear()
        for spec in leftovers:
            metrics.POINT_QUARANTINES.inc(reason="pool-broken")
            yield spec, ("synthetic", _synthetic(spec, error))

    def _stop_executor(self):
        if self.executor is None:
            return
        executor, self.executor = self.executor, None
        try:
            executor.shutdown(wait=True, cancel_futures=True)
        except Exception:  # noqa: BLE001 — a broken pool may throw
            pass

    # -- teardown ------------------------------------------------------
    def close(self):
        """Cancel what hasn't started; salvage what finished.

        Returns ``(spec, payload)`` pairs for in-flight work that
        completed but was never delivered (the consumer closed the
        generator early) so the caller can persist it.
        """
        for future in self.inflight:
            future.cancel()
        if self.executor is not None:
            try:
                self.executor.shutdown(wait=True)
            except Exception:  # noqa: BLE001
                pass
            self.executor = None
        salvaged = []
        for future, (spec, _deadline) in self.inflight.items():
            if not future.done() or future.cancelled():
                continue
            try:
                if future.exception() is None:
                    salvaged.append((spec, future.result()))
            except Exception:  # noqa: BLE001 — broken futures
                continue
        self.inflight.clear()
        return salvaged


def stream_specs(specs, workers=1, cache=None, progress=None,
                 mp_context=None, point_timeout=None,
                 max_point_attempts=None):
    """Yield ``(spec, point)`` per unique resolved spec as results land.

    ``cache`` is a :class:`~repro.runtime.cache.ResultCache` or None;
    hits stream out first and deterministic outcomes are persisted as
    they complete.  ``progress`` is called with a
    :class:`StreamUpdate` just before each pair is yielded.
    ``workers=1`` computes inline (no executor, no pickling) —
    identical results, serial completion order.  ``mp_context`` is
    an optional :mod:`multiprocessing` context for the executor:
    multithreaded callers (the HTTP service) must pass a non-fork
    context, because forking a process with live threads can leave a
    worker child holding an inherited lock forever.

    ``point_timeout`` (None: ``$REPRO_POINT_TIMEOUT``) arms a
    per-point wall-clock deadline; an overrunning point's worker is
    reaped and the point retried, then yielded as a ``timeout:``
    error point once ``max_point_attempts`` (None:
    ``$REPRO_POINT_ATTEMPTS``, default 3) submissions are spent.
    A deadline needs a reappable worker, so it forces the executor
    path even at ``workers=1``.
    """
    from repro.runtime import pool

    point_timeout = resolve_point_timeout(point_timeout)
    max_point_attempts = resolve_point_attempts(max_point_attempts)

    started = time.perf_counter()
    unique = []
    seen = set()
    for spec in specs:
        spec = spec.resolve()
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)

    total = len(unique)
    done = 0

    def ticked(spec, point, from_cache):
        nonlocal done
        done += 1
        metrics.POINTS.inc(
            source="cache" if from_cache else "computed")
        if progress is not None:
            progress(StreamUpdate(
                spec=spec, point=point, done=done, total=total,
                from_cache=from_cache,
                elapsed_seconds=time.perf_counter() - started))
        return spec, point

    def finished(spec, point):
        if cache is not None and point.error in DETERMINISTIC_ERRORS:
            cache.store_point(spec, point)
        return ticked(spec, point, False)

    # When a trace is active (locally enabled, or adopted from a
    # remote submitter), the whole generator runs inside one "sweep"
    # span: inline computes parent to it through the context
    # variable, and worker submissions carry its context explicitly —
    # worker processes start with fresh contexts, so nothing
    # propagates by accident.
    traced = trace.tracing_active()
    sweep_span = trace.span("sweep", points=total) if traced else None
    carrier = None

    def worker_point(payload):
        """Unwrap a worker result, folding returned spans in.

        Traced submissions return ``(point, spans)`` — the spans are
        ingested here (stitching the tree) and their stage timings
        fed to the local histograms, which the worker's own
        (about-to-die) registry never could.
        """
        if not traced:
            return payload
        point, spans = payload
        trace.ingest(spans, observe_stages=True)
        return point

    pooled = workers > 1 or point_timeout is not None
    pending = []
    supervisor = None
    try:
        if sweep_span is not None:
            sweep_span.__enter__()
            carrier = trace.current_carrier()
        # One pass over the specs: hits are yielded as they are read,
        # misses start computing immediately (the supervisor and its
        # executor are created lazily at the first miss), so on a
        # mixed warm/cold sweep the workers churn through cold points
        # while the remaining warm payloads are still being
        # unpickled.
        for spec in unique:
            cached = (cache.get_point(spec) if cache is not None
                      else None)
            if cached is not None:
                if traced:
                    with trace.span("cache_hit",
                                    spec=spec.describe()):
                        pass
                yield ticked(spec, cached, True)
            elif pooled:
                if supervisor is None:
                    supervisor = _PoolSupervisor(
                        workers=workers, mp_context=mp_context,
                        carrier=carrier,
                        point_timeout=point_timeout,
                        max_attempts=max_point_attempts)
                supervisor.offer(spec)
            else:
                pending.append(spec)

        if not pooled:
            # Attribute lookup on the module keeps the serial path
            # monkeypatchable, exactly like the old batch engine.
            for spec in pending:
                yield finished(spec, pool._compute_captured(spec))
            return

        if supervisor is not None:
            for spec, (kind, value) in supervisor.drain():
                point = (worker_point(value) if kind == "ok"
                         else value)
                yield finished(spec, point)
    finally:
        if supervisor is not None:
            # A consumer that stops iterating early (closes the
            # generator) must not block behind every queued point:
            # cancel what hasn't started, wait only for in-flight
            # work — and persist what those in-flight workers
            # finished, so the minutes already paid for are not
            # thrown away.
            salvaged = supervisor.close()
            if cache is not None:
                for spec, payload in salvaged:
                    try:
                        point = worker_point(payload)
                    except Exception:  # noqa: BLE001
                        continue
                    if point.error in DETERMINISTIC_ERRORS:
                        cache.store_point(spec, point)
        if sweep_span is not None:
            sweep_span.__exit__(None, None, None)
