"""Named execution backends behind the ``PointSpec`` contract.

Every figure, sweep, exploration and served job funnels through one
function signature — ``PointSpec -> ExperimentPoint`` — and this
module makes that signature pluggable: a *backend* is a named
implementation of it, registered in :data:`BACKENDS`, selected per
point by the spec's ``backend`` field (a sweep axis like any other —
it perturbs the cache key, the shard payload and the sweep
fingerprint, so points computed by different backends can never be
confused).

Two backends ship:

- ``analytic`` (the default) — the original pipeline: map, assemble,
  then the lockstep :class:`~repro.sim.cgra.CGRASimulator`, whose
  cycle count restates the mapper's scheduled block lengths.
- ``cycle`` — the same mapping and assembly, executed by the
  independent event-driven :class:`~repro.sim.executor.CycleExecutor`,
  which *measures* block durations from the instruction stream
  instead of reading them off the schedule.

Both share the deliberately common front half (mapping is the
system under test, not the thing being diversified) and the same
soundness gate: outputs are verified bit-exactly against the kernel's
reference before any latency/energy number is reported.  What differs
is everything downstream of assembly — which is exactly the part the
paper's numbers rest on, and exactly what ``repro diff``
(:mod:`repro.runtime.diff`) compares across backends.

Registering a future backend (a SAT-oracle replay, a streaming
model) is one decorated function::

    @register_backend("sat", description="exact replay oracle")
    def _sat_point(spec):
        ...

and it immediately becomes a sweep axis value, a ``repro diff``
operand, a serve-tier submission field and a DSE dimension.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time

import numpy as np

from repro.codegen.assembler import assemble
from repro.errors import ReproError, UnmappableError
from repro.kernels import get_kernel
from repro.obs import stage
from repro.power.energy import EnergyModel

#: The backend a spec gets when none is named.
DEFAULT_BACKEND = "analytic"

#: name -> :class:`Backend`, in registration order.
BACKENDS = {}


@dataclasses.dataclass(frozen=True)
class Backend:
    """One named ``PointSpec -> ExperimentPoint`` implementation."""

    name: str
    runner: object
    description: str

    def __call__(self, spec):
        return self.runner(spec)


def register_backend(name, description=""):
    """Decorator: publish a ``PointSpec -> ExperimentPoint`` callable."""
    def decorate(func):
        if name in BACKENDS:
            raise ReproError(f"backend {name!r} already registered")
        BACKENDS[name] = Backend(name=name, runner=func,
                                 description=description)
        return func
    return decorate


def backend_names():
    """Registered backend names, registration order."""
    return tuple(BACKENDS)


def get_backend(name):
    """Look a backend up, diagnosing unknown names with the valid set."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ReproError(
            f"unknown backend {name!r}; choose from "
            f"{', '.join(BACKENDS)}") from None


def validated_backend(name):
    """``None`` -> the default; otherwise a known backend's name."""
    if name is None:
        return DEFAULT_BACKEND
    return get_backend(name).name


# ----------------------------------------------------------------------
# The shared front half: spec -> assembled program (or early point)
# ----------------------------------------------------------------------
def _prepare(spec):
    """Map and assemble one spec.

    Returns ``(kernel, cgra, mapping, program, compile_seconds)`` on
    success, or a finished error-carrying ``ExperimentPoint`` when
    the outcome is already decided (unmappable, context overflow) —
    deliberately identical across backends: they diversify execution,
    not the mapper under test.
    """
    from repro.runtime.sweep import ExperimentPoint, map_kernel_for

    with stage("dfg", kernel=spec.kernel_name):
        kernel = get_kernel(spec.kernel_name)
        cgra = spec.build_cgra()
    options = spec.options
    started = time.perf_counter()
    try:
        with stage("map", kernel=spec.kernel_name,
                   config=spec.config_name, variant=spec.variant):
            mapping = map_kernel_for(kernel, cgra, options)
    except UnmappableError:
        return ExperimentPoint(spec.kernel_name, spec.config_name,
                               spec.variant,
                               compile_seconds=time.perf_counter()
                               - started,
                               error="unmappable")
    seconds = time.perf_counter() - started
    with stage("assemble", kernel=spec.kernel_name):
        program = assemble(mapping, kernel.cdfg,
                           enforce_fit=options.ecmap)
    if not mapping.fits:
        # A context-unaware mapping that physically overflows this
        # configuration cannot run — the paper's zero bars.
        return ExperimentPoint(spec.kernel_name, spec.config_name,
                               spec.variant, compile_seconds=seconds,
                               error="context overflow")
    return kernel, cgra, mapping, program, seconds


def output_digest(kernel, run):
    """Content hash of a run's output regions, in declaration order.

    The cross-backend comparison token: two backends that executed
    the same spec must produce identical digests, and the digest
    survives JSON serialisation where the raw memory image does not.
    """
    digest = hashlib.sha256()
    for region in kernel.output_regions:
        digest.update(region.encode("utf-8"))
        digest.update(
            ",".join(str(v)
                     for v in run.region(kernel.cdfg, region))
            .encode("ascii"))
    return digest.hexdigest()


def _finish(spec, kernel, cgra, mapping, seconds, run):
    """Verify a run against the reference and price it."""
    from repro.runtime.sweep import ExperimentPoint

    with stage("verify", kernel=spec.kernel_name,
               backend=spec.backend):
        inputs = kernel.make_inputs(np.random.default_rng(spec.seed))
        expected = kernel.reference(inputs)
        for region in kernel.output_regions:
            got = run.region(kernel.cdfg, region)
            if got != expected[region]:
                raise ReproError(
                    f"{spec.describe()}: region {region!r} mismatch "
                    f"— {spec.backend} execution is unsound")
    with stage("price", kernel=spec.kernel_name):
        energy = EnergyModel().cgra_energy(run.activity, cgra)
    return ExperimentPoint(spec.kernel_name, spec.config_name,
                           spec.variant, mapping=mapping,
                           compile_seconds=seconds, cycles=run.cycles,
                           activity=run.activity, energy=energy,
                           output_digest=output_digest(kernel, run))


def _memory_for(kernel, spec):
    return kernel.make_memory(
        kernel.make_inputs(np.random.default_rng(spec.seed)))


# ----------------------------------------------------------------------
# The two seed backends
# ----------------------------------------------------------------------
@register_backend(
    "analytic",
    description="lockstep simulator; cycles restate the mapper's "
                "scheduled block lengths")
def _analytic_point(spec):
    from repro.sim.cgra import CGRASimulator

    prepared = _prepare(spec)
    if not isinstance(prepared, tuple):
        return prepared
    kernel, cgra, mapping, program, seconds = prepared
    with stage("execute", kernel=spec.kernel_name,
               backend="analytic"):
        run = CGRASimulator(program, _memory_for(kernel, spec)).run()
    return _finish(spec, kernel, cgra, mapping, seconds, run)


@register_backend(
    "cycle",
    description="event-driven cycle-level executor; durations "
                "measured from the instruction stream")
def _cycle_point(spec):
    from repro.sim.executor import CycleExecutor

    prepared = _prepare(spec)
    if not isinstance(prepared, tuple):
        return prepared
    kernel, cgra, mapping, program, seconds = prepared
    with stage("execute", kernel=spec.kernel_name, backend="cycle"):
        run = CycleExecutor(program, _memory_for(kernel, spec)).run()
    return _finish(spec, kernel, cgra, mapping, seconds, run)
