"""Parallel experiment runtime with a persistent result cache.

The experiment drivers of :mod:`repro.eval` all reduce to the same
unit of work — one *(kernel, configuration, flow variant)* point run
through map → assemble → simulate → verify → price.  This package
turns that unit into a first-class, batchable job:

- :mod:`repro.runtime.sweep` — :class:`PointSpec` describes one point
  (including custom :class:`~repro.mapping.flow.FlowOptions` and
  custom context-memory depths for design-space exploration);
  :func:`compute_point` executes it; :func:`sweep_specs` expands
  "all kernels × all configs × all variants" into one batch.
- :mod:`repro.runtime.pool` — :func:`run_specs` fans a batch out over
  ``concurrent.futures.ProcessPoolExecutor`` workers with
  deterministic result ordering and worker-side exception capture
  (an :class:`~repro.errors.UnmappableError` in one point never kills
  the sweep); ``workers=1`` is a plain serial loop.
- :mod:`repro.runtime.cache` — :class:`ResultCache` persists computed
  points under ``~/.cache/repro/`` (override with ``REPRO_CACHE_DIR``)
  keyed by a content hash of everything that determines the result,
  with atomic writes so an interrupted run never corrupts the cache.

Quickstart::

    from repro.runtime import ResultCache, run_sweep, sweep_specs

    result = run_sweep(sweep_specs(), workers=4, cache=ResultCache())
    print(result.summary())
"""

from repro.runtime.cache import ResultCache, default_cache_dir, point_key
from repro.runtime.pool import run_specs, run_sweep
from repro.runtime.sweep import (
    DEFAULT_SEED,
    ExperimentPoint,
    PointSpec,
    SweepResult,
    compute_point,
    sweep_specs,
)

__all__ = [
    "DEFAULT_SEED",
    "ExperimentPoint",
    "PointSpec",
    "ResultCache",
    "SweepResult",
    "compute_point",
    "default_cache_dir",
    "point_key",
    "run_specs",
    "run_sweep",
    "sweep_specs",
]
