"""Parallel experiment runtime with a persistent result cache.

The experiment drivers of :mod:`repro.eval` all reduce to the same
unit of work — one *(kernel, configuration, flow variant)* point run
through map → assemble → simulate → verify → price.  This package
turns that unit into a first-class, batchable job:

- :mod:`repro.runtime.sweep` — :class:`PointSpec` describes one point
  (including custom :class:`~repro.mapping.flow.FlowOptions` and
  custom context-memory depths for design-space exploration);
  :func:`compute_point` executes it; :func:`sweep_specs` expands
  "all kernels × all configs × all variants" into one batch.
- :mod:`repro.runtime.pool` — :func:`run_specs` fans a batch out over
  ``concurrent.futures.ProcessPoolExecutor`` workers with
  deterministic result ordering and worker-side exception capture
  (an :class:`~repro.errors.UnmappableError` in one point never kills
  the sweep); ``workers=1`` is a plain serial loop.
- :mod:`repro.runtime.cache` — :class:`ResultCache` persists computed
  points under ``~/.cache/repro/`` (override with ``REPRO_CACHE_DIR``)
  keyed by a content hash of everything that determines the result,
  with atomic writes so an interrupted run never corrupts the cache,
  plus management: size accounting, ``stats()`` and LRU-by-mtime
  eviction under a byte cap (``REPRO_CACHE_MAX_BYTES``).
- :mod:`repro.runtime.stream` — :func:`stream_specs` yields
  ``(spec, point)`` pairs *as workers finish* with
  :class:`StreamUpdate` progress callbacks, so figures and reports
  can render incrementally instead of blocking on the slowest point.
- :mod:`repro.runtime.shard` — :func:`shard_specs` deterministically
  partitions a spec list into disjoint, cost-balanced shards for
  multi-machine sweeps; JSON result payloads plus
  :func:`merge_sweep_payloads` reassemble N shard files into the one
  :class:`SweepResult` the unsharded run would have produced.

Quickstart::

    from repro.runtime import ResultCache, run_sweep, sweep_specs

    result = run_sweep(sweep_specs(), workers=4, cache=ResultCache())
    print(result.summary())

Streaming and sharding::

    from repro.runtime import shard_specs, stream_specs

    mine = shard_specs(sweep_specs(), index=0, total=4)
    for spec, point in stream_specs(mine, workers=4,
                                    cache=ResultCache()):
        print(spec.describe(), point)
"""

from repro.runtime.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    backend_names,
    get_backend,
    register_backend,
    validated_backend,
)
from repro.runtime.cache import (
    ResultCache,
    default_cache_dir,
    parse_bytes,
    point_key,
)
from repro.runtime.diff import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    DiffResult,
    PointDiff,
    run_diff,
    validated_diff_backends,
)
from repro.runtime.pool import run_specs, run_sweep
from repro.runtime.shard import (
    estimated_cost,
    load_sweep_payload,
    merge_sweep_files,
    merge_sweep_payloads,
    parse_shard,
    point_from_json,
    point_to_json,
    shard_indices,
    shard_specs,
    spec_from_json,
    spec_to_json,
    sweep_fingerprint,
    sweep_json_payload,
    sweep_result_from_payload,
)
from repro.runtime.stream import StreamUpdate, stream_specs
from repro.runtime.sweep import (
    DEFAULT_SEED,
    ExperimentPoint,
    PointSpec,
    SweepResult,
    compute_point,
    sweep_specs,
    validated_sweep_specs,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_ABS_TOL",
    "DEFAULT_BACKEND",
    "DEFAULT_REL_TOL",
    "DEFAULT_SEED",
    "DiffResult",
    "ExperimentPoint",
    "PointDiff",
    "PointSpec",
    "ResultCache",
    "StreamUpdate",
    "SweepResult",
    "backend_names",
    "compute_point",
    "default_cache_dir",
    "estimated_cost",
    "get_backend",
    "load_sweep_payload",
    "merge_sweep_files",
    "merge_sweep_payloads",
    "parse_bytes",
    "parse_shard",
    "point_from_json",
    "point_key",
    "point_to_json",
    "register_backend",
    "run_diff",
    "run_specs",
    "run_sweep",
    "shard_indices",
    "shard_specs",
    "spec_from_json",
    "spec_to_json",
    "stream_specs",
    "sweep_fingerprint",
    "sweep_json_payload",
    "sweep_result_from_payload",
    "sweep_specs",
    "validated_backend",
    "validated_diff_backends",
    "validated_sweep_specs",
]
