"""Experiment points as data: specs, execution, batched sweeps.

:class:`PointSpec` is the immutable, hashable, picklable description
of one experiment point.  Everything that can change the outcome is a
field of the spec — kernel, configuration, flow variant, the full
:class:`~repro.mapping.flow.FlowOptions`, the input seed, optional
custom context-memory depths — so a spec can serve directly as a
memoisation key, a process-pool work item and (hashed together with
the package version) a persistent cache key.

:func:`compute_point` is the single entry point of the pipeline
every figure shares::

    kernel --map--> MappingResult --assemble--> Program --execute-->
    cycles + activity --price--> energy

dispatched to the named execution backend of the spec's ``backend``
field (:mod:`repro.runtime.backends` — the lockstep ``analytic``
simulator by default, the event-driven ``cycle`` executor as the
independent cross-check), with the same soundness guarantee in every
backend: the CGRA's outputs are verified bit-exactly against the
kernel's reference before any latency/energy number is reported.
"""

from __future__ import annotations

import dataclasses

from repro.arch.configs import (
    COLS as DEFAULT_COLS,
    ROWS as DEFAULT_ROWS,
    default_lsu_tiles,
    get_config,
    make_cgra,
)
from repro.errors import ReproError
from repro.kernels import PAPER_KERNEL_ORDER
from repro.mapping.flow import VARIANTS, FlowOptions
from repro.runtime.backends import DEFAULT_BACKEND, get_backend

#: Default input seed for all experiment executions.
DEFAULT_SEED = 7

#: The configurations the latency figures sweep.
LATENCY_CONFIGS = ("HOM64", "HOM32", "HET1", "HET2")


class ExperimentPoint:
    """One (kernel, config, flow-variant) measurement.

    ``mapped`` is normally derived from the presence of the heavy
    ``mapping`` object; summary points rebuilt from a JSON shard file
    (:mod:`repro.runtime.shard`) carry the flag explicitly because
    the mapping itself does not survive serialisation.
    """

    def __init__(self, kernel_name, config_name, variant, mapping=None,
                 compile_seconds=None, cycles=None, activity=None,
                 energy=None, error=None, mapped=None,
                 output_digest=None):
        self.kernel_name = kernel_name
        self.config_name = config_name
        self.variant = variant
        self.mapping = mapping
        self.compile_seconds = compile_seconds
        self.cycles = cycles
        self.activity = activity
        self.energy = energy
        self.error = error
        self._mapped = mapped
        #: content hash of the executed output regions — the token
        #: ``repro diff`` compares across backends (None when the
        #: point never executed)
        self.output_digest = output_digest

    @property
    def mapped(self):
        if self._mapped is not None:
            return self._mapped
        return self.mapping is not None

    @property
    def energy_uj(self):
        return self.energy.total_uj if self.energy is not None else None

    def __repr__(self):
        status = f"{self.cycles} cycles" if self.mapped else "no mapping"
        return (f"ExperimentPoint({self.kernel_name}@{self.config_name}"
                f"/{self.variant}: {status})")


#: Outcomes that are deterministic properties of the spec.  Anything
#: else in ``ExperimentPoint.error`` is a captured crash and must not
#: be persisted (see :mod:`repro.runtime.pool`).
DETERMINISTIC_ERRORS = (None, "unmappable", "context overflow")


@dataclasses.dataclass(frozen=True)
class PointSpec:
    """Immutable description of one experiment point.

    ``options=None`` means "the named variant's preset"; call
    :meth:`resolve` to pin the concrete :class:`FlowOptions` so equal
    computations compare (and hash) equal.  ``cm_depths`` builds a
    custom homogeneous/heterogeneous array via
    :func:`~repro.arch.configs.make_cgra` instead of looking the
    configuration name up in Table I — the design-space-exploration
    path.  ``rows``/``cols`` scale the array shape along with it
    (``None`` means the paper's 4x4); load-store tiles follow the
    paper's convention — the top (up to) two rows — via
    :func:`~repro.arch.configs.default_lsu_tiles`.
    """

    kernel_name: str
    config_name: str
    variant: str
    options: FlowOptions = None
    seed: int = DEFAULT_SEED
    cm_depths: tuple = None
    rows: int = None
    cols: int = None
    backend: str = DEFAULT_BACKEND

    def resolve(self):
        """Canonical spec: concrete FlowOptions, upper-case config.

        Configuration lookup is case-insensitive, so ``hom64`` and
        ``HOM64`` describe the same computation — normalising here
        makes them share one memo entry and one cache key.  The
        backend name is validated here too, so an unknown backend
        fails with the valid set before any work starts.
        """
        get_backend(self.backend)
        resolved = self
        if self.config_name != self.config_name.upper():
            resolved = dataclasses.replace(
                resolved, config_name=self.config_name.upper())
        if resolved.options is None:
            resolved = dataclasses.replace(
                resolved, options=VARIANTS[resolved.variant]())
        if (resolved.cm_depths is not None
                and not isinstance(resolved.cm_depths, tuple)):
            # Lists are the natural call style (make_cgra takes lists)
            # but would make the frozen spec unhashable.
            resolved = dataclasses.replace(
                resolved, cm_depths=tuple(resolved.cm_depths))
        if resolved.cm_depths is not None:
            # Pin the array shape so "rows left at the default" and
            # "rows=4 written out" hash to the same computation.
            rows = (resolved.rows if resolved.rows is not None
                    else DEFAULT_ROWS)
            cols = (resolved.cols if resolved.cols is not None
                    else DEFAULT_COLS)
            if rows * cols != len(resolved.cm_depths):
                raise ReproError(
                    f"{self.describe()}: {rows}x{cols} array needs "
                    f"{rows * cols} CM depths, got "
                    f"{len(resolved.cm_depths)}")
            if (rows, cols) != (resolved.rows, resolved.cols):
                resolved = dataclasses.replace(resolved, rows=rows,
                                               cols=cols)
        elif resolved.rows is not None or resolved.cols is not None:
            raise ReproError(
                f"{self.describe()}: rows/cols scaling requires "
                f"cm_depths (Table I configs are 4x4 by definition)")
        return resolved

    def build_cgra(self):
        if self.cm_depths is not None:
            rows = self.rows if self.rows is not None else DEFAULT_ROWS
            cols = self.cols if self.cols is not None else DEFAULT_COLS
            return make_cgra(self.config_name, rows=rows, cols=cols,
                             cm_depths=list(self.cm_depths),
                             lsu_tiles=default_lsu_tiles(rows, cols))
        return get_config(self.config_name)

    def describe(self):
        label = f"{self.kernel_name}@{self.config_name}/{self.variant}"
        if self.backend != DEFAULT_BACKEND:
            label += f"#{self.backend}"
        return label


def sweep_specs(kernels=PAPER_KERNEL_ORDER, configs=LATENCY_CONFIGS,
                variants=tuple(VARIANTS), seed=DEFAULT_SEED,
                backend=DEFAULT_BACKEND):
    """The full cartesian batch: kernels × configs × flow variants."""
    return [PointSpec(kernel, config, variant, seed=seed,
                      backend=backend)
            for kernel in kernels
            for config in configs
            for variant in variants]


def validated_sweep_specs(kernels=None, configs=None, variants=None,
                          seed=None, backend=None):
    """:func:`sweep_specs` with axis validation (None = the default).

    Unknown axis names become a one-line :class:`ReproError` listing
    the valid set.  Shared by ``repro sweep``/``repro submit`` and
    the HTTP service's ``POST /v1/sweeps``, so a typo fails with the
    same diagnostic whichever door it came through — and every axis
    is checked before any work (or any destructive cache action)
    starts.  Config names are case-normalised here, matching
    :meth:`PointSpec.resolve`.
    """
    from repro.arch.configs import CGRA_CONFIGS
    from repro.kernels import KERNEL_NAMES

    # `is not None`, not truthiness: an explicitly empty axis means
    # "zero specs" (the caller decides that is an error), never a
    # silent widening to the full default sweep.
    kernels = (tuple(kernels) if kernels is not None
               else tuple(PAPER_KERNEL_ORDER))
    configs = (tuple(config.upper() for config in configs)
               if configs is not None else LATENCY_CONFIGS)
    variants = (tuple(variants) if variants is not None
                else tuple(VARIANTS))
    for label, given, valid in (
            ("kernels", kernels, set(KERNEL_NAMES)),
            ("configs", configs, set(CGRA_CONFIGS)),
            ("variants", variants, set(VARIANTS))):
        unknown = set(given) - valid
        if unknown:
            raise ReproError(f"unknown {label} {sorted(unknown)}; "
                             f"choose from {sorted(valid)}")
    from repro.runtime.backends import validated_backend
    return sweep_specs(kernels=kernels, configs=configs,
                       variants=variants,
                       seed=DEFAULT_SEED if seed is None else seed,
                       backend=validated_backend(backend))


def compute_point(spec):
    """Execute one spec on its named backend: map, assemble, run
    (lockstep simulation or cycle-level execution), verify, price."""
    from repro.obs import trace

    spec = spec.resolve()
    with trace.span("point", spec=spec.describe(),
                    backend=spec.backend) as active:
        point = get_backend(spec.backend)(spec)
        active.set(mapped=point.mapped,
                   cycles=point.cycles if point.mapped else None)
    return point


def map_kernel_for(kernel, cgra, options):
    """Map a kernel object (split out so tests can monkeypatch)."""
    from repro.mapping.flow import map_kernel

    return map_kernel(kernel.cdfg, cgra, options)


@dataclasses.dataclass
class SweepResult:
    """Outcome of one batched run, in the order the specs were given."""

    specs: list
    points: list
    cache_hits: int
    computed: int
    elapsed_seconds: float

    def __iter__(self):
        return iter(self.points)

    def __len__(self):
        return len(self.points)

    def point(self, kernel_name, config_name, variant):
        """First point matching the (kernel, config, variant) triple."""
        for spec, point in zip(self.specs, self.points):
            if (spec.kernel_name, spec.config_name,
                    spec.variant) == (kernel_name, config_name, variant):
                return point
        raise KeyError(f"{kernel_name}@{config_name}/{variant}")

    @property
    def mapped(self):
        return [p for p in self.points if p.mapped]

    @property
    def unmapped(self):
        return [p for p in self.points
                if not p.mapped and p.error in DETERMINISTIC_ERRORS]

    @property
    def crashed(self):
        return [p for p in self.points
                if p.error not in DETERMINISTIC_ERRORS]

    def summary(self):
        return (f"{len(self.points)} points: {len(self.mapped)} mapped, "
                f"{len(self.unmapped)} no-map, {len(self.crashed)} errors; "
                f"{self.cache_hits} from cache, {self.computed} computed "
                f"in {self.elapsed_seconds:.1f}s")
