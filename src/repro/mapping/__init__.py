"""The mapping flows: basic (Das et al. TCAD'18) and context-memory aware.

Module map (mirrors Fig 4 of the paper):

- :mod:`repro.mapping.traversal` — forward vs weighted CDFG traversal;
- :mod:`repro.mapping.tedg` — the time-extended directed graph view;
- :mod:`repro.mapping.scheduler` — backward list scheduling order
  (mobility, then fan-out);
- :mod:`repro.mapping.state` — partial mappings (placements, routed
  values, per-tile context usage);
- :mod:`repro.mapping.routing` — exact MOV-chain search on the TEDG;
- :mod:`repro.mapping.binder` — exact incremental binding with
  location constraints and constraint-aware binding (CAB);
- :mod:`repro.mapping.transforms` — re-compute / schedule-stretch
  graph transformations;
- :mod:`repro.mapping.pruning` — ACMAP, ECMAP and stochastic pruning;
- :mod:`repro.mapping.flow` — the orchestrating mapping flow;
- :mod:`repro.mapping.result` — mapping results and statistics.
"""

from repro.mapping.flow import FlowOptions, map_kernel
from repro.mapping.result import BlockMapping, MappingResult

__all__ = ["FlowOptions", "map_kernel", "BlockMapping", "MappingResult"]
