"""Backward traversal list scheduling.

The basic flow (Sec III-B) schedules each basic block's DFG with a
*backward* list scheduler: operations are handed to the binder
consumers-first, so when an operation is bound, every operation that
reads its result (and every memory operation ordered after it) already
has a placement — routing is always toward known targets.

Among simultaneously schedulable operations, priority follows the
paper's heuristic: lowest mobility first (most urgent), then highest
fan-out, then uid for determinism.
"""

from __future__ import annotations

import heapq

from repro.errors import SchedulingError
from repro.ir import analysis


def backward_order(dfg):
    """Operations in binding order (reverse-topological, prioritised).

    Kahn's algorithm on the reversed dependence graph; ties broken by
    the (mobility, -fanout, uid) priority of
    :func:`repro.ir.analysis.backward_priority`.
    """
    priority = analysis.backward_priority(dfg)
    remaining_successors = {}
    predecessors_of = {}
    for op in dfg.ops:
        preds = dfg.predecessors(op)
        predecessors_of[op.uid] = preds
        remaining_successors.setdefault(op.uid, 0)
        for pred in preds:
            remaining_successors[pred.uid] = (
                remaining_successors.get(pred.uid, 0) + 1)
    by_uid = {op.uid: op for op in dfg.ops}
    ready = [(priority[uid], uid) for uid, count in
             remaining_successors.items() if count == 0]
    heapq.heapify(ready)
    order = []
    while ready:
        _, uid = heapq.heappop(ready)
        op = by_uid[uid]
        order.append(op)
        for pred in predecessors_of[uid]:
            remaining_successors[pred.uid] -= 1
            if remaining_successors[pred.uid] == 0:
                heapq.heappush(ready, (priority[pred.uid], pred.uid))
    if len(order) != len(dfg.ops):
        raise SchedulingError(
            f"dependence cycle in block {dfg.block_name!r}: scheduled "
            f"{len(order)} of {len(dfg.ops)} ops")
    return order
