"""Pruning stages of the mapping flow (Fig 4).

Three filters act on the set of live partial mappings:

- **stochastic pruning** (basic flow, Sec III-B): caps the
  exponentially-growing set of partial mappings; keeps an elite by
  cost plus a random sample of the rest (seeded, reproducible);
- **ACMAP** (Sec III-D.2): approximate context-memory-aware pruning,
  applied *before* the stochastic pruning, using the cheap pessimistic
  PNOP bound — may keep mappings that will not fit and may drop
  mappings that would, exactly as the paper describes;
- **ECMAP** (Sec III-D.3): exact context-memory-aware pruning with the
  true PNOP count of the partial mapping, applied at every scheduling
  step boundary.
"""

from __future__ import annotations


def acmap_filter(partials):
    """Approximate context-memory aware pruning.

    ``fits_approx`` reads the overflow counter ``occupy`` maintains,
    so the whole filter is O(1) per partial mapping instead of a scan
    over every tile's context words.
    """
    return [pm for pm in partials if pm.fits_approx()]


def ecmap_filter(partials):
    """Exact context-memory aware pruning (same O(1) counter check)."""
    return [pm for pm in partials if pm.fits_exact()]


def stochastic_prune(partials, cap, rng):
    """Cap the live set: cost elite + weighted random sample.

    The paper prunes "depending on a threshold function" with a random
    component; we keep the ``cap/2`` cheapest mappings outright and
    fill the rest with a rank-weighted sample, so diversity survives
    without losing the best-known prefix.
    """
    if len(partials) <= cap:
        return list(partials)
    ranked = sorted(partials, key=lambda pm: pm.cost())
    elite_count = max(1, cap // 2)
    survivors = ranked[:elite_count]
    pool = ranked[elite_count:]
    weights = [1.0 / (rank + 2) for rank in range(len(pool))]
    total = sum(weights)
    probabilities = [w / total for w in weights]
    picks = rng.choice(len(pool), size=cap - elite_count, replace=False,
                       p=probabilities)
    survivors.extend(pool[int(i)] for i in picks)
    return survivors
