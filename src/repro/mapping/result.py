"""Mapping results and statistics.

:class:`BlockMapping` — one basic block's final mapping: the
(possibly transformed) DFG, placements, MOVs, availability events and
per-tile context usage.  :class:`MappingResult` aggregates a kernel's
blocks plus everything the experiments report: moves, pnops, per-tile
context words, static latency, compile time.
"""

from __future__ import annotations

from repro.errors import MappingError


class BlockMapping:
    """Final mapping of one basic block."""

    def __init__(self, name, dfg, pm, n_transformed=0, attempts=1):
        self.name = name
        self.dfg = dfg
        self.pm = pm
        self.n_transformed = n_transformed
        self.attempts = attempts

    # ------------------------------------------------------------------
    @property
    def length(self):
        return self.pm.length

    @property
    def placements(self):
        return self.pm.placements

    @property
    def movs(self):
        return self.pm.movs

    @property
    def new_homes(self):
        return self.pm.new_homes

    def tile_breakdown(self, tile):
        """Instruction word breakdown for one tile in this block."""
        ops = 0
        movs = 0
        for descriptor in self.pm.tile_cycles[tile].values():
            if descriptor[0] == "op":
                ops += 1
            else:
                movs += 1
        return {"ops": ops, "movs": movs, "pnops": self.pm.exact_pnops(tile)}

    @property
    def n_ops(self):
        return sum(1 for _, descriptor in self._slots() if
                   descriptor[0] == "op")

    @property
    def n_movs(self):
        return self.pm.n_movs

    @property
    def n_pnops(self):
        return sum(self.pm.exact_pnops(t)
                   for t in range(self.pm.cgra.n_tiles))

    def _slots(self):
        for tile, cycles in self.pm.tile_cycles.items():
            for cycle, descriptor in cycles.items():
                yield (tile, cycle), descriptor

    def block_usage(self):
        """Per-tile context words consumed by this block."""
        return self.pm.block_usage()

    def __repr__(self):
        return (f"BlockMapping({self.name}: L={self.length}, "
                f"{self.n_ops} ops, {self.n_movs} movs, "
                f"{self.n_pnops} pnops)")


class MappingResult:
    """Complete mapping of a kernel onto a CGRA configuration."""

    def __init__(self, kernel_name, cgra, options, block_order, blocks,
                 compile_seconds):
        self.kernel_name = kernel_name
        self.cgra = cgra
        self.options = options
        self.block_order = list(block_order)
        self.blocks = dict(blocks)
        self.compile_seconds = compile_seconds

    # ------------------------------------------------------------------
    # Context-memory accounting
    # ------------------------------------------------------------------
    def tile_words(self):
        """Total context words per tile (the quantity Table I bounds)."""
        totals = [0] * self.cgra.n_tiles
        for block in self.blocks.values():
            for tile, used in enumerate(block.block_usage()):
                totals[tile] += used
        return totals

    @property
    def fits(self):
        """True if every tile's context fits its context memory."""
        return all(used <= self.cgra.cm_depth(tile)
                   for tile, used in enumerate(self.tile_words()))

    def check_fits(self):
        """Raise :class:`MappingError` naming the overflowing tiles."""
        overflowing = [
            (self.cgra.tile(tile).name, used, self.cgra.cm_depth(tile))
            for tile, used in enumerate(self.tile_words())
            if used > self.cgra.cm_depth(tile)
        ]
        if overflowing:
            raise MappingError(
                f"{self.kernel_name} on {self.cgra.name}: context "
                f"overflow on {overflowing}")

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def total_ops(self):
        return sum(block.n_ops for block in self.blocks.values())

    @property
    def total_movs(self):
        return sum(block.n_movs for block in self.blocks.values())

    @property
    def total_pnops(self):
        return sum(block.n_pnops for block in self.blocks.values())

    @property
    def total_transformed(self):
        return sum(block.n_transformed for block in self.blocks.values())

    @property
    def total_words(self):
        return sum(self.tile_words())

    def per_block_stats(self):
        """Rows for Fig 5: (block, n_movs, n_pnops) in traversal order."""
        return [(name, self.blocks[name].n_movs, self.blocks[name].n_pnops)
                for name in self.block_order]

    def static_cycles(self, block_counts):
        """Total execution cycles given dynamic block execution counts.

        Lockstep execution runs each block for exactly its schedule
        length, so latency is ``sum L(b) * executions(b)``.
        """
        return sum(self.blocks[name].length * count
                   for name, count in block_counts.items())

    def summary(self):
        lines = [
            f"kernel {self.kernel_name} on {self.cgra.name} "
            f"({'context-aware' if self.options.is_context_aware else 'basic'})",
            f"  blocks: {len(self.blocks)}  ops: {self.total_ops}  "
            f"movs: {self.total_movs}  pnops: {self.total_pnops}  "
            f"transformed: {self.total_transformed}",
            f"  context words/tile: {self.tile_words()}",
            f"  fits: {self.fits}  compile: {self.compile_seconds:.3f}s",
        ]
        return "\n".join(lines)

    def __repr__(self):
        return (f"MappingResult({self.kernel_name}@{self.cgra.name}, "
                f"fits={self.fits})")
