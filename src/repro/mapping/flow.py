"""The orchestrating mapping flow (paper Fig 4).

``map_kernel(cdfg, cgra, options)`` runs the complete flow:

1. order the basic blocks (forward or weighted traversal);
2. per block: backward list scheduling + exact incremental binding,
   with the optional ACMAP / stochastic / ECMAP pruning cascade and
   CAB blacklisting;
3. on binding failure: graph transformations — schedule stretching
   (re-route slack) alternated with re-computation — then retry;
4. commit the best surviving partial mapping; its per-tile context
   usage and freshly-fixed symbol homes constrain later blocks.

A kernel that exhausts its retry budget raises
:class:`~repro.errors.UnmappableError` — the "no mapping solution"
zeros of the paper's Figs 6-8.

:class:`FlowOptions` encodes the paper's flow variants; the named
presets in :data:`VARIANTS` are exactly the series of Figs 6-9:
``basic``, ``acmap`` (basic + weighted traversal + ACMAP), ``ecmap``
(+ ECMAP), ``full`` (+ CAB).
"""

from __future__ import annotations

import dataclasses
import time
import zlib

import numpy as np

from repro.errors import MappingError, UnmappableError
from repro.ir.analysis import critical_path_length
from repro.mapping import transforms
from repro.mapping.binder import BindContext, bind_candidates, finalize_symbols
from repro.mapping.blacklist import update_blacklist
from repro.mapping.pruning import acmap_filter, ecmap_filter, stochastic_prune
from repro.mapping.result import BlockMapping, MappingResult
from repro.mapping.scheduler import backward_order
from repro.mapping.state import CommittedState, PartialMapping
from repro.mapping.traversal import block_order


@dataclasses.dataclass(frozen=True)
class FlowOptions:
    """Knobs of the mapping flow.

    The default instance is the *basic* flow of Das et al. TCAD'18:
    forward traversal, stochastic pruning only, no context-memory
    awareness.
    """

    traversal: str = "forward"
    acmap: bool = False
    ecmap: bool = False
    cab: bool = False
    prune_cap: int = 12
    seed: int = 2019
    cycle_window: int = 8
    max_route_movs: int = 8
    max_attempts: int = 18
    max_recomputes: int = 8
    max_cm_retries: int = 3
    presplit_load_fanout: int = 2
    presplit_alu_fanout: int = 6
    finalize_slack: int = 6

    @property
    def is_context_aware(self):
        return self.acmap or self.ecmap or self.cab

    # ------------------------------------------------------------------
    # Presets (the flow variants of Figs 6-9)
    # ------------------------------------------------------------------
    @classmethod
    def basic(cls, **overrides):
        """Basic mapping approach (baseline of every figure)."""
        return cls(**overrides)

    @classmethod
    def weighted(cls, **overrides):
        """Basic flow with the weighted CDFG traversal only (Fig 5)."""
        return cls(traversal="weighted", **overrides)

    @classmethod
    def with_acmap(cls, **overrides):
        """Basic + weighted traversal + ACMAP (Fig 6)."""
        return cls(traversal="weighted", acmap=True, **overrides)

    @classmethod
    def with_ecmap(cls, **overrides):
        """Basic + ACMAP + ECMAP (Fig 7)."""
        return cls(traversal="weighted", acmap=True, ecmap=True, **overrides)

    @classmethod
    def aware(cls, **overrides):
        """The full context-memory aware flow (Fig 8, Table II)."""
        return cls(traversal="weighted", acmap=True, ecmap=True, cab=True,
                   **overrides)


#: Flow variants keyed by the names used throughout the benchmarks.
VARIANTS = {
    "basic": FlowOptions.basic,
    "weighted": FlowOptions.weighted,
    "acmap": FlowOptions.with_acmap,
    "ecmap": FlowOptions.with_ecmap,
    "full": FlowOptions.aware,
}


class BlockBindFailure(MappingError):
    """Internal: one block-mapping attempt died (drives the remedies)."""

    def __init__(self, op_uid, reason):
        super().__init__(f"binding failed at op {op_uid} ({reason})")
        self.op_uid = op_uid
        self.reason = reason


def map_kernel(cdfg, cgra, options=None, context_aware=False):
    """Map a kernel CDFG onto a CGRA configuration.

    Raises :class:`~repro.errors.UnmappableError` when no mapping
    satisfies the context-memory constraints.
    """
    if options is None:
        options = FlowOptions.aware() if context_aware else FlowOptions.basic()
    cdfg.validate()
    started = time.perf_counter()
    order = block_order(cdfg, options.traversal)
    committed = CommittedState(cgra)
    blocks = {}
    for name in order:
        mapping = _map_block(cdfg.name, cdfg.block(name), cgra, committed,
                             options)
        committed = committed.extend(mapping.block_usage(),
                                     mapping.new_homes)
        blocks[name] = mapping
    elapsed = time.perf_counter() - started
    result = MappingResult(cdfg.name, cgra, options, order, blocks, elapsed)
    if options.ecmap:
        # ECMAP guarantees the fit; verify the invariant anyway.
        result.check_fits()
    return result


def _stable_hash(text):
    return zlib.crc32(text.encode("utf-8"))


def _initial_length(dfg, cgra):
    """Lower bound on the block schedule length.

    The critical path bounds dependence depth; the resource bounds
    come from issue slots (every op needs one) and from the LSU tiles
    (memory ops only run there).  A small margin leaves room for MOVs.
    """
    from repro.ir import opcodes as _opcodes

    n_ops = len(dfg.ops)
    if n_ops == 0:
        return 1
    n_mem = sum(1 for op in dfg.ops if _opcodes.is_memory(op.opcode))
    issue_bound = -(-n_ops * 23 // (20 * cgra.n_tiles))  # ceil(1.15x)
    lsu_count = max(1, len(cgra.lsu_tiles))
    mem_bound = -(-n_mem * 23 // (20 * lsu_count))
    return max(1, critical_path_length(dfg), issue_bound + 1, mem_bound + 1)


def _map_block(kernel_name, block, cgra, committed, options):
    """Map one basic block, applying transformations on failure."""
    original = block.dfg
    working = transforms.presplit_high_fanout(
        original, options.presplit_load_fanout,
        options.presplit_alu_fanout)
    length = _initial_length(working, cgra)
    cm_retries = 0
    recomputes = 0
    last_failure = None
    for attempt in range(options.max_attempts):
        rng = np.random.default_rng(
            [options.seed, _stable_hash(block.name), attempt])
        try:
            pm = _map_block_once(working, length, cgra, committed, options,
                                 rng)
            return BlockMapping(
                block.name, working, pm,
                n_transformed=transforms.transformed_op_count(
                    working, original),
                attempts=attempt + 1)
        except BlockBindFailure as failure:
            last_failure = failure
            if failure.reason in ("acmap", "ecmap"):
                # Context-memory failure.  First re-explore with a
                # different pruning substream (cheap); if the failure
                # is systematic, fall through to schedule stretching —
                # longer schedules open issue slots on the tiles that
                # still have context budget.
                cm_retries += 1
                if cm_retries <= options.max_cm_retries:
                    continue
            if (failure.op_uid is not None
                    and recomputes < options.max_recomputes
                    and attempt % 2 == 1):
                try:
                    working = transforms.recompute_split(
                        working, failure.op_uid)
                    recomputes += 1
                    continue
                except MappingError:
                    pass
            length += max(2, length // 6)
    raise UnmappableError(
        f"no mapping for block {block.name!r} of {kernel_name!r} on "
        f"{cgra.name} ({last_failure})",
        kernel=kernel_name, config=cgra.name, block=block.name)


def _map_block_once(dfg, length, cgra, committed, options, rng):
    """One attempt at mapping a block; raises BlockBindFailure."""
    ctx = BindContext(dfg, cgra, options)
    initial = PartialMapping(cgra, committed, length)
    if options.cab:
        update_blacklist(initial)
    partials = [initial]
    for op in backward_order(dfg):
        candidates = []
        for pm in partials:
            candidates.extend(bind_candidates(ctx, pm, op))
        if not candidates:
            # Fallback: rescan the whole legal cycle range before
            # giving up on this attempt.
            for pm in partials:
                candidates.extend(bind_candidates(ctx, pm, op,
                                                  full_window=True))
        if not candidates:
            raise BlockBindFailure(op.uid, "bind")
        if options.acmap:
            candidates = acmap_filter(candidates)
            if not candidates:
                raise BlockBindFailure(op.uid, "acmap")
        partials = stochastic_prune(candidates, options.prune_cap, rng)
        if options.ecmap:
            partials = ecmap_filter(partials)
            if not partials:
                raise BlockBindFailure(op.uid, "ecmap")
        if options.cab:
            for pm in partials:
                update_blacklist(pm)
    finalized = []
    for pm in partials:
        final = finalize_symbols(ctx, pm)
        if final is not None:
            finalized.append(final)
    if options.ecmap:
        finalized = ecmap_filter(finalized)
    if not finalized:
        raise BlockBindFailure(None, "finalize")
    best = min(finalized, key=lambda pm: (pm.length,) + pm.cost())
    best.compress()
    return best
