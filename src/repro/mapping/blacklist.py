"""Constraint Aware Binding (CAB, Sec III-D.4).

After each exact pruning step, every partial mapping characterises its
tiles: a tile whose context memory cannot take any further instruction
is *blacklisted* for that partial mapping, and the binder (and the
router) stop proposing it.  This steers the exploration toward tiles
that still have context budget instead of generating doomed partial
mappings — the paper credits it with the HET2 latency recovery in
Fig 8.
"""

from __future__ import annotations


def full_tiles(pm):
    """Tiles with no room for a further instruction.

    Placing one more instruction can cost up to *two* context words
    (the instruction itself plus a new PNOP if it opens a gap), so a
    tile is full once fewer than two words of headroom remain.

    Tiles that *home a symbol variable* are blacklisted earlier: every
    future read of the symbol from another tile needs a re-emit MOV on
    the home tile, so filling it to the brim would strand the location
    constraint (the symbol would become unreachable for the rest of
    the kernel).
    """
    home_tiles = set(pm.committed.symbol_homes.values())
    home_tiles.update(pm.new_homes.values())
    blacklisted = set()
    words = pm._tile_words
    for tile, depth in enumerate(pm.cgra.cm_depths):
        headroom = depth - words[tile]
        reserve = 4 if tile in home_tiles else 2
        if headroom < reserve:
            blacklisted.add(tile)
    return frozenset(blacklisted)


def update_blacklist(pm):
    """Recompute and store the blacklist on the partial mapping."""
    pm.blacklist = full_tiles(pm)
    return pm.blacklist
