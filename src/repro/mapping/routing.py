"""Exact MOV-chain search on the time-extended graph.

Given a partial mapping and a value's availability events, find the
cheapest legal chain of MOV instructions making the value readable by
a consumer placement (or landing it in a register file by a deadline —
the symbol-variable location constraints).

The search is a 0-1 BFS over TEDG states:

- ``("rf", P, c)`` — the value sits in P's register file; instructions
  on P at cycles >= c can read it;
- ``("port", P, c)`` — the value is on P's output port during exactly
  cycle ``c`` (P computed or MOVed it at ``c - 1``).

Transitions (cost = MOV instructions inserted):

- wait in the RF: ``rf(P,c) -> rf(P,c+1)`` — free;
- re-emit: a MOV on P at ``c`` reading its own RF -> ``port(P,c+1)``
  — cost 1;
- hop: a MOV on a torus neighbour Q at ``c`` reading P's port ->
  ``rf(Q,c+1)`` and ``port(Q,c+1)`` — cost 1.

Every MOV needs a free issue slot on its tile, and tiles blacklisted
by CAB accept no new instructions (routing is "constraint aware" too).
This subsumes the paper's *re-routing* graph transformation: extra
moves are exactly what re-routing inserts.
"""

from __future__ import annotations

from collections import deque

#: Default cap on MOVs per routed edge; routes beyond this are
#: considered failed (the caller falls back to other transformations).
MAX_ROUTE_MOVS = 8


class Route:
    """A successful route: the MOV instructions to insert."""

    __slots__ = ("movs",)

    def __init__(self, movs):
        self.movs = movs

    @property
    def cost(self):
        return len(self.movs)

    def __repr__(self):
        return f"Route({self.movs})"


def _initial_states(pm, value_uid, horizon):
    states = []
    for tile, avail in pm.rf_avail.get(value_uid, ()):
        if avail <= horizon:
            states.append(("rf", tile, avail))
    for tile, cycle in pm.port_events.get(value_uid, ()):
        if cycle <= horizon:
            states.append(("port", tile, cycle))
    return states


def _is_operand_goal(state, pm, tile, cycle):
    kind, p, c = state
    if kind == "rf":
        return p == tile and c <= cycle
    return c == cycle and tile in pm.cgra.neighbors(p)


def _is_landing_goal(state, tile, deadline):
    kind, p, c = state
    return kind == "rf" and p == tile and c <= deadline


def _search(pm, value_uid, horizon, goal_test, max_movs, blacklist):
    """0-1 BFS from the value's events; returns Route or None."""
    start_states = _initial_states(pm, value_uid, horizon)
    best = {}
    parents = {}
    queue = deque()
    for state in start_states:
        best[state] = 0
        parents[state] = (None, None)
        queue.append(state)
    while queue:
        state = queue.popleft()
        cost = best[state]
        if goal_test(state):
            movs = []
            cursor = state
            while cursor is not None:
                previous, mov = parents[cursor]
                if mov is not None:
                    movs.append(mov)
                cursor = previous
            movs.reverse()
            return Route(movs)
        kind, p, c = state

        def push(next_state, extra, mov):
            next_cost = cost + extra
            if next_cost > max_movs:
                return
            if best.get(next_state, next_cost + 1) <= next_cost:
                return
            best[next_state] = next_cost
            parents[next_state] = (state, mov)
            if extra == 0:
                queue.appendleft(next_state)
            else:
                queue.append(next_state)

        if kind == "rf":
            if c + 1 <= horizon:
                push(("rf", p, c + 1), 0, None)
            # Re-emit: MOV on p at cycle c.
            if (c + 1 <= horizon and p not in blacklist
                    and pm.slot_free(p, c)):
                push(("port", p, c + 1), 1, (p, c))
        else:  # port event during cycle c
            for q in pm.cgra.neighbors(p):
                if q in blacklist or not pm.slot_free(q, c):
                    continue
                if c + 1 <= horizon:
                    push(("rf", q, c + 1), 1, (q, c))
                    push(("port", q, c + 1), 1, (q, c))
    return None


def route_to_operand(pm, value_uid, tile, cycle,
                     max_movs=MAX_ROUTE_MOVS, blacklist=frozenset()):
    """Make the value readable by an instruction at ``(tile, cycle)``.

    Returns a :class:`Route` (possibly empty) or None.
    """
    if pm.readable_at(value_uid, tile, cycle):
        return Route([])

    def goal(state):
        return _is_operand_goal(state, pm, tile, cycle)

    return _search(pm, value_uid, cycle, goal, max_movs, blacklist)


def route_to_rf(pm, value_uid, tile, deadline,
                max_movs=MAX_ROUTE_MOVS, blacklist=frozenset()):
    """Land the value in ``tile``'s RF no later than ``deadline``.

    ``deadline`` is an availability cycle: ``rf(tile, c <= deadline)``.
    Returns a :class:`Route` or None.
    """
    avail = pm.rf_cycle(value_uid, tile)
    if avail is not None and avail <= deadline:
        return Route([])

    def goal(state):
        return _is_landing_goal(state, tile, deadline)

    return _search(pm, value_uid, deadline, goal, max_movs, blacklist)


def commit_route(pm, value_uid, route):
    """Insert the route's MOVs into the partial mapping."""
    for tile, cycle in route.movs:
        pm.add_mov(tile, cycle, value_uid)
        pm.record_production(value_uid, tile, cycle)
