"""Exact MOV-chain search on the time-extended graph.

Given a partial mapping and a value's availability events, find the
cheapest legal chain of MOV instructions making the value readable by
a consumer placement (or landing it in a register file by a deadline —
the symbol-variable location constraints).

The search is a 0-1 BFS over TEDG states:

- ``("rf", P, c)`` — the value sits in P's register file; instructions
  on P at cycles >= c can read it;
- ``("port", P, c)`` — the value is on P's output port during exactly
  cycle ``c`` (P computed or MOVed it at ``c - 1``).

Transitions (cost = MOV instructions inserted):

- wait in the RF: ``rf(P,c) -> rf(P,c+1)`` — free;
- re-emit: a MOV on P at ``c`` reading its own RF -> ``port(P,c+1)``
  — cost 1;
- hop: a MOV on a torus neighbour Q at ``c`` reading P's port ->
  ``rf(Q,c+1)`` and ``port(Q,c+1)`` — cost 1.

Every MOV needs a free issue slot on its tile, and tiles blacklisted
by CAB accept no new instructions (routing is "constraint aware" too).
This subsumes the paper's *re-routing* graph transformation: extra
moves are exactly what re-routing inserts.

Two layers keep the search off the flow's critical path without
changing a single returned route:

- **Admissible bounding.**  Torus hop distances (precomputed tables on
  the :class:`~repro.arch.cgra.CGRA`) lower-bound both the MOVs and
  the cycles any completion of a state still needs.  States that
  provably cannot reach the goal within ``max_movs`` and the time
  horizon are never enqueued — including whole searches whose start
  states are all hopeless, which return ``None`` before the BFS
  allocates anything.  The bounds are lower bounds on *any* path, so
  pruned states can never lie on a returned route, and the pop order
  and parent choice of every goal-reaching state are untouched: the
  surviving search is bit-identical to the exhaustive one.
- **Memoisation.**  Sibling partial mappings (clones of one parent
  explored by the binder) keep issuing identical route queries.  A
  query's outcome depends only on the value's (immutable) availability
  event tuples, the goal, the budget, the blacklist and the occupancy
  of issue slots below the horizon — so callers may pass a ``memo``
  dict (scoped to one block attempt by the binder) keyed on exactly
  those, and both successful routes and failures are replayed instead
  of re-searched.
"""

from __future__ import annotations

from collections import deque

from repro.mapping.state import _CYCLE_BITS, _CYCLE_MASK

#: Default cap on MOVs per routed edge; routes beyond this are
#: considered failed (the caller falls back to other transformations).
MAX_ROUTE_MOVS = 8

#: Memo sentinel distinguishing "never searched" from "search failed".
_MISS = object()

#: Queries whose earliest availability event sits closer than this to
#: the horizon run a tiny BFS — cheaper than building the memo key —
#: and bypass the memo; distant events mean long wait/hop frontiers,
#: which is where replaying an earlier identical query pays.
MEMO_MIN_GAP = 4


class Route:
    """A successful route: the MOV instructions to insert."""

    __slots__ = ("movs",)

    def __init__(self, movs):
        self.movs = movs

    @property
    def cost(self):
        return len(self.movs)

    def __repr__(self):
        return f"Route({self.movs})"


#: States are packed into ints for fast hashing: a high bit selects
#: the port kind, the middle bits the tile, the low bits the cycle.
#: The cycle width is state.py's — ``PartialMapping.occupy`` rejects
#: cycles beyond it, which is what makes this packing alias-free; the
#: two modules must agree, so the constants are imported, not
#: redefined.
_TILE_SHIFT = _CYCLE_BITS
_PORT = 1 << (2 * _CYCLE_BITS)

#: Parent links are packed too: ``(previous_state << 1) | has_mov``.
#: A MOV edge's instruction is derivable from its *target* state — a
#: re-emit or hop into state ``(kind, q, nc)`` is a MOV on tile ``q``
#: at cycle ``nc - 1`` — so the whole BFS runs allocation-free.
_ROOT = (-1 << 1)


def _trace(parents, state):
    movs = []
    while state >= 0:
        packed = parents[state]
        if packed & 1:
            movs.append(((state >> _TILE_SHIFT) & _CYCLE_MASK,
                         (state & _CYCLE_MASK) - 1))
        state = packed >> 1
    movs.reverse()
    return Route(movs)


def _memo_worthwhile(rf_events, port_events, horizon):
    """True when the earliest event leaves a wide search window."""
    first = horizon
    for _, c in rf_events:
        if c < first:
            first = c
    for _, c in port_events:
        if c < first:
            first = c
    return horizon - first >= MEMO_MIN_GAP


def _search_operand(pm, rf_events, port_events, tile, cycle, max_movs,
                    blacklist):
    """0-1 BFS making the value readable at ``(tile, cycle)``.

    Goal states: ``rf(tile, c <= cycle)`` or ``port(P, cycle)`` with
    ``tile`` a torus neighbour of P.  Returns Route or None.
    """
    cgra = pm.cgra
    neighbors = cgra.neighbor_table
    dist = cgra.distance_row(tile)
    tile_cycles = pm.tile_cycles
    best = {}
    parents = {}
    queue = deque()
    append = queue.append
    appendleft = queue.appendleft
    best_get = best.get
    port_bit = _PORT
    tile_shift = _TILE_SHIFT
    cycle_mask = _CYCLE_MASK

    for p, c in rf_events:
        if c > cycle:
            continue
        if p != tile and (dist[p] > max_movs or c + dist[p] > cycle):
            continue
        state = (p << tile_shift) | c
        best[state] = 0
        parents[state] = _ROOT
        append(state)
    for p, c in port_events:
        if c > cycle:
            continue
        d = dist[p]
        if not (d == 1 and c == cycle):
            need = d - 1 if d >= 2 else 1
            if need > max_movs or c + need > cycle:
                continue
        state = port_bit | (p << tile_shift) | c
        if state not in best:
            best[state] = 0
            parents[state] = _ROOT
            append(state)

    while queue:
        state = queue.popleft()
        cost = best[state]
        c = state & cycle_mask
        if state < port_bit:  # rf(p, c)
            p = state >> tile_shift
            if p == tile and c <= cycle:
                return _trace(parents, state)
            # Wait in the RF — free, dies when the time bound does.
            nc = c + 1
            if nc <= cycle and (p == tile or nc + dist[p] <= cycle):
                next_state = state + 1
                if best_get(next_state, cost + 1) > cost:
                    best[next_state] = cost
                    parents[next_state] = state << 1
                    appendleft(next_state)
            # Re-emit: MOV on p at cycle c.
            if (nc <= cycle and cost < max_movs and p not in blacklist
                    and c not in tile_cycles[p]):
                d = dist[p]
                if not (d == 1 and nc == cycle):
                    need = d - 1 if d >= 2 else 1
                    if cost + 1 + need > max_movs or nc + need > cycle:
                        continue
                next_state = port_bit | (state + 1)
                next_cost = cost + 1
                if best_get(next_state, next_cost + 1) > next_cost:
                    best[next_state] = next_cost
                    parents[next_state] = (state << 1) | 1
                    append(next_state)
        else:  # the value is on p's output port during cycle c
            p = (state >> tile_shift) & cycle_mask
            if c == cycle and tile in neighbors[p]:
                return _trace(parents, state)
            nc = c + 1
            if nc > cycle:
                continue
            next_cost = cost + 1
            if next_cost > max_movs:
                continue
            budget = max_movs - next_cost
            for q in neighbors[p]:
                if q in blacklist or c in tile_cycles[q]:
                    continue
                d = dist[q]
                if q == tile or (nc + d <= cycle and d <= budget):
                    next_state = (q << tile_shift) | nc
                    if best_get(next_state, next_cost + 1) > next_cost:
                        best[next_state] = next_cost
                        parents[next_state] = (state << 1) | 1
                        append(next_state)
                if not (d == 1 and nc == cycle):
                    need = d - 1 if d >= 2 else 1
                    if need > budget or nc + need > cycle:
                        continue
                next_state = port_bit | (q << tile_shift) | nc
                if best_get(next_state, next_cost + 1) > next_cost:
                    best[next_state] = next_cost
                    parents[next_state] = (state << 1) | 1
                    append(next_state)
    return None


def _search_landing(pm, rf_events, port_events, tile, deadline,
                    max_movs, blacklist):
    """0-1 BFS landing the value in ``tile``'s RF by ``deadline``."""
    cgra = pm.cgra
    neighbors = cgra.neighbor_table
    dist = cgra.distance_row(tile)
    tile_cycles = pm.tile_cycles
    best = {}
    parents = {}
    queue = deque()
    append = queue.append
    appendleft = queue.appendleft
    best_get = best.get
    port_bit = _PORT
    tile_shift = _TILE_SHIFT
    cycle_mask = _CYCLE_MASK

    for p, c in rf_events:
        if c > deadline:
            continue
        if p != tile and (dist[p] + 1 > max_movs
                          or c + dist[p] + 1 > deadline):
            continue
        state = (p << tile_shift) | c
        best[state] = 0
        parents[state] = _ROOT
        append(state)
    for p, c in port_events:
        if c > deadline:
            continue
        d = dist[p]
        need = d if d >= 1 else 2
        if need > max_movs or c + need > deadline:
            continue
        state = port_bit | (p << tile_shift) | c
        if state not in best:
            best[state] = 0
            parents[state] = _ROOT
            append(state)

    while queue:
        state = queue.popleft()
        cost = best[state]
        c = state & cycle_mask
        if state < port_bit:  # rf(p, c)
            p = state >> tile_shift
            if p == tile and c <= deadline:
                return _trace(parents, state)
            nc = c + 1
            if nc <= deadline and nc + dist[p] + 1 <= deadline:
                next_state = state + 1
                if best_get(next_state, cost + 1) > cost:
                    best[next_state] = cost
                    parents[next_state] = state << 1
                    appendleft(next_state)
            if (nc <= deadline and p not in blacklist
                    and c not in tile_cycles[p]):
                d = dist[p]
                need = d if d >= 1 else 2
                if cost + 1 + need <= max_movs and nc + need <= deadline:
                    next_state = port_bit | (state + 1)
                    next_cost = cost + 1
                    if best_get(next_state, next_cost + 1) > next_cost:
                        best[next_state] = next_cost
                        parents[next_state] = (state << 1) | 1
                        append(next_state)
        else:
            p = (state >> tile_shift) & cycle_mask
            nc = c + 1
            if nc > deadline:
                continue
            next_cost = cost + 1
            if next_cost > max_movs:
                continue
            budget = max_movs - next_cost
            for q in neighbors[p]:
                if q in blacklist or c in tile_cycles[q]:
                    continue
                d = dist[q]
                if q == tile or (nc + d + 1 <= deadline
                                 and d + 1 <= budget):
                    next_state = (q << tile_shift) | nc
                    if best_get(next_state, next_cost + 1) > next_cost:
                        best[next_state] = next_cost
                        parents[next_state] = (state << 1) | 1
                        append(next_state)
                need = d if d >= 1 else 2
                if need <= budget and nc + need <= deadline:
                    next_state = port_bit | (q << tile_shift) | nc
                    if best_get(next_state, next_cost + 1) > next_cost:
                        best[next_state] = next_cost
                        parents[next_state] = (state << 1) | 1
                        append(next_state)
    return None


def route_to_operand(pm, value_uid, tile, cycle,
                     max_movs=MAX_ROUTE_MOVS, blacklist=frozenset(),
                     memo=None):
    """Make the value readable by an instruction at ``(tile, cycle)``.

    Returns a :class:`Route` (possibly empty) or None.  ``memo`` — an
    optional dict shared across sibling partial mappings — replays
    previously-searched queries (see the module docstring).
    """
    # Inlined readable_at: already-readable values route for free.
    rf_events = pm.rf_avail.get(value_uid, ())
    for event_tile, event_cycle in rf_events:
        if event_tile == tile:
            if event_cycle <= cycle:
                return Route([])
            break
    port_events = pm.port_events.get(value_uid, ())
    if port_events:
        neighbors = pm.cgra.neighbor_table[tile]
        for event_tile, event_cycle in port_events:
            if event_cycle == cycle and event_tile in neighbors:
                return Route([])
    if memo is None or not _memo_worthwhile(rf_events, port_events, cycle):
        return _search_operand(pm, rf_events, port_events, tile, cycle,
                               max_movs, blacklist)
    key = ("op", tile, cycle, max_movs, blacklist, rf_events,
           port_events, pm.occupancy_key(cycle))
    hit = memo.get(key, _MISS)
    if hit is not _MISS:
        return None if hit is None else Route(list(hit))
    route = _search_operand(pm, rf_events, port_events, tile, cycle,
                            max_movs, blacklist)
    memo[key] = None if route is None else tuple(route.movs)
    return route


def route_to_rf(pm, value_uid, tile, deadline,
                max_movs=MAX_ROUTE_MOVS, blacklist=frozenset(),
                memo=None):
    """Land the value in ``tile``'s RF no later than ``deadline``.

    ``deadline`` is an availability cycle: ``rf(tile, c <= deadline)``.
    Returns a :class:`Route` or None.  ``memo`` as in
    :func:`route_to_operand`.
    """
    rf_events = pm.rf_avail.get(value_uid, ())
    for event_tile, event_cycle in rf_events:
        if event_tile == tile:
            if event_cycle <= deadline:
                return Route([])
            break
    port_events = pm.port_events.get(value_uid, ())
    if memo is None or not _memo_worthwhile(rf_events, port_events,
                                            deadline):
        return _search_landing(pm, rf_events, port_events, tile,
                               deadline, max_movs, blacklist)
    key = ("rf", tile, deadline, max_movs, blacklist, rf_events,
           port_events, pm.occupancy_key(deadline))
    hit = memo.get(key, _MISS)
    if hit is not _MISS:
        return None if hit is None else Route(list(hit))
    route = _search_landing(pm, rf_events, port_events, tile, deadline,
                            max_movs, blacklist)
    memo[key] = None if route is None else tuple(route.movs)
    return route


def commit_route(pm, value_uid, route):
    """Insert the route's MOVs into the partial mapping."""
    for tile, cycle in route.movs:
        pm.add_mov(tile, cycle, value_uid)
        pm.record_production(value_uid, tile, cycle)
