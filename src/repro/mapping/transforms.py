"""Graph transformations (Sec III-B: re-computing and re-routing).

Re-routing — inserting extra MOVs — lives inside the routing search.
This module provides the other two remedies the flow applies when an
operation cannot be bound in any live partial mapping:

- **schedule stretch**: restart the block with a longer schedule,
  giving the router more slack (the backward scheduler then has more
  cycles between producers and consumers);
- **re-compute**: duplicate a pure operation so distant consumers are
  fed by independent copies instead of long MOV chains.  The duplicate
  counts toward the paper's ``n(To)`` (transformed operations).

Both operate on a *working copy* of the block's DFG; the original
kernel IR is never mutated.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.ir import opcodes
from repro.ir.dfg import DFG, DataNode, OperationNode


def copy_dfg(dfg):
    """Deep-copy a DFG preserving uids (placements stay comparable)."""
    clone = DFG(dfg.block_name)
    clone._uid = dfg._uid
    data_map = {}
    op_map = {}
    for node in dfg.data:
        copied = DataNode(node.uid, node.kind, producer=None,
                          value=node.value, symbol=node.symbol,
                          name=node.name)
        data_map[node.uid] = copied
        clone.data.append(copied)
    for op in dfg.ops:
        copied = OperationNode(
            op.uid, op.opcode,
            [data_map[d.uid] for d in op.operands],
            name=op.name, region=op.region)
        if op.result is not None:
            result = data_map[op.result.uid]
            result.producer = copied
            copied.result = result
        op_map[op.uid] = copied
        clone.ops.append(copied)
    for op in dfg.ops:
        op_map[op.uid].order_after = [op_map[o.uid] for o in op.order_after]
    clone.symbol_inputs = {s: data_map[n.uid]
                           for s, n in dfg.symbol_inputs.items()}
    clone.symbol_outputs = {s: data_map[n.uid]
                            for s, n in dfg.symbol_outputs.items()}
    clone._const_cache = {node.value: node for node in clone.data
                          if node.is_const}
    return clone


def is_recomputable(dfg, op):
    """Can this op be duplicated safely?

    Pure single-output ALU ops always can.  A LOAD can too, when its
    region is never stored to in this block (re-reading read-only data
    is idempotent); conservative aliasing applies to untagged regions.
    """
    if op.result is None or op.opcode is opcodes.Opcode.BR:
        return False
    if not opcodes.is_memory(op.opcode):
        return True
    if op.opcode is not opcodes.Opcode.LOAD or op.region is None:
        return False
    for other in dfg.ops:
        if other.opcode is opcodes.Opcode.STORE and (
                other.region is None or other.region == op.region):
            return False
    return True


def recompute_split(dfg, op_uid):
    """Duplicate ``op`` and split its consumers between the two copies.

    Returns a new DFG (the input is copied, not mutated).  Consumers
    are partitioned alternately; the symbol-output binding, if the
    result carries one, stays with the original.  Raises
    :class:`MappingError` if the op is not splittable.
    """
    clone = copy_dfg(dfg)
    op = clone.op_by_uid(op_uid)
    if not is_recomputable(clone, op):
        raise MappingError(f"operation {op.name} cannot be re-computed")
    consumers = clone.consumers(op.result)
    if len(consumers) < 2:
        raise MappingError(
            f"operation {op.name} has {len(consumers)} consumers; "
            f"re-computing needs at least 2")
    clone._uid += 1
    duplicate = OperationNode(clone._uid, op.opcode, list(op.operands),
                              name=f"{op.name}_rc", region=op.region)
    clone._uid += 1
    dup_result = DataNode(clone._uid, "op", producer=duplicate,
                          name=f"{op.result.name}_rc")
    duplicate.result = dup_result
    duplicate.order_after = list(op.order_after)
    clone.data.append(dup_result)
    # Insert right after the original so creation order stays topological.
    clone.ops.insert(clone.ops.index(op) + 1, duplicate)
    # Alternate consumers between the two copies.
    for index, consumer in enumerate(consumers):
        if index % 2 == 1:
            consumer.operands = [
                dup_result if operand is op.result else operand
                for operand in consumer.operands]
    clone.validate()
    return clone


def presplit_high_fanout(dfg, load_fanout=2, alu_fanout=6):
    """Re-compute values whose fan-out would force MOV storms.

    Applied proactively before mapping — the re-computing
    transformation of Sec III-B, triggered by structure instead of a
    binding failure:

    - LOADs bind only on the eight load-store tiles, so a load feeding
      more than ``load_fanout`` slots is duplicated (legal for
      read-only regions);
    - pure ALU values feeding more than ``alu_fanout`` slots (e.g. a
      row base shared by a whole unrolled loop body) are duplicated
      likewise.

    Returns the (possibly unchanged) DFG.
    """
    current = dfg
    changed = True
    while changed:
        changed = False
        for op in current.ops:
            if op.result is None:
                continue
            limit = (load_fanout if op.opcode is opcodes.Opcode.LOAD
                     else alu_fanout)
            if len(current.consumers(op.result)) <= limit:
                continue
            if not is_recomputable(current, op):
                continue
            current = recompute_split(current, op.uid)
            changed = True
            break
    return current


def transformed_op_count(working_dfg, original_dfg):
    """The paper's ``n(To)``: operations added by transformations."""
    return len(working_dfg.ops) - len(original_dfg.ops)
