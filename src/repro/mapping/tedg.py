"""Time-extended directed graph (TEDG) of the target CGRA.

Sec III-A of the paper: the TEDG ``T = (V, E)`` has a node ``(r, t)``
per resource ``r in FU union RF`` and cycle ``t``; an edge connects
``(r1, t)`` to ``(r2, t+1)`` when the value held by ``r1`` at cycle
``t`` can appear in ``r2`` at ``t+1``.

We never materialise the product graph; :class:`TEDG` answers the edge
queries the routing search needs, derived from the PE contract
(DESIGN.md Sec 5):

- ``FU(P, t) -> RF(P, t+1)``      — writeback of a result;
- ``FU(P, t) -> FU(Q, t+1)``      — output-port forwarding to a torus
  neighbour ``Q`` (valid only at exactly ``t+1``);
- ``RF(P, t) -> RF(P, t+1)``      — a value rests in the register file;
- ``RF(P, t) -> FU(P, t)``        — an instruction reads its own RF.

A MOV instruction is a FU occupation that copies a value along these
edges; the mapping problem is finding an edge-preserving map from the
DFG into this graph (``f`` in the paper's formulation).
"""

from __future__ import annotations


class TEDG:
    """Edge oracle of the time-extended graph for one CGRA."""

    def __init__(self, cgra):
        self.cgra = cgra

    # ------------------------------------------------------------------
    # Edge queries used by the routing search
    # ------------------------------------------------------------------
    def port_consumers(self, tile):
        """Tiles able to read ``tile``'s output port the next cycle."""
        return self.cgra.neighbors(tile)

    def can_hold(self, tile):
        """RF(P,t) -> RF(P,t+1) always exists (RF values persist)."""
        return True

    def fu_nodes(self, cycle):
        """All FU nodes of one time slice (for introspection/tests)."""
        return [(("FU", tile), cycle) for tile in range(self.cgra.n_tiles)]

    def rf_nodes(self, cycle):
        """All RF nodes of one time slice."""
        return [(("RF", tile), cycle) for tile in range(self.cgra.n_tiles)]

    def edges_from_fu(self, tile, cycle):
        """Explicit TEDG edges out of ``FU(tile)`` at ``cycle``.

        Used by tests and documentation tooling; the routing search
        uses the faster dedicated queries above.
        """
        edges = [((("FU", tile), cycle), (("RF", tile), cycle + 1))]
        for neighbor in self.port_consumers(tile):
            edges.append(
                ((("FU", tile), cycle), (("FU", neighbor), cycle + 1)))
        return edges

    def edges_from_rf(self, tile, cycle):
        """Explicit TEDG edges out of ``RF(tile)`` at ``cycle``."""
        return [
            ((("RF", tile), cycle), (("RF", tile), cycle + 1)),
            ((("RF", tile), cycle), (("FU", tile), cycle)),
        ]

    def __repr__(self):
        return f"TEDG({self.cgra.name})"
