"""CDFG traversal orders (Sec III-B forward vs Sec III-D.1 weighted).

The order in which basic blocks are mapped decides where symbol
variables get homed, and therefore how much MOV/PNOP traffic the
location constraints later force.  The paper's weighted traversal maps
the blocks with the most symbol-variable activity first:

    ``W_bb = n(s) + sum_s fanout(s)``

in descending order (Fig 5: ~42% fewer moves, ~24% fewer pnops on FFT
versus the forward traversal).
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.ir import analysis

TRAVERSALS = ("forward", "weighted")


def forward_order(cdfg):
    """Forward CDFG traversal (reverse post-order from the entry)."""
    return cdfg.reverse_post_order()


def weighted_order(cdfg):
    """Blocks by descending weight; forward position breaks ties."""
    forward = forward_order(cdfg)
    position = {name: index for index, name in enumerate(forward)}
    weights = analysis.cdfg_block_weights(cdfg)
    return sorted(cdfg.blocks, key=lambda b: (-weights[b], position[b]))


def block_order(cdfg, traversal):
    """Dispatch on the traversal name ("forward" or "weighted")."""
    if traversal == "forward":
        return forward_order(cdfg)
    if traversal == "weighted":
        return weighted_order(cdfg)
    raise MappingError(
        f"unknown traversal {traversal!r}; choose from {TRAVERSALS}")
