"""Partial-mapping state.

A :class:`PartialMapping` is one point of the design space the binder
explores for the current basic block: operation placements, MOV
insertions, value availability events, per-tile context occupancy.
The paper's flow keeps a *set* of these alive, prunes it (stochastic /
ACMAP / ECMAP), and extends each by binding the next operation.

Cross-block state — instructions already committed to each tile's
context memory and the symbol-variable home tiles (location
constraints) — lives in the immutable :class:`CommittedState`.

Context-word accounting follows the PE contract (DESIGN.md Sec 5):
per block, a tile stores its operations and MOVs plus one PNOP per
idle gap *before or between* them; trailing idle cycles and blocks in
which the tile never wakes up cost nothing (the tile sleeps until the
global block-end broadcast).

Performance note: the binder clones a partial mapping for every
placement candidate, so per-value event containers are stored as
immutable tuples/frozensets — ``clone()`` copies only the outer dicts
(pointer copies), and updates replace the small inner values.

All context accounting is incremental: ``occupy`` maintains per-tile
busy counts, PNOP counts, context words and the derived pruning
aggregates (total words, worst capacity pressure, per-depth overflow
counters) in O(1) per placed instruction, so ``cost()`` and the
ACMAP/ECMAP fitness checks never rescan the schedule.  Per-tile words
only ever grow while instructions are added (a new instruction adds
one word and changes the PNOP count by -1, 0 or +1), which is what
makes the running-maximum pressure exact; the rare whole-schedule
shifts (``stretch``/``compress``) rebuild the aggregates outright.
"""

from __future__ import annotations

from repro.errors import MappingError

#: Bits reserved for the cycle in encoded occupancy slots; schedules
#: stay far below 2**12 cycles (lengths grow geometrically from tens).
_CYCLE_BITS = 12
_CYCLE_MASK = (1 << _CYCLE_BITS) - 1

#: Occupancy delta-log length at which ``occupy`` folds the log into a
#: fresh base token (see ``occupancy_key``).
_OCC_FOLD = 32


class CommittedState:
    """Immutable cross-block mapping state."""

    __slots__ = ("cgra", "tile_instrs", "symbol_homes")

    def __init__(self, cgra, tile_instrs=None, symbol_homes=None):
        self.cgra = cgra
        self.tile_instrs = (tuple(tile_instrs) if tile_instrs is not None
                            else (0,) * cgra.n_tiles)
        self.symbol_homes = dict(symbol_homes or {})

    def extend(self, block_usage, new_homes):
        """New state with a block's per-tile usage and homes folded in."""
        instrs = list(self.tile_instrs)
        for tile, used in enumerate(block_usage):
            instrs[tile] += used
        homes = dict(self.symbol_homes)
        for symbol, tile in new_homes.items():
            if symbol in homes and homes[symbol] != tile:
                raise MappingError(
                    f"symbol {symbol!r} re-homed from {homes[symbol]} "
                    f"to {tile}")
            homes[symbol] = tile
        return CommittedState(self.cgra, instrs, homes)

    def home_of(self, symbol):
        return self.symbol_homes.get(symbol)

    def __repr__(self):
        return (f"CommittedState(instrs={list(self.tile_instrs)}, "
                f"homes={self.symbol_homes})")


def pnop_blocks(occupied_cycles):
    """Exact number of PNOP instructions for a set of busy cycles.

    One PNOP per maximal idle run before or between instructions;
    trailing idle is free (the tile waits for the block-end broadcast).

    Reference implementation: the mapper itself tracks PNOPs
    incrementally (``PartialMapping.occupy``) and never sorts; this
    stays as the executable definition the tests check against.
    """
    if not occupied_cycles:
        return 0
    busy = sorted(occupied_cycles)
    pnops = 1 if busy[0] > 0 else 0
    for previous, current in zip(busy, busy[1:]):
        if current > previous + 1:
            pnops += 1
    return pnops


def pnop_upper_bound(n_busy, max_cycle):
    """Cheap pessimistic bound on PNOPs (the ACMAP estimate).

    With ``n_busy`` instructions whose last one sits at ``max_cycle``,
    there can be at most one gap per instruction and no more gaps than
    idle cycles in the window ``[0, max_cycle]``.
    """
    if n_busy == 0:
        return 0
    idle = max_cycle + 1 - n_busy
    return min(n_busy, idle)


class PartialMapping:
    """One explored mapping of (a prefix of) a basic block."""

    __slots__ = (
        "cgra",
        "committed",
        "length",
        "placements",
        "tile_cycles",
        "rf_avail",
        "port_events",
        "const_tiles",
        "new_homes",
        "_mov_chain",
        "n_movs",
        "blacklist",
        "_owned",
        "_occ_base",
        "_occ_delta",
        "_tile_max",
        "_tile_min",
        "_tile_pnops",
        "_tile_words",
        "_total_words",
        "_worst_pressure",
        "_n_over_exact",
        "_n_over_approx",
    )

    def __init__(self, cgra, committed, length):
        self.cgra = cgra
        self.committed = committed
        self.length = length
        #: op uid -> (tile, cycle)
        self.placements = {}
        #: tile -> {cycle: descriptor}; descriptor = ("op", uid) or
        #: ("mov", value_uid)
        self.tile_cycles = {t: {} for t in range(cgra.n_tiles)}
        #: tiles whose cycle dict is private to this instance (the
        #: copy-on-write set — see ``clone``)
        self._owned = set(self.tile_cycles)
        #: occupancy identity: pms sharing ``_occ_base`` hold exactly
        #: the base schedule plus their ``_occ_delta`` slots — the
        #: route memo keys on this instead of scanning the schedule
        self._occ_base = object()
        self._occ_delta = []
        #: value uid -> tuple of (tile, earliest readable cycle)
        self.rf_avail = {}
        #: value uid -> tuple of (tile, cycle) output-port events
        self.port_events = {}
        #: tile -> frozenset of constant values resident in its CRF
        self.const_tiles = {t: frozenset() for t in range(cgra.n_tiles)}
        #: symbols homed while mapping this block
        self.new_homes = {}
        #: (tile, cycle, value_uid) MOVs as a persistent parent-linked
        #: chain — clones share it by pointer; ``movs`` materialises it
        self._mov_chain = None
        self.n_movs = 0
        #: tiles CAB excludes from further binding (aware flow only)
        self.blacklist = frozenset()
        #: incremental PNOP accounting (kept exact by ``occupy``)
        self._tile_max = [None] * cgra.n_tiles
        self._tile_min = [None] * cgra.n_tiles
        self._tile_pnops = [0] * cgra.n_tiles
        #: incremental context words (committed + busy + PNOPs) and
        #: the aggregates the pruning stages read
        self._tile_words = list(committed.tile_instrs)
        self._init_aggregates()

    def _init_aggregates(self):
        """Derive total/worst/overflow aggregates from ``_tile_words``."""
        depths = self.cgra.cm_depths
        words = self._tile_words
        self._total_words = sum(words)
        worst = 0.0
        n_over_exact = 0
        n_over_approx = 0
        tile_cycles = self.tile_cycles
        for tile, depth in enumerate(depths):
            exact = words[tile]
            pressure = exact / depth
            if pressure > worst:
                worst = pressure
            if exact > depth:
                n_over_exact += 1
            approx = exact + 1 if tile_cycles[tile] else exact
            if approx > depth:
                n_over_approx += 1
        self._worst_pressure = worst
        self._n_over_exact = n_over_exact
        self._n_over_approx = n_over_approx

    # ------------------------------------------------------------------
    # Copy-on-extend
    # ------------------------------------------------------------------
    def clone(self):
        new = PartialMapping.__new__(PartialMapping)
        new.cgra = self.cgra
        new.committed = self.committed
        new.length = self.length
        new.placements = dict(self.placements)
        # Per-tile cycle dicts are shared copy-on-write: only the
        # outer dict is copied, and both sides give up in-place
        # mutation rights — ``occupy`` re-copies a tile's dict on the
        # first write after a clone (most candidates touch only a few
        # tiles, the clone itself is what the binder does ~100k times
        # per kernel).
        new.tile_cycles = dict(self.tile_cycles)
        new._owned = set()
        self._owned.clear()
        # Inner containers are immutable: shallow dict copies suffice.
        new.rf_avail = dict(self.rf_avail)
        new.port_events = dict(self.port_events)
        new.const_tiles = dict(self.const_tiles)
        new.new_homes = dict(self.new_homes)
        new._mov_chain = self._mov_chain
        new.n_movs = self.n_movs
        new.blacklist = self.blacklist
        new._occ_base = self._occ_base
        new._occ_delta = self._occ_delta.copy()
        new._tile_max = list(self._tile_max)
        new._tile_min = list(self._tile_min)
        new._tile_pnops = list(self._tile_pnops)
        new._tile_words = list(self._tile_words)
        new._total_words = self._total_words
        new._worst_pressure = self._worst_pressure
        new._n_over_exact = self._n_over_exact
        new._n_over_approx = self._n_over_approx
        return new

    # ------------------------------------------------------------------
    # Slots
    # ------------------------------------------------------------------
    def slot_free(self, tile, cycle):
        return cycle not in self.tile_cycles[tile]

    def occupy(self, tile, cycle, descriptor):
        cycles = self.tile_cycles[tile]
        if cycle in cycles:
            raise MappingError(
                f"slot ({tile},{cycle}) already holds {cycles[cycle]}")
        if cycle < 0:
            raise MappingError(f"negative cycle {cycle}")
        if cycle > _CYCLE_MASK:
            # The packed occupancy/routing state encodings reserve 12
            # bits for the cycle; schedules this long never map anyway
            # — fail loudly instead of silently aliasing slots.
            raise MappingError(
                f"cycle {cycle} exceeds the {_CYCLE_MASK}-cycle "
                f"schedule bound")
        if tile not in self._owned:
            cycles = dict(cycles)
            self.tile_cycles[tile] = cycles
            self._owned.add(tile)
        # Inlined exact-PNOP bookkeeping (one call frame per placed
        # instruction adds up to whole-percent map time).
        pnops = self._tile_pnops
        maximum = self._tile_max[tile]
        was_empty = maximum is None
        pnops_before = pnops[tile]
        minimum = self._tile_min[tile]
        if minimum is None or cycle < minimum:
            self._tile_min[tile] = cycle
        if was_empty:
            self._tile_max[tile] = cycle
            pnops[tile] = 1 if cycle > 0 else 0
        elif cycle > maximum:
            if cycle > maximum + 1:
                pnops[tile] += 1
            self._tile_max[tile] = cycle
        else:
            # Insertion strictly inside [0, maximum): the idle run
            # holding ``cycle`` shrinks, splits, or disappears.
            left_idle = cycle > 0 and (cycle - 1) not in cycles
            right_idle = (cycle + 1) not in cycles
            if left_idle and right_idle:
                pnops[tile] += 1
            elif not left_idle and not right_idle:
                pnops[tile] -= 1
        cycles[cycle] = descriptor
        if cycle >= self.length:
            self.length = cycle + 1
        # Occupancy identity: extend the delta log, or fold it into a
        # fresh base token once it grows past the constant bound.
        delta = self._occ_delta
        if len(delta) >= _OCC_FOLD:
            self._occ_base = object()
            delta.clear()
        else:
            delta.append((tile << _CYCLE_BITS) | cycle)
        # Context-word and pruning-aggregate maintenance.  The new
        # instruction adds one word; the PNOP delta is -1, 0 or +1, so
        # per-tile words never shrink and the running maximum pressure
        # stays exact.
        words = self._tile_words
        old = words[tile]
        new = old + 1 + pnops[tile] - pnops_before
        words[tile] = new
        self._total_words += new - old
        depth = self.cgra.cm_depths[tile]
        pressure = new / depth
        if pressure > self._worst_pressure:
            self._worst_pressure = pressure
        if old <= depth < new:
            self._n_over_exact += 1
        # The ACMAP estimate adds a one-word reserve on busy tiles.
        approx_old = old if was_empty else old + 1
        if approx_old <= depth < new + 1:
            self._n_over_approx += 1

    def occupancy_key(self, horizon):
        """Hashable identity of the issue slots below ``horizon``.

        Two partial mappings with equal keys occupy exactly the same
        slots at cycles ``< horizon``: the shared base token pins the
        schedule at the last fold point and the delta log lists every
        slot taken since.  O(len(delta)) — the route memo's key cost.
        """
        return (self._occ_base,
                frozenset(slot for slot in self._occ_delta
                          if slot & _CYCLE_MASK < horizon))

    def place_op(self, uid, tile, cycle):
        self.occupy(tile, cycle, ("op", uid))
        self.placements[uid] = (tile, cycle)

    def add_mov(self, tile, cycle, value_uid):
        self.occupy(tile, cycle, ("mov", value_uid))
        self._mov_chain = (self._mov_chain, (tile, cycle, value_uid))
        self.n_movs += 1

    @property
    def movs(self):
        """The block's MOV instructions in insertion order."""
        out = []
        chain = self._mov_chain
        while chain is not None:
            chain, entry = chain
            out.append(entry)
        out.reverse()
        return out

    # ------------------------------------------------------------------
    # Value availability events
    # ------------------------------------------------------------------
    def add_rf_event(self, value_uid, tile, cycle):
        """Value readable by ``tile``'s instructions from ``cycle`` on."""
        events = self.rf_avail.get(value_uid, ())
        for index, (event_tile, event_cycle) in enumerate(events):
            if event_tile == tile:
                if cycle < event_cycle:
                    self.rf_avail[value_uid] = (
                        events[:index] + ((tile, cycle),)
                        + events[index + 1:])
                return
        self.rf_avail[value_uid] = events + ((tile, cycle),)

    def add_port_event(self, value_uid, tile, cycle):
        """Value on ``tile``'s output port during exactly ``cycle``."""
        events = self.port_events.get(value_uid, ())
        if (tile, cycle) not in events:
            self.port_events[value_uid] = events + ((tile, cycle),)

    def record_production(self, value_uid, tile, cycle):
        """An op/MOV at (tile, cycle) produced the value.

        Equivalent to ``add_rf_event`` + ``add_port_event`` at
        ``cycle + 1``, inlined with a fast path for the overwhelmingly
        common fresh value (no prior events).
        """
        after = cycle + 1
        events = self.rf_avail.get(value_uid)
        if events is None:
            self.rf_avail[value_uid] = ((tile, after),)
        else:
            self.add_rf_event(value_uid, tile, after)
        events = self.port_events.get(value_uid)
        if events is None:
            self.port_events[value_uid] = ((tile, after),)
        elif (tile, after) not in events:
            self.port_events[value_uid] = events + ((tile, after),)

    def rf_cycle(self, value_uid, tile):
        """Earliest RF-read cycle of the value on a tile (None if absent)."""
        for event_tile, event_cycle in self.rf_avail.get(value_uid, ()):
            if event_tile == tile:
                return event_cycle
        return None

    def readable_at(self, value_uid, tile, cycle):
        """Can an instruction on ``tile`` at ``cycle`` read the value?"""
        rf = self.rf_cycle(value_uid, tile)
        if rf is not None and rf <= cycle:
            return True
        events = self.port_events.get(value_uid)
        if events:
            neighbors = self.cgra.neighbor_table[tile]
            for event_tile, event_cycle in events:
                if event_cycle == cycle and event_tile in neighbors:
                    return True
        return False

    # ------------------------------------------------------------------
    # Constants (CRF)
    # ------------------------------------------------------------------
    def register_const(self, tile, value):
        """Ensure a constant is CRF-resident; False if the CRF is full."""
        crf = self.const_tiles[tile]
        if value in crf:
            return True
        if len(crf) >= self.cgra.tile(tile).crf_words:
            return False
        self.const_tiles[tile] = crf | {value}
        return True

    # ------------------------------------------------------------------
    # Context-memory accounting
    # ------------------------------------------------------------------
    def tile_busy_count(self, tile):
        return len(self.tile_cycles[tile])

    def exact_pnops(self, tile):
        """Exact PNOP count (maintained incrementally by ``occupy``)."""
        return self._tile_pnops[tile]

    def approx_pnops(self, tile):
        """ACMAP's pessimistic estimate: current gaps plus a reserve.

        The reserve accounts for the gap the *next* placement may open
        — cheap, over-counts for finished tiles, under-counts distant
        futures, exactly the approximate behaviour Sec III-D.2
        describes (keeps some unfitting mappings, drops some fitting
        ones).
        """
        if not self.tile_cycles[tile]:
            return 0
        return self._tile_pnops[tile] + 1

    def tile_context_words(self, tile, exact=True):
        """CM words this block needs on ``tile`` so far (+ committed)."""
        words = self._tile_words[tile]
        if exact or not self.tile_cycles[tile]:
            return words
        return words + 1

    def fits_exact(self):
        """True when every tile's exact words fit its context memory."""
        return self._n_over_exact == 0

    def fits_approx(self):
        """True under ACMAP's pessimistic per-tile estimate."""
        return self._n_over_approx == 0

    def block_usage(self):
        """Per-tile CM words used by this block alone (exact PNOPs)."""
        committed = self.committed.tile_instrs
        return [self._tile_words[t] - committed[t]
                for t in range(self.cgra.n_tiles)]

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------
    def home_of(self, symbol):
        home = self.new_homes.get(symbol)
        if home is None:
            home = self.committed.home_of(symbol)
        return home

    def fix_home(self, symbol, tile):
        existing = self.home_of(symbol)
        if existing is not None and existing != tile:
            raise MappingError(
                f"symbol {symbol!r} already homed on tile {existing}")
        if existing is None:
            self.new_homes[symbol] = tile

    # ------------------------------------------------------------------
    # Schedule stretching (re-route slack transformation)
    # ------------------------------------------------------------------
    def stretch(self, delta):
        """Shift every scheduled event ``delta`` cycles later.

        Block-entry availability (cycle-0 RF events: symbol variables
        at their home tiles) does not move — those values are present
        before the block starts.
        """
        if delta <= 0:
            raise MappingError("stretch delta must be positive")
        self.length += delta
        self.placements = {uid: (tile, cycle + delta)
                           for uid, (tile, cycle) in self.placements.items()}
        self.tile_cycles = {
            tile: {cycle + delta: desc for cycle, desc in cycles.items()}
            for tile, cycles in self.tile_cycles.items()
        }
        self._owned = set(self.tile_cycles)
        self._occ_base = object()
        self._occ_delta = []
        self.rf_avail = {
            uid: tuple((tile, cycle + delta if cycle > 0 else 0)
                       for tile, cycle in events)
            for uid, events in self.rf_avail.items()
        }
        self.port_events = {
            uid: tuple((tile, cycle + delta) for tile, cycle in events)
            for uid, events in self.port_events.items()
        }
        chain = None
        for tile, cycle, uid in self.movs:
            chain = (chain, (tile, cycle + delta, uid))
        self._mov_chain = chain
        # A uniform shift preserves every inter-instruction gap; only
        # tiles that started at cycle 0 gain a leading idle run (one
        # new PNOP).  The tracked min/max make this O(1) per tile.
        for tile, minimum in enumerate(self._tile_min):
            if minimum is None:
                continue
            if minimum == 0:
                self._tile_pnops[tile] += 1
                self._tile_words[tile] += 1
            self._tile_min[tile] = minimum + delta
            self._tile_max[tile] += delta
        self._init_aggregates()

    def compress(self):
        """Trim leading and trailing idle cycles off the schedule.

        Backward scheduling anchors sinks near the allocated length,
        which can leave fully-idle cycles at the start (latency and
        leading-PNOP waste) or after the last instruction.  A uniform
        shift preserves every timing relation; block-entry events
        (cycle 0) stay put and remain valid since they only get read
        later.
        """
        occupied = [cycle for cycles in self.tile_cycles.values()
                    for cycle in cycles]
        if not occupied:
            self.length = 1
            return
        shift = min(occupied)
        if shift > 0:
            self.placements = {
                uid: (tile, cycle - shift)
                for uid, (tile, cycle) in self.placements.items()}
            self.tile_cycles = {
                tile: {cycle - shift: desc
                       for cycle, desc in cycles.items()}
                for tile, cycles in self.tile_cycles.items()}
            self._owned = set(self.tile_cycles)
            self._occ_base = object()
            self._occ_delta = []
            self.rf_avail = {
                uid: tuple((tile, cycle - shift if cycle > 0 else 0)
                           for tile, cycle in events)
                for uid, events in self.rf_avail.items()}
            self.port_events = {
                uid: tuple((tile, cycle - shift) for tile, cycle in events)
                for uid, events in self.port_events.items()}
            chain = None
            for tile, cycle, uid in self.movs:
                chain = (chain, (tile, cycle - shift, uid))
            self._mov_chain = chain
            # The shift closes each tile's leading idle run by
            # ``shift`` cycles; the PNOP disappears only on tiles
            # whose first instruction lands exactly on cycle 0.
            for tile, minimum in enumerate(self._tile_min):
                if minimum is None:
                    continue
                if minimum > 0 and minimum - shift == 0:
                    self._tile_pnops[tile] -= 1
                    self._tile_words[tile] -= 1
                self._tile_min[tile] = minimum - shift
                self._tile_max[tile] -= shift
            self._init_aggregates()
        self.length = max(occupied) - shift + 1

    # ------------------------------------------------------------------
    # Cost (pruning / final selection)
    # ------------------------------------------------------------------
    def cost(self):
        """Lexicographic cost: coarse capacity pressure, MOVs, total.

        Tile pressure is normalised by context-memory depth and
        bucketed, so on heterogeneous configurations the exploration
        prefers keeping small-CM tiles lean before it optimises MOV
        count; within a pressure bucket, fewer MOVs win.
        """
        worst = self._worst_pressure
        return (int(worst * 8), self.n_movs, worst, self._total_words)

    def __repr__(self):
        return (f"PartialMapping({len(self.placements)} ops, "
                f"{self.n_movs} movs, L={self.length})")
