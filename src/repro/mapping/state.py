"""Partial-mapping state.

A :class:`PartialMapping` is one point of the design space the binder
explores for the current basic block: operation placements, MOV
insertions, value availability events, per-tile context occupancy.
The paper's flow keeps a *set* of these alive, prunes it (stochastic /
ACMAP / ECMAP), and extends each by binding the next operation.

Cross-block state — instructions already committed to each tile's
context memory and the symbol-variable home tiles (location
constraints) — lives in the immutable :class:`CommittedState`.

Context-word accounting follows the PE contract (DESIGN.md Sec 5):
per block, a tile stores its operations and MOVs plus one PNOP per
idle gap *before or between* them; trailing idle cycles and blocks in
which the tile never wakes up cost nothing (the tile sleeps until the
global block-end broadcast).

Performance note: the binder clones a partial mapping for every
placement candidate, so per-value event containers are stored as
immutable tuples/frozensets — ``clone()`` copies only the outer dicts
(pointer copies), and updates replace the small inner values.
"""

from __future__ import annotations

from repro.errors import MappingError


class CommittedState:
    """Immutable cross-block mapping state."""

    __slots__ = ("cgra", "tile_instrs", "symbol_homes")

    def __init__(self, cgra, tile_instrs=None, symbol_homes=None):
        self.cgra = cgra
        self.tile_instrs = (tuple(tile_instrs) if tile_instrs is not None
                            else (0,) * cgra.n_tiles)
        self.symbol_homes = dict(symbol_homes or {})

    def extend(self, block_usage, new_homes):
        """New state with a block's per-tile usage and homes folded in."""
        instrs = list(self.tile_instrs)
        for tile, used in enumerate(block_usage):
            instrs[tile] += used
        homes = dict(self.symbol_homes)
        for symbol, tile in new_homes.items():
            if symbol in homes and homes[symbol] != tile:
                raise MappingError(
                    f"symbol {symbol!r} re-homed from {homes[symbol]} "
                    f"to {tile}")
            homes[symbol] = tile
        return CommittedState(self.cgra, instrs, homes)

    def home_of(self, symbol):
        return self.symbol_homes.get(symbol)

    def __repr__(self):
        return (f"CommittedState(instrs={list(self.tile_instrs)}, "
                f"homes={self.symbol_homes})")


def pnop_blocks(occupied_cycles):
    """Exact number of PNOP instructions for a set of busy cycles.

    One PNOP per maximal idle run before or between instructions;
    trailing idle is free (the tile waits for the block-end broadcast).
    """
    if not occupied_cycles:
        return 0
    busy = sorted(occupied_cycles)
    pnops = 1 if busy[0] > 0 else 0
    for previous, current in zip(busy, busy[1:]):
        if current > previous + 1:
            pnops += 1
    return pnops


def pnop_upper_bound(n_busy, max_cycle):
    """Cheap pessimistic bound on PNOPs (the ACMAP estimate).

    With ``n_busy`` instructions whose last one sits at ``max_cycle``,
    there can be at most one gap per instruction and no more gaps than
    idle cycles in the window ``[0, max_cycle]``.
    """
    if n_busy == 0:
        return 0
    idle = max_cycle + 1 - n_busy
    return min(n_busy, idle)


class PartialMapping:
    """One explored mapping of (a prefix of) a basic block."""

    __slots__ = (
        "cgra",
        "committed",
        "length",
        "placements",
        "tile_cycles",
        "rf_avail",
        "port_events",
        "const_tiles",
        "new_homes",
        "movs",
        "n_movs",
        "blacklist",
        "_tile_max",
        "_tile_pnops",
    )

    def __init__(self, cgra, committed, length):
        self.cgra = cgra
        self.committed = committed
        self.length = length
        #: op uid -> (tile, cycle)
        self.placements = {}
        #: tile -> {cycle: descriptor}; descriptor = ("op", uid) or
        #: ("mov", value_uid)
        self.tile_cycles = {t: {} for t in range(cgra.n_tiles)}
        #: value uid -> tuple of (tile, earliest readable cycle)
        self.rf_avail = {}
        #: value uid -> tuple of (tile, cycle) output-port events
        self.port_events = {}
        #: tile -> frozenset of constant values resident in its CRF
        self.const_tiles = {t: frozenset() for t in range(cgra.n_tiles)}
        #: symbols homed while mapping this block
        self.new_homes = {}
        #: list of (tile, cycle, value_uid) MOV instructions
        self.movs = []
        self.n_movs = 0
        #: tiles CAB excludes from further binding (aware flow only)
        self.blacklist = frozenset()
        #: incremental PNOP accounting (kept exact by ``occupy``)
        self._tile_max = [None] * cgra.n_tiles
        self._tile_pnops = [0] * cgra.n_tiles

    # ------------------------------------------------------------------
    # Copy-on-extend
    # ------------------------------------------------------------------
    def clone(self):
        new = PartialMapping.__new__(PartialMapping)
        new.cgra = self.cgra
        new.committed = self.committed
        new.length = self.length
        new.placements = dict(self.placements)
        new.tile_cycles = {t: dict(c) for t, c in self.tile_cycles.items()}
        # Inner containers are immutable: shallow dict copies suffice.
        new.rf_avail = dict(self.rf_avail)
        new.port_events = dict(self.port_events)
        new.const_tiles = dict(self.const_tiles)
        new.new_homes = dict(self.new_homes)
        new.movs = list(self.movs)
        new.n_movs = self.n_movs
        new.blacklist = self.blacklist
        new._tile_max = list(self._tile_max)
        new._tile_pnops = list(self._tile_pnops)
        return new

    # ------------------------------------------------------------------
    # Slots
    # ------------------------------------------------------------------
    def slot_free(self, tile, cycle):
        return cycle not in self.tile_cycles[tile]

    def occupy(self, tile, cycle, descriptor):
        cycles = self.tile_cycles[tile]
        if cycle in cycles:
            raise MappingError(
                f"slot ({tile},{cycle}) already holds {cycles[cycle]}")
        if cycle < 0:
            raise MappingError(f"negative cycle {cycle}")
        self._update_pnops(tile, cycle, cycles)
        cycles[cycle] = descriptor
        if cycle >= self.length:
            self.length = cycle + 1

    def _update_pnops(self, tile, cycle, cycles):
        """O(1) incremental update of the exact PNOP count."""
        maximum = self._tile_max[tile]
        if maximum is None:
            self._tile_max[tile] = cycle
            self._tile_pnops[tile] = 1 if cycle > 0 else 0
            return
        if cycle > maximum:
            if cycle > maximum + 1:
                self._tile_pnops[tile] += 1
            self._tile_max[tile] = cycle
            return
        # Insertion strictly inside [0, maximum): the idle run holding
        # ``cycle`` shrinks, splits, or disappears.
        left_idle = cycle > 0 and (cycle - 1) not in cycles
        right_idle = (cycle + 1) not in cycles
        if left_idle and right_idle:
            self._tile_pnops[tile] += 1
        elif not left_idle and not right_idle:
            self._tile_pnops[tile] -= 1

    def place_op(self, uid, tile, cycle):
        self.occupy(tile, cycle, ("op", uid))
        self.placements[uid] = (tile, cycle)

    def add_mov(self, tile, cycle, value_uid):
        self.occupy(tile, cycle, ("mov", value_uid))
        self.movs.append((tile, cycle, value_uid))
        self.n_movs += 1

    # ------------------------------------------------------------------
    # Value availability events
    # ------------------------------------------------------------------
    def add_rf_event(self, value_uid, tile, cycle):
        """Value readable by ``tile``'s instructions from ``cycle`` on."""
        events = self.rf_avail.get(value_uid, ())
        for index, (event_tile, event_cycle) in enumerate(events):
            if event_tile == tile:
                if cycle < event_cycle:
                    self.rf_avail[value_uid] = (
                        events[:index] + ((tile, cycle),)
                        + events[index + 1:])
                return
        self.rf_avail[value_uid] = events + ((tile, cycle),)

    def add_port_event(self, value_uid, tile, cycle):
        """Value on ``tile``'s output port during exactly ``cycle``."""
        events = self.port_events.get(value_uid, ())
        if (tile, cycle) not in events:
            self.port_events[value_uid] = events + ((tile, cycle),)

    def record_production(self, value_uid, tile, cycle):
        """An op/MOV at (tile, cycle) produced the value."""
        self.add_rf_event(value_uid, tile, cycle + 1)
        self.add_port_event(value_uid, tile, cycle + 1)

    def rf_cycle(self, value_uid, tile):
        """Earliest RF-read cycle of the value on a tile (None if absent)."""
        for event_tile, event_cycle in self.rf_avail.get(value_uid, ()):
            if event_tile == tile:
                return event_cycle
        return None

    def readable_at(self, value_uid, tile, cycle):
        """Can an instruction on ``tile`` at ``cycle`` read the value?"""
        rf = self.rf_cycle(value_uid, tile)
        if rf is not None and rf <= cycle:
            return True
        events = self.port_events.get(value_uid)
        if events:
            neighbors = self.cgra.neighbors(tile)
            for event_tile, event_cycle in events:
                if event_cycle == cycle and event_tile in neighbors:
                    return True
        return False

    # ------------------------------------------------------------------
    # Constants (CRF)
    # ------------------------------------------------------------------
    def register_const(self, tile, value):
        """Ensure a constant is CRF-resident; False if the CRF is full."""
        crf = self.const_tiles[tile]
        if value in crf:
            return True
        if len(crf) >= self.cgra.tile(tile).crf_words:
            return False
        self.const_tiles[tile] = crf | {value}
        return True

    # ------------------------------------------------------------------
    # Context-memory accounting
    # ------------------------------------------------------------------
    def tile_busy_count(self, tile):
        return len(self.tile_cycles[tile])

    def exact_pnops(self, tile):
        """Exact PNOP count (maintained incrementally by ``occupy``)."""
        return self._tile_pnops[tile]

    def approx_pnops(self, tile):
        """ACMAP's pessimistic estimate: current gaps plus a reserve.

        The reserve accounts for the gap the *next* placement may open
        — cheap, over-counts for finished tiles, under-counts distant
        futures, exactly the approximate behaviour Sec III-D.2
        describes (keeps some unfitting mappings, drops some fitting
        ones).
        """
        if not self.tile_cycles[tile]:
            return 0
        return self._tile_pnops[tile] + 1

    def tile_context_words(self, tile, exact=True):
        """CM words this block needs on ``tile`` so far (+ committed)."""
        pnops = self.exact_pnops(tile) if exact else self.approx_pnops(tile)
        return (self.committed.tile_instrs[tile]
                + self.tile_busy_count(tile) + pnops)

    def block_usage(self):
        """Per-tile CM words used by this block alone (exact PNOPs)."""
        return [self.tile_busy_count(t) + self.exact_pnops(t)
                for t in range(self.cgra.n_tiles)]

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------
    def home_of(self, symbol):
        home = self.new_homes.get(symbol)
        if home is None:
            home = self.committed.home_of(symbol)
        return home

    def fix_home(self, symbol, tile):
        existing = self.home_of(symbol)
        if existing is not None and existing != tile:
            raise MappingError(
                f"symbol {symbol!r} already homed on tile {existing}")
        if existing is None:
            self.new_homes[symbol] = tile

    # ------------------------------------------------------------------
    # Schedule stretching (re-route slack transformation)
    # ------------------------------------------------------------------
    def stretch(self, delta):
        """Shift every scheduled event ``delta`` cycles later.

        Block-entry availability (cycle-0 RF events: symbol variables
        at their home tiles) does not move — those values are present
        before the block starts.
        """
        if delta <= 0:
            raise MappingError("stretch delta must be positive")
        self.length += delta
        self.placements = {uid: (tile, cycle + delta)
                           for uid, (tile, cycle) in self.placements.items()}
        self.tile_cycles = {
            tile: {cycle + delta: desc for cycle, desc in cycles.items()}
            for tile, cycles in self.tile_cycles.items()
        }
        self.rf_avail = {
            uid: tuple((tile, cycle + delta if cycle > 0 else 0)
                       for tile, cycle in events)
            for uid, events in self.rf_avail.items()
        }
        self.port_events = {
            uid: tuple((tile, cycle + delta) for tile, cycle in events)
            for uid, events in self.port_events.items()
        }
        self.movs = [(tile, cycle + delta, uid)
                     for tile, cycle, uid in self.movs]
        # Shifting opens a leading idle run on tiles that started at
        # cycle 0; recompute the (rarely stretched) counters outright.
        for tile, cycles in self.tile_cycles.items():
            self._tile_max[tile] = max(cycles) if cycles else None
            self._tile_pnops[tile] = pnop_blocks(cycles.keys())

    def compress(self):
        """Trim leading and trailing idle cycles off the schedule.

        Backward scheduling anchors sinks near the allocated length,
        which can leave fully-idle cycles at the start (latency and
        leading-PNOP waste) or after the last instruction.  A uniform
        shift preserves every timing relation; block-entry events
        (cycle 0) stay put and remain valid since they only get read
        later.
        """
        occupied = [cycle for cycles in self.tile_cycles.values()
                    for cycle in cycles]
        if not occupied:
            self.length = 1
            return
        shift = min(occupied)
        if shift > 0:
            self.placements = {
                uid: (tile, cycle - shift)
                for uid, (tile, cycle) in self.placements.items()}
            self.tile_cycles = {
                tile: {cycle - shift: desc
                       for cycle, desc in cycles.items()}
                for tile, cycles in self.tile_cycles.items()}
            self.rf_avail = {
                uid: tuple((tile, cycle - shift if cycle > 0 else 0)
                           for tile, cycle in events)
                for uid, events in self.rf_avail.items()}
            self.port_events = {
                uid: tuple((tile, cycle - shift) for tile, cycle in events)
                for uid, events in self.port_events.items()}
            self.movs = [(tile, cycle - shift, uid)
                         for tile, cycle, uid in self.movs]
        self.length = max(occupied) - shift + 1
        for tile, cycles in self.tile_cycles.items():
            self._tile_max[tile] = max(cycles) if cycles else None
            self._tile_pnops[tile] = pnop_blocks(cycles.keys())

    # ------------------------------------------------------------------
    # Cost (pruning / final selection)
    # ------------------------------------------------------------------
    def cost(self):
        """Lexicographic cost: coarse capacity pressure, MOVs, total.

        Tile pressure is normalised by context-memory depth and
        bucketed, so on heterogeneous configurations the exploration
        prefers keeping small-CM tiles lean before it optimises MOV
        count; within a pressure bucket, fewer MOVs win.
        """
        worst = 0.0
        total = 0
        for tile in range(self.cgra.n_tiles):
            words = self.tile_context_words(tile, exact=True)
            total += words
            pressure = words / self.cgra.cm_depth(tile)
            if pressure > worst:
                worst = pressure
        return (int(worst * 8), self.n_movs, worst, total)

    def __repr__(self):
        return (f"PartialMapping({len(self.placements)} ops, "
                f"{self.n_movs} movs, L={self.length})")
