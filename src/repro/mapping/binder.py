"""Exact incremental binding (Sec III-B) with CAB awareness.

For each operation handed over by the backward list scheduler, the
binder enumerates *every* tile (and a bounded window of cycles) where
the operation can be legally placed in each live partial mapping:

- memory operations only on load-store tiles;
- the issue slot must be free;
- constants must fit the tile's constant register file;
- symbol-variable operands must be routable from their home register
  file (the *location constraints* — first touch fixes the home);
- the result must be routable to every already-placed consumer;
- memory-ordering successors bound earlier must stay strictly later.

Candidates on CAB-blacklisted tiles are skipped when the flow enables
constraint-aware binding.  The exactness of the per-operation
enumeration (nothing is skipped before the pruning stages) mirrors the
paper's exact sub-graph-match binding.
"""

from __future__ import annotations

from repro.ir import analysis, opcodes
from repro.mapping import routing


class BindContext:
    """Per-block constant data shared by all binding calls."""

    def __init__(self, dfg, cgra, options):
        self.dfg = dfg
        self.cgra = cgra
        self.options = options
        self.asap = analysis.asap_levels(dfg)
        self.ops_by_uid = {op.uid: op for op in dfg.ops}
        #: op uid -> ops consuming its result (routing targets)
        self.data_consumers = {
            op.uid: dfg.data_successors(op) for op in dfg.ops}
        #: op uid -> ops that must execute strictly later (memory order)
        self.order_successors = {op.uid: [] for op in dfg.ops}
        for op in dfg.ops:
            for earlier in op.order_after:
                self.order_successors[earlier.uid].append(op)
        #: data uid -> symbol name, for the location constraints
        self.symbol_of = {node.uid: symbol for symbol, node
                          in dfg.symbol_inputs.items()}
        #: route-query memo shared by every sibling partial mapping of
        #: this block attempt (see repro.mapping.routing)
        self.route_memo = {}
        #: hot-path copies of the flow options the binder reads per
        #: candidate
        self.cab = options.cab
        self.max_route_movs = options.max_route_movs
        #: op uid -> needs an LSU tile (precomputed opcode class)
        self.is_memory = {op.uid: opcodes.is_memory(op.opcode)
                          for op in dfg.ops}
        #: tile -> torus distance row (list index = other tile)
        self.dist_rows = [cgra.distance_row(tile)
                          for tile in range(cgra.n_tiles)]


def candidate_tiles(ctx, pm, op):
    """Tiles legal for this op under LSU and CAB constraints."""
    tiles = ctx.cgra.candidate_tiles(ctx.is_memory[op.uid])
    if ctx.cab and pm.blacklist:
        tiles = [t for t in tiles if t not in pm.blacklist]
    return tiles


def try_bind(ctx, pm, op, tile, cycle):
    """Attempt to place ``op`` at ``(tile, cycle)``; None on failure."""
    blacklist = pm.blacklist if ctx.cab else frozenset()
    candidate = pm.clone()
    candidate.place_op(op.uid, tile, cycle)
    operands = op.operands
    seen_operands = set() if len(operands) > 1 else None
    for operand in operands:
        if seen_operands is not None:
            if operand.uid in seen_operands:
                continue
            seen_operands.add(operand.uid)
        if operand.is_const:
            if not candidate.register_const(tile, operand.value):
                return None
        elif operand.is_symbol:
            symbol = ctx.symbol_of[operand.uid]
            home = candidate.home_of(symbol)
            if home is None:
                # First touch: the location constraint is fixed here.
                candidate.fix_home(symbol, tile)
                home = tile
            candidate.add_rf_event(operand.uid, home, 0)
            route = routing.route_to_operand(
                candidate, operand.uid, tile, cycle,
                ctx.max_route_movs, blacklist, ctx.route_memo)
            if route is None and blacklist:
                # Reading a symbol requires touching its home tile even
                # if CAB blacklisted it — the location constraint wins;
                # ECMAP arbitrates whether the result still fits.
                route = routing.route_to_operand(
                    candidate, operand.uid, tile, cycle,
                    ctx.max_route_movs, memo=ctx.route_memo)
            if route is None:
                return None
            routing.commit_route(candidate, operand.uid, route)
        # Op-result operands: their producers bind later (backward
        # order) and will route toward this placement.
    if op.result is not None:
        candidate.record_production(op.result.uid, tile, cycle)
        for consumer in ctx.data_consumers[op.uid]:
            placement = candidate.placements.get(consumer.uid)
            if placement is None:
                continue
            route = routing.route_to_operand(
                candidate, op.result.uid, placement[0], placement[1],
                ctx.max_route_movs, blacklist, ctx.route_memo)
            if route is None:
                return None
            routing.commit_route(candidate, op.result.uid, route)
    return candidate


def _least_used_tile(pm, blacklist):
    """Tile with the fewest context words (for fresh symbol homes)."""
    cgra = pm.cgra
    best_tile = None
    best_key = None
    for tile in range(cgra.n_tiles):
        if tile in blacklist:
            continue
        key = (pm.tile_context_words(tile, exact=True), tile)
        if best_key is None or key < best_key:
            best_key = key
            best_tile = tile
    return best_tile


def _first_free_cycle(pm, tile):
    """Earliest free issue slot on a tile (may extend the schedule)."""
    for cycle in range(pm.length):
        if pm.slot_free(tile, cycle):
            return cycle
    return pm.length


def _route_home(ctx, candidate, uid, target, blacklist):
    """Route a symbol value into its home RF.

    The schedule end is congested (backward scheduling anchors sinks
    there), so the landing deadline extends a few cycles past the
    block's last operation — the schedule grows as needed.  CAB's
    blacklist is advisory, the location constraint is not: if no route
    avoids the blacklisted tiles, retry without the blacklist and let
    ECMAP arbitrate whether the result still fits.
    """
    deadline = candidate.length + ctx.options.finalize_slack
    route = routing.route_to_rf(
        candidate, uid, target, deadline,
        ctx.max_route_movs, blacklist, ctx.route_memo)
    if route is None and blacklist:
        route = routing.route_to_rf(
            candidate, uid, target, deadline,
            ctx.max_route_movs, memo=ctx.route_memo)
    return route


def finalize_symbols(ctx, pm):
    """Discharge the block's symbol-output location constraints.

    Every symbol written by the block must end up in its home tile's
    register file by the end of the schedule; unhomed symbols get
    homed here.  Returns the finalized clone, or None if a constraint
    cannot be met (the partial mapping dies).
    """
    blacklist = pm.blacklist if ctx.options.cab else frozenset()
    candidate = pm.clone()
    for symbol, node in ctx.dfg.symbol_outputs.items():
        if node.is_symbol:
            if not _finalize_passthrough(ctx, candidate, symbol, node,
                                         blacklist):
                return None
        elif node.is_const:
            if not _finalize_const(ctx, candidate, symbol, node, blacklist):
                return None
        else:
            if not _finalize_value(ctx, candidate, symbol, node, blacklist):
                return None
    if not _rf_pressure_ok(candidate):
        return None
    return candidate


def _finalize_passthrough(ctx, candidate, symbol, node, blacklist):
    """Symbol assigned the entry value of a (possibly other) symbol."""
    source = ctx.symbol_of[node.uid]
    src_home = candidate.home_of(source)
    target = candidate.home_of(symbol)
    if src_home is None and target is None:
        tile = _least_used_tile(candidate, blacklist)
        if tile is None:
            return False
        candidate.fix_home(source, tile)
        if source != symbol:
            candidate.fix_home(symbol, tile)
        candidate.add_rf_event(node.uid, tile, 0)
        return True
    if src_home is None:
        candidate.fix_home(source, target)
        candidate.add_rf_event(node.uid, target, 0)
        return True
    candidate.add_rf_event(node.uid, src_home, 0)
    if target is None:
        candidate.fix_home(symbol, src_home)
        return True
    if target == src_home:
        return True
    route = _route_home(ctx, candidate, node.uid, target, blacklist)
    if route is None:
        return False
    routing.commit_route(candidate, node.uid, route)
    return True


def _finalize_const(ctx, candidate, symbol, node, blacklist):
    """Symbol assigned a constant: one MOV from the CRF at its home."""
    target = candidate.home_of(symbol)
    if target is None:
        target = _least_used_tile(candidate, blacklist)
        if target is None:
            return False
        candidate.fix_home(symbol, target)
    if not candidate.register_const(target, node.value):
        return False
    cycle = _first_free_cycle(candidate, target)
    candidate.add_mov(target, cycle, node.uid)
    candidate.record_production(node.uid, target, cycle)
    return True


def _finalize_value(ctx, candidate, symbol, node, blacklist):
    """Symbol assigned an op result: route it home (or home it here)."""
    placement = candidate.placements.get(node.producer.uid)
    if placement is None:
        return False
    target = candidate.home_of(symbol)
    if target is None:
        candidate.fix_home(symbol, placement[0])
        return True
    route = _route_home(ctx, candidate, node.uid, target, blacklist)
    if route is None:
        return False
    routing.commit_route(candidate, node.uid, route)
    return True


def _rf_pressure_ok(candidate):
    """Every tile's live values must fit its regular register file."""
    per_tile = [0] * candidate.cgra.n_tiles
    for events in candidate.rf_avail.values():
        for tile, _ in events:
            per_tile[tile] += 1
    return all(per_tile[t] <= candidate.cgra.tile(t).rrf_words
               for t in range(candidate.cgra.n_tiles))


def bind_candidates(ctx, pm, op, full_window=False):
    """All extensions of ``pm`` placing ``op`` (one best cycle per tile).

    Cycles are scanned latest-first within ``options.cycle_window`` so
    schedules stay tight; the earliest legal cycle is the op's ASAP
    level (its dependence depth needs that many earlier cycles).
    ``full_window`` widens the scan to the whole legal range — the
    flow's fallback before declaring a binding failure.
    """
    results = []
    earliest = ctx.asap[op.uid]
    # The consumer/successor placements bounding the cycle scan are
    # per-(pm, op): look them up once, not once per tile.
    placements_get = pm.placements.get
    consumer_places = [p for consumer in ctx.data_consumers[op.uid]
                       if (p := placements_get(consumer.uid)) is not None]
    order_bound = pm.length - 1
    for successor in ctx.order_successors[op.uid]:
        placement = placements_get(successor.uid)
        if placement is not None and placement[1] - 1 < order_bound:
            order_bound = placement[1] - 1
    dist_rows = ctx.dist_rows
    for tile in candidate_tiles(ctx, pm, op):
        row = dist_rows[tile]
        latest = order_bound
        for c_tile, c_cycle in consumer_places:
            distance = row[c_tile]
            bound = c_cycle - (distance if distance > 1 else 1)
            if bound < latest:
                latest = bound
        if latest < earliest:
            continue
        if full_window:
            window_floor = earliest
        else:
            window_floor = max(earliest,
                               latest - ctx.options.cycle_window + 1)
        occupied = pm.tile_cycles[tile]
        for cycle in range(latest, window_floor - 1, -1):
            if cycle in occupied:
                continue
            candidate = try_bind(ctx, pm, op, tile, cycle)
            if candidate is not None:
                results.append(candidate)
                break
    return results
