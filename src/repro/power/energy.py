"""Activity-based energy model (the PrimePower substitute).

``EnergyModel.cgra_energy`` prices a CGRA run from its
:class:`~repro.sim.activity.ActivityCounters`; ``cpu_energy`` prices a
CPU run from its dynamic instruction mix.  Both return an
:class:`EnergyBreakdown` so experiments can report where the joules
went (the paper's Table II is totals; the breakdown backs the
analysis sentences around it).
"""

from __future__ import annotations

from repro.ir.opcodes import Opcode
from repro.power import tech


class EnergyBreakdown:
    """Energy by component, in picojoule."""

    def __init__(self, parts):
        self.parts = dict(parts)

    @property
    def total_pj(self):
        return sum(self.parts.values())

    @property
    def total_uj(self):
        return self.total_pj * 1e-6

    def fraction(self, name):
        total = self.total_pj
        return self.parts.get(name, 0.0) / total if total else 0.0

    def __repr__(self):
        items = ", ".join(f"{k}={v:.0f}pJ" for k, v in self.parts.items())
        return f"EnergyBreakdown({items})"


class EnergyModel:
    """Prices executions at the tech constants of :mod:`repro.power.tech`."""

    def __init__(self, cgra=None):
        self.cgra = cgra

    # ------------------------------------------------------------------
    def cgra_energy(self, activity, cgra=None):
        """Energy of a CGRA run from its activity counters."""
        cgra = cgra or self.cgra
        if cgra is None:
            raise ValueError("no CGRA configuration given")
        cm = 0.0
        compute = 0.0
        operands = 0.0
        gated = 0.0
        for index, tile in enumerate(activity.tiles):
            depth = cgra.cm_depth(index)
            cm += tile.cm_reads * tech.cm_read_pj(depth)
            cm += (tile.active_cycles + tile.pnop_fetches) * tech.DECODE_PJ
            compute += tile.alu_ops * tech.ALU_PJ
            compute += tile.mul_ops * tech.MUL_PJ
            compute += tile.mov_ops * tech.MOV_PJ
            compute += tile.br_ops * tech.BR_PJ
            compute += (tile.loads + tile.stores) * tech.LSU_ISSUE_PJ
            operands += tile.rf_reads * tech.RF_READ_PJ
            operands += tile.rf_writes * tech.RF_WRITE_PJ
            operands += tile.crf_reads * tech.CRF_READ_PJ
            operands += tile.port_reads * tech.PORT_READ_PJ
            gated += tile.gated_cycles * tech.GATED_CYCLE_PJ
            gated += tile.idle_cycles * tech.IDLE_CYCLE_PJ
        memory = (activity.dmem_reads * tech.DMEM_READ_PJ
                  + activity.dmem_writes * tech.DMEM_WRITE_PJ)
        control = activity.block_transitions * tech.BLOCK_TRANSITION_PJ
        leakage = activity.cycles * (
            sum(tech.tile_leak_pj(cgra.cm_depth(t))
                for t in range(cgra.n_tiles))
            + tech.SHARED_LEAK_PJ)
        return EnergyBreakdown({
            "context_memory": cm,
            "compute": compute,
            "operands": operands,
            "gated": gated,
            "data_memory": memory,
            "control": control,
            "leakage": leakage,
        })

    # ------------------------------------------------------------------
    def cpu_energy(self, cpu_result):
        """Energy of a CPU run from its dynamic instruction mix."""
        fetch = 0.0
        compute = 0.0
        memory = 0.0
        counts = cpu_result.op_counts
        for opcode, count in counts.items():
            fetch += count * (tech.CPU_FETCH_PJ + tech.CPU_DECODE_PJ
                              + tech.CPU_RF_PJ)
            if opcode is Opcode.LOAD:
                memory += count * tech.CPU_LOAD_PJ
            elif opcode is Opcode.STORE:
                memory += count * tech.CPU_STORE_PJ
            elif opcode is Opcode.BR:
                compute += count * tech.CPU_BRANCH_PJ
            elif opcode is Opcode.MUL:
                compute += count * tech.CPU_MUL_PJ
            else:
                compute += count * tech.CPU_ALU_PJ
        # Control overhead instructions (jumps between blocks).
        blocks = sum(cpu_result.block_counts.values())
        fetch += blocks * (tech.CPU_FETCH_PJ + tech.CPU_DECODE_PJ)
        compute += blocks * tech.CPU_BRANCH_PJ
        leakage = cpu_result.cycles * tech.CPU_LEAK_PJ
        return EnergyBreakdown({
            "fetch": fetch,
            "compute": compute,
            "data_memory": memory,
            "leakage": leakage,
        })
