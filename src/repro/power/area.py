"""Area model (the Design Compiler substitute) — Fig 11.

Component-level area for any CGRA configuration and the or1k baseline.
Anchors from the paper:

- a 64-word context memory is ~40% of its PE (Sec I) — encoded in
  ``AREA_PE_BASE_UM2 == 96 * AREA_CM_WORD_UM2``;
- the CPU side of the comparison carries 32 kB data memory, 4 kB
  context memory and 1 kB instruction cache (Sec IV-C);
- both systems share the same 32 kB data memory provision.

The headline Fig 11 shape: HOM64 about twice the CPU area, the HET
configurations markedly smaller thanks to the shrunken context
memories.
"""

from __future__ import annotations

from repro.power import tech


class AreaModel:
    """Area breakdowns in mm^2."""

    UM2_PER_MM2 = 1e6

    def cgra_breakdown(self, cgra):
        """Component areas of a CGRA configuration (mm^2)."""
        pe_logic = cgra.n_tiles * tech.AREA_PE_BASE_UM2
        cm = cgra.total_cm_words * tech.AREA_CM_WORD_UM2
        network = (cgra.n_tiles * tech.AREA_TILE_NETWORK_UM2
                   + tech.AREA_CGRA_SHARED_UM2)
        dmem = tech.DATA_MEMORY_BYTES * tech.AREA_SRAM_UM2_PER_BYTE
        return {
            "pe_logic": pe_logic / self.UM2_PER_MM2,
            "context_memory": cm / self.UM2_PER_MM2,
            "interconnect": network / self.UM2_PER_MM2,
            "data_memory": dmem / self.UM2_PER_MM2,
        }

    def cpu_breakdown(self):
        """Component areas of the or1k baseline (mm^2)."""
        core = tech.AREA_CPU_CORE_UM2
        imem = tech.CPU_IMEM_BYTES * tech.AREA_SRAM_UM2_PER_BYTE
        cmem = tech.CPU_CM_BYTES * tech.AREA_SRAM_UM2_PER_BYTE
        dmem = tech.DATA_MEMORY_BYTES * tech.AREA_SRAM_UM2_PER_BYTE
        return {
            "core": core / self.UM2_PER_MM2,
            "icache": imem / self.UM2_PER_MM2,
            "context_memory": cmem / self.UM2_PER_MM2,
            "data_memory": dmem / self.UM2_PER_MM2,
        }

    def cgra_total(self, cgra):
        return sum(self.cgra_breakdown(cgra).values())

    def cpu_total(self):
        return sum(self.cpu_breakdown().values())

    def ratio_to_cpu(self, cgra):
        """The Fig 11 headline: CGRA area / CPU area."""
        return self.cgra_total(cgra) / self.cpu_total()


def cgra_area(cgra):
    """Total area of a CGRA configuration (mm^2)."""
    return AreaModel().cgra_total(cgra)


def cpu_area():
    """Total area of the or1k baseline (mm^2)."""
    return AreaModel().cpu_total()
