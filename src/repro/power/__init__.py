"""28nm FD-SOI energy and area models.

Substitute for the paper's Synopsys Design Compiler (area) and
PrimePower (energy) runs at 0.6V / 25C / typical corner:

- :mod:`repro.power.tech` — all technology constants in one place,
  with the calibration anchors documented;
- :mod:`repro.power.energy` — activity-based energy: per-event
  dynamic energies plus area-proportional leakage;
- :mod:`repro.power.area` — component-level area for every Table I
  configuration and the or1k baseline (Fig 11);
- :mod:`repro.power.report` — kernel-level energy accounting used by
  the Table II benchmark.
"""

from repro.power.energy import EnergyModel, EnergyBreakdown
from repro.power.area import AreaModel, cgra_area, cpu_area
from repro.power.report import (
    KernelEnergyRecord,
    record_cgra_run,
    record_cpu_run,
)

__all__ = [
    "EnergyModel",
    "EnergyBreakdown",
    "AreaModel",
    "cgra_area",
    "cpu_area",
    "KernelEnergyRecord",
    "record_cgra_run",
    "record_cpu_run",
]
