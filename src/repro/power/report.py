"""Kernel-level energy accounting helpers.

Bundles the pieces the Table II benchmark and the ``energy`` CLI
command share: run a kernel on a backend, price it, and produce a
comparable record.
"""

from __future__ import annotations

from repro.power.energy import EnergyModel


class KernelEnergyRecord:
    """One backend's energy/latency record for a kernel."""

    __slots__ = ("label", "cycles", "breakdown")

    def __init__(self, label, cycles, breakdown):
        self.label = label
        self.cycles = cycles
        self.breakdown = breakdown

    @property
    def total_uj(self):
        return self.breakdown.total_uj

    def gain_over(self, other):
        """How many times less energy than ``other`` (bigger=better)."""
        if self.total_uj == 0:
            return 0.0
        return other.total_uj / self.total_uj

    def dominant_component(self):
        """The component consuming the largest share."""
        return max(self.breakdown.parts, key=self.breakdown.parts.get)

    def __repr__(self):
        return (f"KernelEnergyRecord({self.label}: "
                f"{self.total_uj:.4f} uJ / {self.cycles} cycles)")


def record_cgra_run(label, run, cgra):
    """Price a CGRA run into a record."""
    breakdown = EnergyModel().cgra_energy(run.activity, cgra)
    return KernelEnergyRecord(label, run.cycles, breakdown)


def record_cpu_run(label, run):
    """Price a CPU run into a record."""
    breakdown = EnergyModel().cpu_energy(run)
    return KernelEnergyRecord(label, run.cycles, breakdown)
