"""Technology constants (28nm UTBB FD-SOI, 0.6V, 25C, typical).

The paper synthesises the CGRA and the or1k with Design Compiler and
measures power with PrimePower; we replace both with an analytic model.
Every constant lives here so the calibration is auditable.  Absolute
values are plausible near-threshold figures; what the experiments
actually rely on are the *relations* the paper anchors:

- a 64-word context memory is ~40% of a PE's area (Sec I);
- context-memory read energy and leakage grow with depth (bitline
  length), so CM-16/CM-32 tiles are cheaper per fetch and per idle
  cycle than CM-64 tiles;
- the or1k pays instruction-cache fetch + decode + pipeline control
  per instruction — the overhead the CGRA amortises into its context
  memories (configured once, fetched locally);
- clock-gated PNOP/idle cycles cost almost nothing (the PMU counter).

Energies in picojoule, areas in square micrometre, clock 100 MHz.
"""

#: Nominal operating point.
SUPPLY_V = 0.6
CLOCK_MHZ = 100.0

# ----------------------------------------------------------------------
# CGRA tile: dynamic energy per event (pJ)
# ----------------------------------------------------------------------
#: context fetch = sense the 20-bit word; grows with depth
CM_READ_BASE_PJ = 0.40
CM_READ_PER_WORD_PJ = 0.050
#: instruction decode + issue control
DECODE_PJ = 0.35
#: functional unit events
ALU_PJ = 0.90
MUL_PJ = 2.40
MOV_PJ = 0.45
BR_PJ = 0.45
#: register files / operand network
RF_READ_PJ = 0.25
RF_WRITE_PJ = 0.30
CRF_READ_PJ = 0.25
PORT_READ_PJ = 0.20
#: LSU issue overhead (address handshake into the log interconnect)
LSU_ISSUE_PJ = 0.50
#: clock-gated cycles: the PMU counter ticks, everything else is off
GATED_CYCLE_PJ = 0.04
IDLE_CYCLE_PJ = 0.02

# ----------------------------------------------------------------------
# Shared CGRA resources
# ----------------------------------------------------------------------
#: TCDM access through the logarithmic interconnect (per word)
DMEM_READ_PJ = 2.20
DMEM_WRITE_PJ = 2.00
#: global controller work per block transition (broadcast, jumps)
BLOCK_TRANSITION_PJ = 1.20

# ----------------------------------------------------------------------
# Leakage (pJ per cycle @ 100 MHz, i.e. nW / 100)
# ----------------------------------------------------------------------
#: PE without its CM (ALU, register files, decoder, controller)
TILE_LEAK_BASE_PJ = 0.08
#: per CM word — the dominant term the HET configurations attack
TILE_LEAK_PER_CM_WORD_PJ = 0.030
#: data memory + interconnect + global controller
SHARED_LEAK_PJ = 0.80

# ----------------------------------------------------------------------
# or1k CPU: dynamic energy per event (pJ)
# ----------------------------------------------------------------------
#: instruction fetch from the 1 kB I$ (hit) + PC/branch logic
CPU_FETCH_PJ = 18.0
#: decode, pipeline registers, bypass/control
CPU_DECODE_PJ = 10.0
#: 3-port register file access per instruction
CPU_RF_PJ = 4.0
CPU_ALU_PJ = 1.00
CPU_MUL_PJ = 2.60
#: 32 kB data memory access
CPU_LOAD_PJ = 12.0
CPU_STORE_PJ = 10.0
#: taken-branch redirect/flush
CPU_BRANCH_PJ = 6.0
#: core + caches + data memory leakage per cycle
CPU_LEAK_PJ = 8.0

# ----------------------------------------------------------------------
# Area (um^2)
# ----------------------------------------------------------------------
#: Context memories are flop-based register files (20-bit words with
#: per-word decode), far denser in energy than in area — hence the
#: large per-word footprint.  Calibrated with two anchors: a 64-word
#: CM is 40% of the PE (Sec I), and the HOM64 CGRA is ~2x the CPU
#: (Fig 11).  PE_BASE == 96 * CM word area encodes the first anchor.
AREA_CM_WORD_UM2 = 110.0
AREA_PE_BASE_UM2 = 96 * AREA_CM_WORD_UM2  # = 10560 um^2
#: torus links + output registers per tile
AREA_TILE_NETWORK_UM2 = 260.0
#: shared: logarithmic interconnect, CGRA controller, global CM
AREA_CGRA_SHARED_UM2 = 21000.0
#: SRAM density for the bulk memories
AREA_SRAM_UM2_PER_BYTE = 4.4
#: data memory shared by both systems (32 kB)
DATA_MEMORY_BYTES = 32 * 1024

#: or1k core logic (pipeline, mul, caches control)
AREA_CPU_CORE_UM2 = 59000.0
#: CPU-side memories from the paper's comparison setup
CPU_IMEM_BYTES = 1024          # 1 kB instruction cache
CPU_CM_BYTES = 4 * 1024        # 4 kB "context memory" equivalent


def cm_read_pj(depth):
    """Energy of one context fetch from a CM of ``depth`` words."""
    return CM_READ_BASE_PJ + CM_READ_PER_WORD_PJ * depth


def tile_leak_pj(depth):
    """Per-cycle leakage of one tile with a ``depth``-word CM."""
    return TILE_LEAK_BASE_PJ + TILE_LEAK_PER_CM_WORD_PJ * depth
