"""Processing element (tile) description.

Fig 1(b) of the paper: ALU, LSU (on some tiles), regular register file
(RRF), constant register file (CRF), context memory (CM), decoder,
controller, jump register and a clock-gating PMU.  For the mapper only
four properties matter: the CM depth (the budget being optimised), the
LSU flag (LOAD/STORE legality), and the register-file capacities.
"""

from __future__ import annotations

from repro.errors import ArchitectureError

#: Instruction word width in bits (Sec IV-C: "20x64-bit CM" reads as
#: 64 words of 20 bits; the assembler packs instructions to this width).
CONTEXT_WORD_BITS = 20

#: Regular register file: 32 words (paper: 32x8-bit entries).
DEFAULT_RRF_WORDS = 32

#: Constant register file: 32 words (paper: 32x16-bit entries).
DEFAULT_CRF_WORDS = 32


class PE:
    """One tile of the CGRA."""

    __slots__ = ("index", "row", "col", "cm_depth", "has_lsu",
                 "rrf_words", "crf_words")

    def __init__(self, index, row, col, cm_depth, has_lsu,
                 rrf_words=DEFAULT_RRF_WORDS, crf_words=DEFAULT_CRF_WORDS):
        if cm_depth <= 0:
            raise ArchitectureError(f"tile {index}: cm_depth must be > 0")
        if rrf_words <= 0 or crf_words <= 0:
            raise ArchitectureError(f"tile {index}: register files must be > 0")
        self.index = index
        self.row = row
        self.col = col
        self.cm_depth = cm_depth
        self.has_lsu = has_lsu
        self.rrf_words = rrf_words
        self.crf_words = crf_words

    @property
    def name(self):
        """Paper-style 1-based tile name (T1..T16)."""
        return f"T{self.index + 1}"

    def __repr__(self):
        lsu = "+LSU" if self.has_lsu else ""
        return (f"PE({self.name}@({self.row},{self.col}), "
                f"CM{self.cm_depth}{lsu})")
