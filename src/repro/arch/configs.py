"""Table I of the paper: the four context-memory configurations.

All four target the same 4x4 torus with eight load-store tiles
(paper tiles 1-8, i.e. indices 0-7 — the top two rows).

==========  =================  ==============  ==============  =====
Config      tiles with CM 64   tiles with CM32  tiles with CM16  Total
==========  =================  ==============  ==============  =====
HOM64       1-16                                               1024
HOM32                          1-16                             512
HET1        1-4                5-8, 13-16      9-12             576
HET2        1-4                5-8             9-16             512
==========  =================  ==============  ==============  =====

(The table uses the paper's 1-based tile numbering.)
"""

from __future__ import annotations

from repro.errors import ArchitectureError
from repro.arch.cgra import CGRA

ROWS = 4
COLS = 4
#: Load-store tiles: paper tiles 1-8 (indices 0-7).
LSU_TILES = tuple(range(8))


def _depths(spec):
    """Expand {depth: [1-based tile numbers]} into a 16-entry list."""
    depths = [None] * (ROWS * COLS)
    for depth, tile_numbers in spec.items():
        for number in tile_numbers:
            index = number - 1
            if depths[index] is not None:
                raise ArchitectureError(
                    f"tile {number} assigned two CM depths")
            depths[index] = depth
    if any(d is None for d in depths):
        missing = [i + 1 for i, d in enumerate(depths) if d is None]
        raise ArchitectureError(f"tiles without CM depth: {missing}")
    return depths


def _hom(name, depth):
    return CGRA(name, ROWS, COLS, [depth] * (ROWS * COLS), LSU_TILES)


def _het(name, spec):
    return CGRA(name, ROWS, COLS, _depths(spec), LSU_TILES)


HOM64 = _hom("HOM64", 64)
HOM32 = _hom("HOM32", 32)
HET1 = _het("HET1", {
    64: range(1, 5),
    32: list(range(5, 9)) + list(range(13, 17)),
    16: range(9, 13),
})
HET2 = _het("HET2", {
    64: range(1, 5),
    32: range(5, 9),
    16: range(9, 17),
})

#: The Table I configurations, keyed by name.
CGRA_CONFIGS = {
    "HOM64": HOM64,
    "HOM32": HOM32,
    "HET1": HET1,
    "HET2": HET2,
}

#: Paper Table I 'Total' column, used as a regression check.
EXPECTED_TOTALS = {"HOM64": 1024, "HOM32": 512, "HET1": 576, "HET2": 512}


def get_config(name):
    """Look up a Table I configuration by (case-insensitive) name."""
    try:
        return CGRA_CONFIGS[name.upper()]
    except KeyError:
        raise ArchitectureError(
            f"unknown configuration {name!r}; "
            f"choose from {sorted(CGRA_CONFIGS)}") from None


def default_lsu_tiles(rows=ROWS, cols=COLS):
    """Load-store tiles for an arbitrary array shape.

    The paper's convention generalised: the top two rows carry the
    LSUs (arrays shorter than two rows make every tile an LSU tile).
    For the 4x4 default this is exactly :data:`LSU_TILES`.
    """
    return tuple(range(min(2, rows) * cols))


def make_cgra(name="custom", rows=ROWS, cols=COLS, cm_depths=None,
              lsu_tiles=LSU_TILES, data_memory_words=8192):
    """Build a custom CGRA (e.g. for design-space exploration)."""
    if cm_depths is None:
        cm_depths = [64] * (rows * cols)
    return CGRA(name, rows, cols, list(cm_depths), lsu_tiles,
                data_memory_words)
