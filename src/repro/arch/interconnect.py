"""2D-mesh torus interconnect between tiles.

Tiles are indexed row-major; each tile's output port feeds its four
torus neighbours (wrap-around in both dimensions).  On a 4x4 torus the
per-dimension distance is ``min(d, n - d) <= 2`` and the diameter is 4.
"""

from __future__ import annotations

from repro.errors import ArchitectureError


class TorusInterconnect:
    """Neighbourhoods and hop distances on an ``rows x cols`` torus."""

    def __init__(self, rows, cols):
        if rows <= 0 or cols <= 0:
            raise ArchitectureError("torus dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._neighbors = {}
        for index in range(rows * cols):
            self._neighbors[index] = self._compute_neighbors(index)
        # Hop distances are looked up on every routing bound check, so
        # the full n x n table is materialised once per interconnect.
        self._distances = tuple(
            tuple(self._compute_distance(a, b)
                  for b in range(rows * cols))
            for a in range(rows * cols))

    # ------------------------------------------------------------------
    def index(self, row, col):
        """Row-major tile index with torus wrap."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def coords(self, index):
        """(row, col) of a tile index."""
        if not 0 <= index < self.rows * self.cols:
            raise ArchitectureError(f"tile index {index} out of range")
        return divmod(index, self.cols)

    def _compute_neighbors(self, index):
        row, col = self.coords(index)
        candidates = [
            self.index(row - 1, col),
            self.index(row + 1, col),
            self.index(row, col - 1),
            self.index(row, col + 1),
        ]
        # On degenerate tori (n<=2) wrap-around can alias; dedupe and
        # never include the tile itself.
        ordered = []
        for candidate in candidates:
            if candidate != index and candidate not in ordered:
                ordered.append(candidate)
        return tuple(ordered)

    def neighbors(self, index):
        """Tiles whose input muxes see ``index``'s output port."""
        return self._neighbors[index]

    def are_neighbors(self, a, b):
        return b in self._neighbors[a]

    def _compute_distance(self, a, b):
        ra, ca = self.coords(a)
        rb, cb = self.coords(b)
        dr = abs(ra - rb)
        dc = abs(ca - cb)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    def distance(self, a, b):
        """Minimal hop count between two tiles on the torus."""
        return self._distances[a][b]

    def distance_row(self, a):
        """Tuple of hop distances from ``a`` to every tile."""
        return self._distances[a]

    @property
    def n_tiles(self):
        return self.rows * self.cols

    def __repr__(self):
        return f"TorusInterconnect({self.rows}x{self.cols})"
