"""Architecture model of the target CGRA.

The paper's CGRA (Sec II, Fig 1): a 4x4 grid of tiles interconnected
by a 2D-mesh torus.  Each tile holds an ALU, a regular register file
(RRF), a constant register file (CRF), its own context memory (CM),
decoder and controller; eight tiles additionally hold load-store units
reaching a shared data memory through a logarithmic interconnect.

- :mod:`repro.arch.pe` — a single processing element description;
- :mod:`repro.arch.interconnect` — torus neighbourhoods and distances;
- :mod:`repro.arch.cgra` — the assembled array;
- :mod:`repro.arch.configs` — Table I (HOM64, HOM32, HET1, HET2).
"""

from repro.arch.pe import PE
from repro.arch.interconnect import TorusInterconnect
from repro.arch.cgra import CGRA
from repro.arch.configs import CGRA_CONFIGS, get_config, make_cgra

__all__ = [
    "PE",
    "TorusInterconnect",
    "CGRA",
    "CGRA_CONFIGS",
    "get_config",
    "make_cgra",
]
