"""The assembled CGRA array.

A :class:`CGRA` bundles the grid of PEs, the torus interconnect and the
global parameters (data-memory size, name of the configuration).  It is
a pure description — execution state lives in :mod:`repro.sim`.
"""

from __future__ import annotations

from repro.errors import ArchitectureError
from repro.arch.interconnect import TorusInterconnect
from repro.arch.pe import PE


class CGRA:
    """Immutable description of one CGRA configuration."""

    def __init__(self, name, rows, cols, cm_depths, lsu_tiles,
                 data_memory_words=8192):
        if len(cm_depths) != rows * cols:
            raise ArchitectureError(
                f"{name}: expected {rows * cols} CM depths, "
                f"got {len(cm_depths)}")
        self.name = name
        self.interconnect = TorusInterconnect(rows, cols)
        lsu_set = set(lsu_tiles)
        unknown = lsu_set - set(range(rows * cols))
        if unknown:
            raise ArchitectureError(
                f"{name}: LSU tiles out of range: {sorted(unknown)}")
        self.tiles = []
        for index in range(rows * cols):
            row, col = self.interconnect.coords(index)
            self.tiles.append(
                PE(index, row, col, cm_depths[index], index in lsu_set))
        self.data_memory_words = data_memory_words
        # Hot-path caches: the mapper reads CM depths, neighbourhoods,
        # candidate tile lists and hop distances millions of times per
        # kernel.
        self.cm_depths = tuple(pe.cm_depth for pe in self.tiles)
        self.neighbor_table = {
            index: self.interconnect.neighbors(index)
            for index in range(rows * cols)}
        self._distances = self.interconnect._distances
        self._all_tiles = tuple(range(rows * cols))
        self._lsu_tiles = tuple(pe.index for pe in self.tiles
                                if pe.has_lsu)

    # ------------------------------------------------------------------
    @property
    def rows(self):
        return self.interconnect.rows

    @property
    def cols(self):
        return self.interconnect.cols

    @property
    def n_tiles(self):
        return len(self.tiles)

    @property
    def lsu_tiles(self):
        """Indices of tiles that can execute LOAD/STORE."""
        return self._lsu_tiles

    @property
    def total_cm_words(self):
        """Total context-memory capacity (the Table I 'Total' column)."""
        return sum(pe.cm_depth for pe in self.tiles)

    def tile(self, index):
        return self.tiles[index]

    def cm_depth(self, index):
        return self.cm_depths[index]

    def neighbors(self, index):
        return self.interconnect.neighbors(index)

    def distance(self, a, b):
        return self._distances[a][b]

    def distance_row(self, a):
        """Tuple of hop distances from tile ``a`` to every tile."""
        return self._distances[a]

    def candidate_tiles(self, needs_lsu):
        """Tiles legal for an operation class, LSU-first for memory ops."""
        if needs_lsu:
            return self._lsu_tiles
        return self._all_tiles

    def __repr__(self):
        return (f"CGRA({self.name}: {self.rows}x{self.cols}, "
                f"CM total {self.total_cm_words})")
