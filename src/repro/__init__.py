"""repro — reproduction of Das, Martin & Coussy, DATE 2019.

*Context-memory Aware Mapping for Energy Efficient Acceleration with
CGRAs.*

The package provides, from scratch:

- a CDFG intermediate representation and kernel-building DSL
  (:mod:`repro.ir`);
- the target CGRA architecture model — 4x4 torus of PEs with per-tile
  context memories, Table I configurations (:mod:`repro.arch`);
- the basic mapping flow of Das et al. TCAD'18 and the paper's
  context-memory-aware extensions — weighted traversal, ACMAP, ECMAP,
  CAB (:mod:`repro.mapping`);
- an assembler and binary encoder for 20-bit context words
  (:mod:`repro.codegen`);
- cycle-level CGRA and or1k-like CPU simulators (:mod:`repro.sim`);
- 28nm FD-SOI energy and area models (:mod:`repro.power`);
- the seven evaluation kernels (:mod:`repro.kernels`);
- experiment drivers regenerating every figure and table
  (:mod:`repro.eval`).

Quickstart::

    from repro import map_kernel, CGRA_CONFIGS
    from repro.kernels import get_kernel

    kernel = get_kernel("fir")
    result = map_kernel(kernel.cdfg, CGRA_CONFIGS["HET1"],
                        context_aware=True)
    print(result.summary())
"""

from repro.arch.configs import CGRA_CONFIGS, get_config
from repro.errors import (
    MappingError,
    ReproError,
    UnmappableError,
)

__version__ = "1.0.0"


def __getattr__(name):
    # Lazy imports keep `import repro` light and avoid import cycles
    # between the architecture and mapping layers.
    if name in ("FlowOptions", "map_kernel"):
        from repro.mapping import flow

        return getattr(flow, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CGRA_CONFIGS",
    "get_config",
    "FlowOptions",
    "map_kernel",
    "MappingError",
    "ReproError",
    "UnmappableError",
    "__version__",
]
