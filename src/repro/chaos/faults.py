"""The ``REPRO_FAULT`` grammar and the injection hooks.

Grammar (clauses separated by ``;``, parameters by ``,``)::

    REPRO_FAULT="worker_crash:p=0.05;point_hang:p=0.01,seconds=60;
                 cache_corrupt:p=0.02;http_cut:p=0.05;seed=7"

- ``worker_crash`` — the worker process computing a point calls
  ``os._exit`` mid-compute, breaking the process pool exactly like a
  segfault or the OOM killer would.
- ``point_hang`` — the worker stalls ``seconds`` (default 3600)
  before computing, wedging the point past any ``--point-timeout``.
- ``cache_corrupt`` — a result-cache entry is garbled on disk just
  before it is read, exercising the corrupt-entry discard path.
- ``http_cut`` — a serve-client request fails with a connection
  error before reaching the server, exercising dispatch retries.
- ``seed=N`` — perturbs every decision hash (default 0).

Every clause takes ``p`` (injection probability, required) and
optionally ``attempts=N``: inject only on the first ``N`` attempts
of a subject, which is how a test scripts "crash once, then heal".

Decisions are pure hashes — no RNG state, no ordering sensitivity —
keyed per subject: a point fault is keyed by ``spec.describe()``
plus the attempt number stamped by the resubmitting supervisor, a
cache fault by the entry key, an HTTP fault by the request path plus
a per-path call counter.  The process-level faults only ever fire
inside a real worker child (``multiprocessing.parent_process()`` is
set); an inline compute in the main process is never crashed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import threading
import time

from repro.errors import ReproError

ENV_FAULT = "REPRO_FAULT"

#: Fault kinds the grammar accepts, and where each one is injected.
FAULT_KINDS = ("worker_crash", "point_hang", "cache_corrupt", "http_cut")

#: Exit status of an injected worker crash — distinctive in ``wait``
#: output, and far from the interpreter's own 0/1/2 conventions.
CRASH_EXIT_CODE = 87

#: Default stall of ``point_hang`` when ``seconds=`` is not given:
#: effectively forever next to any sane point deadline.
DEFAULT_HANG_SECONDS = 3600.0


@dataclasses.dataclass(frozen=True)
class FaultClause:
    """One parsed ``kind:p=...`` clause of a fault plan."""

    kind: str
    probability: float
    attempts: int | None = None
    seconds: float = DEFAULT_HANG_SECONDS

    def describe(self):
        text = f"{self.kind}:p={self.probability:g}"
        if self.attempts is not None:
            text += f",attempts={self.attempts}"
        if self.kind == "point_hang" and \
                self.seconds != DEFAULT_HANG_SECONDS:
            text += f",seconds={self.seconds:g}"
        return text


class FaultPlan:
    """A parsed fault plan: per-kind clauses plus the decision seed."""

    def __init__(self, clauses, seed=0):
        self.clauses = {clause.kind: clause for clause in clauses}
        self.seed = seed

    def clause(self, kind):
        return self.clauses.get(kind)

    def should(self, kind, key, attempt=0):
        """Deterministically decide one injection.

        ``key`` identifies the subject (spec description, cache key,
        request path); ``attempt`` is the 0-based retry ordinal so a
        resubmitted subject re-rolls rather than deterministically
        dying forever — unless the clause pins ``attempts``, in which
        case later attempts are never injected (the "heals on retry"
        script used by the chaos harness and CI).
        """
        clause = self.clauses.get(kind)
        if clause is None or clause.probability <= 0:
            return False
        if clause.attempts is not None and attempt >= clause.attempts:
            return False
        digest = hashlib.sha256(
            f"{self.seed}|{kind}|{key}|{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return fraction < clause.probability

    def describe(self):
        """Canonical grammar text that re-parses to this plan."""
        parts = [self.clauses[kind].describe()
                 for kind in FAULT_KINDS if kind in self.clauses]
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)


def parse_fault_plan(text):
    """Parse a ``REPRO_FAULT`` string; None when empty.

    Raises :class:`~repro.errors.ReproError` on an unknown fault
    kind, a malformed parameter or a probability outside ``[0, 1]``
    — a chaos run with a typo'd plan must refuse to start, not
    silently inject nothing.
    """
    clauses = []
    seed = 0
    for raw in (text or "").split(";"):
        raw = raw.strip()
        if not raw:
            continue
        if raw.startswith("seed="):
            try:
                seed = int(raw[len("seed="):])
            except ValueError:
                raise ReproError(f"bad fault seed: {raw!r}") from None
            continue
        kind, separator, params = raw.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})")
        if not separator:
            raise ReproError(
                f"fault clause {raw!r} needs parameters, e.g. "
                f"{kind}:p=0.05")
        fields = {}
        for param in params.split(","):
            name, separator, value = param.partition("=")
            name = name.strip()
            if not separator or name not in ("p", "attempts", "seconds"):
                raise ReproError(
                    f"bad fault parameter {param!r} in clause {raw!r}")
            try:
                fields[name] = (int(value) if name == "attempts"
                                else float(value))
            except ValueError:
                raise ReproError(
                    f"bad fault parameter {param!r} in clause "
                    f"{raw!r}") from None
        if "p" not in fields:
            raise ReproError(f"fault clause {raw!r} is missing p=")
        if not 0.0 <= fields["p"] <= 1.0:
            raise ReproError(
                f"fault probability must be in [0, 1]: {raw!r}")
        clauses.append(FaultClause(
            kind=kind,
            probability=fields["p"],
            attempts=fields.get("attempts"),
            seconds=fields.get("seconds", DEFAULT_HANG_SECONDS)))
    if not clauses:
        return None
    return FaultPlan(clauses, seed=seed)


# One (text -> plan) pair memoises the common case — the env var is
# stable for the life of a run — while still noticing a test that
# monkeypatches the variable mid-process.
_cached = (None, None)
_cache_lock = threading.Lock()


def active_plan():
    """The plan from ``$REPRO_FAULT``, or None when unset/empty.

    The environment is the carrier deliberately: worker processes
    inherit it, so one exported variable arms the hooks on both
    sides of the process-pool boundary.
    """
    text = os.environ.get(ENV_FAULT)
    if not text:
        return None
    global _cached
    with _cache_lock:
        if _cached[0] == text:
            return _cached[1]
    plan = parse_fault_plan(text)
    with _cache_lock:
        _cached = (text, plan)
    return plan


# ----------------------------------------------------------------------
# Injection hooks.  Each is a no-op costing one env lookup unless a
# plan is armed, so production paths pay nothing.
# ----------------------------------------------------------------------
def maybe_fail_point(spec, attempt=0):
    """Worker-side hook: crash or stall before computing ``spec``.

    Only ever fires inside a worker child — the same hook runs on
    the inline (``workers=1``) path, where killing the process would
    take the whole CLI down with it.
    """
    plan = active_plan()
    if plan is None:
        return
    if multiprocessing.parent_process() is None:
        return
    key = spec.describe()
    if plan.should("worker_crash", key, attempt):
        # os._exit skips every finally/atexit: indistinguishable from
        # a segfault as far as the parent's ProcessPoolExecutor can
        # tell, which is exactly the point.
        os._exit(CRASH_EXIT_CODE)
    clause = plan.clause("point_hang")
    if clause is not None and plan.should("point_hang", key, attempt):
        time.sleep(clause.seconds)


def maybe_corrupt_cache_entry(path, key):
    """Cache-read hook: garble the entry at ``path`` before the read.

    Returns True when it corrupted the file, so the harness can log
    it; the cache itself notices nothing special — it just finds a
    payload that no longer unpickles, which is the path under test.
    """
    plan = active_plan()
    if plan is None or not plan.should("cache_corrupt", key):
        return False
    try:
        with open(path, "wb") as handle:
            handle.write(b"\x80repro-chaos-garbage")
    except OSError:
        return False
    _count_injection("cache_corrupt")
    return True


_http_calls = {}
_http_lock = threading.Lock()


def maybe_cut_http(path):
    """Serve-client hook: sever one request before it leaves.

    Keyed by request path plus a per-path call counter, so "the
    second POST to /v1/sweeps dies" is reproducible for a fixed call
    sequence.  Raises OSError — the client's transport-error handling
    turns it into the same retryable failure a yanked cable would.
    """
    plan = active_plan()
    if plan is None or plan.clause("http_cut") is None:
        return
    with _http_lock:
        ordinal = _http_calls.get(path, 0)
        _http_calls[path] = ordinal + 1
    if plan.should("http_cut", path, ordinal):
        _count_injection("http_cut")
        raise OSError(f"chaos: injected http_cut on {path}")


def _count_injection(kind):
    # Imported lazily: metrics pulls in the obs stack, which the
    # worker-side hooks must not pay for on the no-plan fast path.
    from repro.obs import metrics
    metrics.FAULTS_INJECTED.inc(kind=kind)
