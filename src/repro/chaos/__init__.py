"""Deterministic fault injection for the self-healing runtime.

The runtime's crash containment, point deadlines and durable serve
jobs are only trustworthy if the failures they guard against can be
*provoked on demand*.  This package is that provocation: a fault
plan parsed from ``REPRO_FAULT`` describes which faults to inject
and how often, and tiny hooks wired into the worker compute path,
the result-cache read path and the serve client consult it.

Determinism is the whole design: every injection decision is a pure
hash of ``(plan seed, fault kind, subject key, attempt)``, so the
same plan over the same sweep injects exactly the same faults, run
after run — which is what lets ``repro chaos`` assert that a faulted
sweep converges to the clean answer.

See :mod:`repro.chaos.faults` for the grammar and the hooks, and
:mod:`repro.chaos.harness` for the ``repro chaos`` comparison run.
"""

from __future__ import annotations

from repro.chaos.faults import (
    ENV_FAULT,
    FAULT_KINDS,
    FaultClause,
    FaultPlan,
    active_plan,
    maybe_corrupt_cache_entry,
    maybe_cut_http,
    maybe_fail_point,
    parse_fault_plan,
)

__all__ = [
    "ENV_FAULT",
    "FAULT_KINDS",
    "FaultClause",
    "FaultPlan",
    "active_plan",
    "maybe_corrupt_cache_entry",
    "maybe_cut_http",
    "maybe_fail_point",
    "parse_fault_plan",
]
