"""The ``repro chaos`` run: inject faults, prove the answer holds.

Three phases over the same spec list, each with its own hermetic
cache directory so nothing leaks between them or into the user's
real cache:

1. **clean** — no faults, a fresh cache: the reference answer.
2. **fault_cold** — the fault plan armed, another fresh cache: every
   point actually computes, so ``worker_crash`` and ``point_hang``
   hit real worker processes and the containment layer must heal
   them.
3. **fault_warm** — same plan, *same* cache as phase 2: reads
   dominate, so ``cache_corrupt`` garbles warm entries and the
   discard-and-recompute path must heal those.

The verdict is the acceptance criterion executable: every faulted
point must equal its clean twin on the deterministic fields (error,
mapped, cycles, output digest), no point may be lost, and at most
``allow_quarantine`` points may land as a containment class
(``worker-crash:`` / ``timeout:`` / ``pool-broken:``) instead of
healing.  The report carries the containment metric deltas per
phase, so CI can additionally assert that faults *were* injected —
a chaos lane that silently injects nothing proves nothing.
"""

from __future__ import annotations

import contextlib
import os
import time

from repro.chaos.faults import ENV_FAULT, parse_fault_plan
from repro.errors import ReproError
from repro.obs import metrics

#: Report document version.
CHAOS_SCHEMA = 1

#: Error-class prefixes the containment layer synthesizes; a faulted
#: point landing on one of these is "quarantined", not "mismatched".
CONTAINMENT_PREFIXES = ("worker-crash:", "timeout:", "pool-broken:")

#: The plan used when neither ``--faults`` nor ``$REPRO_FAULT`` says
#: otherwise: every point crashes its worker once and heals on
#: retry, and a third of warm cache reads hit a corrupt entry.
DEFAULT_PLAN = "worker_crash:p=1,attempts=1;cache_corrupt:p=0.33"

_COUNTERS = {
    "restarts": lambda: metrics.POOL_RESTARTS,
    "retries": lambda: metrics.POINT_RETRIES,
    "quarantines": lambda: metrics.POINT_QUARANTINES,
    "corrupt_entries": lambda: metrics.CACHE_CORRUPT,
    "injections": lambda: metrics.FAULTS_INJECTED,
}


@contextlib.contextmanager
def _fault_env(value):
    """Set/clear ``$REPRO_FAULT`` for one phase, restoring after."""
    saved = os.environ.get(ENV_FAULT)
    try:
        if value is None:
            os.environ.pop(ENV_FAULT, None)
        else:
            os.environ[ENV_FAULT] = value
        yield
    finally:
        if saved is None:
            os.environ.pop(ENV_FAULT, None)
        else:
            os.environ[ENV_FAULT] = saved


def _counter_totals():
    return {name: get().total() for name, get in _COUNTERS.items()}


def _signature(point):
    """The deterministic identity of a landed point."""
    return {
        "error": point.error,
        "mapped": point.mapped,
        "cycles": point.cycles,
        "output_digest": point.output_digest,
    }


def _is_quarantined(point):
    return point.error is not None and \
        point.error.startswith(CONTAINMENT_PREFIXES)


def _run_phase(name, specs, fault_text, cache_dir, workers,
               point_timeout, progress):
    from repro.runtime.cache import ResultCache
    from repro.runtime.pool import run_specs

    before = _counter_totals()
    started = time.perf_counter()
    with _fault_env(fault_text):
        points, cache_hits = run_specs(
            specs, workers=workers,
            cache=ResultCache(cache_dir),
            progress=progress,
            point_timeout=point_timeout)
    summary = {
        "elapsed_seconds": round(time.perf_counter() - started, 3),
        "cache_hits": cache_hits,
        "quarantined": sum(1 for p in points if _is_quarantined(p)),
    }
    after = _counter_totals()
    summary.update({name: round(after[name] - before[name], 3)
                    for name in _COUNTERS})
    return points, summary


def run_chaos(specs, faults=None, workers=2, point_timeout=30.0,
              allow_quarantine=0, base_dir=None, progress=None):
    """Run the three-phase chaos comparison; returns the report.

    ``faults`` is a ``REPRO_FAULT``-grammar string (default:
    ``$REPRO_FAULT``, else :data:`DEFAULT_PLAN`); it is parsed —
    and rejected — up front, before any compute is spent.
    ``base_dir`` hosts the per-phase cache directories (default: a
    fresh temporary directory).
    """
    import tempfile

    if faults is None:
        faults = os.environ.get(ENV_FAULT) or DEFAULT_PLAN
    plan = parse_fault_plan(faults)
    if plan is None:
        raise ReproError("empty fault plan: nothing to inject")
    if workers < 2:
        # worker_crash / point_hang only fire in worker children and
        # containment implicates every in-flight spec — two workers
        # keep the collateral realistic while staying cheap.
        workers = 2
    specs = [spec.resolve() for spec in specs]
    if base_dir is None:
        base_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    clean_dir = os.path.join(base_dir, "clean")
    fault_dir = os.path.join(base_dir, "faulted")

    clean, clean_summary = _run_phase(
        "clean", specs, None, clean_dir, workers, None, progress)
    cold, cold_summary = _run_phase(
        "fault_cold", specs, plan.describe(), fault_dir, workers,
        point_timeout, progress)
    warm, warm_summary = _run_phase(
        "fault_warm", specs, plan.describe(), fault_dir, workers,
        point_timeout, progress)

    reference = {spec.describe(): point
                 for spec, point in zip(specs, clean)}
    mismatched, quarantined, lost = [], [], []
    for phase, points in (("fault_cold", cold), ("fault_warm", warm)):
        for spec, point in zip(specs, points):
            key = spec.describe()
            if point is None:
                lost.append({"phase": phase, "spec": key})
                continue
            if _is_quarantined(point):
                quarantined.append({"phase": phase, "spec": key,
                                    "error": point.error})
                continue
            want = _signature(reference[key])
            got = _signature(point)
            if got != want:
                mismatched.append({"phase": phase, "spec": key,
                                   "expected": want, "got": got})
    ok = (not lost and not mismatched
          and len(quarantined) <= allow_quarantine)
    return {
        "kind": "chaos-report",
        "schema": CHAOS_SCHEMA,
        "ok": ok,
        "faults": plan.describe(),
        "points": len(specs),
        "workers": workers,
        "point_timeout": point_timeout,
        "allow_quarantine": allow_quarantine,
        "cache_base_dir": str(base_dir),
        "phases": {
            "clean": clean_summary,
            "fault_cold": cold_summary,
            "fault_warm": warm_summary,
        },
        "verdict": {
            "mismatched": mismatched,
            "quarantined": quarantined,
            "lost": lost,
        },
    }


def render_report(report):
    """The human-facing summary of one chaos run."""
    lines = [
        f"chaos: {report['points']} points under "
        f"'{report['faults']}' (workers={report['workers']}, "
        f"point-timeout={report['point_timeout']:g}s)"]
    for name, phase in report["phases"].items():
        injected = (phase["restarts"] if name != "fault_warm"
                    else phase["corrupt_entries"])
        lines.append(
            f"  {name:10s} {phase['elapsed_seconds']:7.1f}s  "
            f"hits={phase['cache_hits']:<3d} "
            f"restarts={phase['restarts']:g} "
            f"retries={phase['retries']:g} "
            f"corrupt={phase['corrupt_entries']:g} "
            f"quarantined={phase['quarantined']}"
            + ("" if injected or name == "clean" else "  (no faults fired)"))
    verdict = report["verdict"]
    lines.append(
        f"verdict: {'OK' if report['ok'] else 'FAILED'} — "
        f"{len(verdict['mismatched'])} mismatched, "
        f"{len(verdict['lost'])} lost, "
        f"{len(verdict['quarantined'])} quarantined "
        f"(allowed {report['allow_quarantine']})")
    for entry in verdict["mismatched"][:10]:
        lines.append(f"  mismatch [{entry['phase']}] {entry['spec']}: "
                     f"expected {entry['expected']}, got "
                     f"{entry['got']}")
    for entry in verdict["quarantined"][:10]:
        lines.append(f"  quarantined [{entry['phase']}] "
                     f"{entry['spec']}: {entry['error']}")
    return "\n".join(lines)
