"""Normalisations used by the paper's charts.

Every latency chart (Figs 6-8) normalises to the *baseline mapping*:
the basic flow run on HOM64.  Fig 10 normalises to the or1k CPU.
A missing mapping renders as 0 — the paper's "no mapping solution"
bars.
"""

from __future__ import annotations


def normalized(value, baseline):
    """value / baseline, with 0 encoding "no solution"."""
    if value is None or baseline in (None, 0):
        return 0.0
    return value / baseline


def speedup(baseline, value):
    """baseline / value (e.g. CPU cycles / CGRA cycles)."""
    if value in (None, 0) or baseline is None:
        return 0.0
    return baseline / value


def gain(baseline, value):
    """Energy gain: baseline / value (bigger is better)."""
    return speedup(baseline, value)
