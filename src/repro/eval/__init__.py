"""Experiment drivers regenerating every figure and table of the paper.

- :mod:`repro.eval.experiments` — one function per figure/table,
  returning plain data structures (the benchmarks print them);
- :mod:`repro.eval.reporting` — ASCII rendering in the paper's shapes;
- :mod:`repro.eval.normalize` — the normalisations the figures use.
"""

from repro.eval.experiments import (
    ExperimentPoint,
    compile_point,
    execute_point,
    cpu_point,
    fig5_data,
    latency_figure_data,
    fig9_data,
    fig10_data,
    fig11_data,
    table2_data,
)

__all__ = [
    "ExperimentPoint",
    "compile_point",
    "execute_point",
    "cpu_point",
    "fig5_data",
    "latency_figure_data",
    "fig9_data",
    "fig10_data",
    "fig11_data",
    "table2_data",
]
