"""ASCII rendering of the experiment data, in the paper's shapes."""

from __future__ import annotations

import math

from repro.kernels.suite import display_name


def _format_row(cells, widths):
    return "  ".join(str(cell).ljust(width)
                     for cell, width in zip(cells, widths))


def render_table(headers, rows):
    """Simple aligned ASCII table."""
    table = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(headers))]
    lines = [_format_row(headers, widths),
             _format_row(["-" * w for w in widths], widths)]
    lines.extend(_format_row(row, widths) for row in table[1:])
    return "\n".join(lines)


def render_fig5(data):
    rows = []
    for row in data["rows"]:
        rows.append([
            row["block"],
            row["forward_movs"], row["weighted_movs"],
            row["forward_pnops"], row["weighted_pnops"],
        ])
    totals = data["totals"]
    rows.append([
        "TOTAL",
        totals["forward_movs"], totals["weighted_movs"],
        totals["forward_pnops"], totals["weighted_pnops"],
    ])
    table = render_table(
        ["block", "movs(fwd)", "movs(wgt)", "pnops(fwd)", "pnops(wgt)"],
        rows)
    summary = (f"mov reduction: {totals['mov_reduction']:.1%}   "
               f"pnop reduction: {totals['pnop_reduction']:.1%}   "
               f"(paper, FFT: ~42% movs, ~24% pnops)")
    return f"Fig 5 — traversal comparison on {data['kernel']}\n" \
           f"{table}\n{summary}"


def render_latency_figure(title, chart, configs):
    rows = []
    for kernel, bars in chart.items():
        cells = [display_name(kernel)]
        for config in configs:
            value = bars[config]
            cells.append("no map" if value == 0 else f"{value:.2f}")
        rows.append(cells)
    table = render_table(["kernel"] + list(configs), rows)
    return (f"{title} (latency normalised to basic@HOM64; "
            f"'no map' = paper's zero bars)\n{table}")


def render_fig9(data):
    rows = [[variant, f"{data['seconds'][variant]:.2f}s",
             f"{data['normalized'][variant]:.2f}x"]
            for variant in ("basic", "acmap", "ecmap", "full")]
    table = render_table(["flow variant", "avg compile", "vs basic"], rows)
    return (f"Fig 9 — compilation time (paper: full flow ~1.8x basic)\n"
            f"{table}")


def render_fig10(chart):
    rows = []
    for kernel, data in chart.items():
        cells = [display_name(kernel), data["cpu_cycles"]]
        for label in ("basic_hom64", "aware_het1", "aware_het2"):
            entry = data[label]
            if entry["cycles"] is None:
                cells.append("no map")
            else:
                cells.append(f"{entry['normalized']:.3f} "
                             f"({entry['speedup']:.1f}x)")
        rows.append(cells)
    table = render_table(
        ["kernel", "cpu cycles", "basic@HOM64", "aware@HET1",
         "aware@HET2"], rows)
    return (f"Fig 10 — execution time normalised to or1k "
            f"(paper: avg ~10x speedup, max 22x, min 5x)\n{table}")


def render_fig11(data):
    rows = []
    for name, entry in data.items():
        breakdown = "  ".join(f"{k}={v:.3f}" for k, v in
                              entry["breakdown"].items())
        rows.append([name, f"{entry['total']:.3f}",
                     f"{entry['ratio']:.2f}x", breakdown])
    table = render_table(["config", "mm^2", "vs CPU", "breakdown (mm^2)"],
                         rows)
    return (f"Fig 11 — area (paper: HOM64 ~2x CPU, HET ~1.5x)\n{table}")


def render_sweep(result):
    """Tabulate a :class:`~repro.runtime.sweep.SweepResult`.

    One row per point — cycles, energy and compile time for mapped
    points, the failure class for the paper's zero bars — plus the
    cache/parallelism summary line used to confirm a warm run
    re-mapped nothing.
    """
    rows = []
    for spec, point in zip(result.specs, result.points):
        if point.mapped:
            status = "ok"
            cycles = point.cycles
            energy = f"{point.energy_uj:.4f}"
        else:
            status = (point.error or "error").splitlines()[0]
            cycles = "-"
            energy = "-"
        compile_s = (f"{point.compile_seconds:.2f}s"
                     if point.compile_seconds is not None else "-")
        rows.append([display_name(spec.kernel_name), spec.config_name,
                     spec.variant, cycles, energy, compile_s, status])
    table = render_table(
        ["kernel", "config", "variant", "cycles", "energy uJ",
         "compile", "status"], rows)
    return f"Sweep — {result.summary()}\n{table}"


def render_table2(table):
    rows = []
    gains_basic = []
    gains_cpu = []
    for kernel, row in table.items():
        cells = [display_name(kernel), f"{row['cpu_uj']:.3f}"]
        for label in ("basic_hom64", "aware_het1", "aware_het2"):
            entry = row[label]
            if entry["uj"] is None:
                cells.append("no map")
            else:
                cells.append(f"{entry['uj']:.3f} "
                             f"({entry['gain_vs_cpu']:.0f}x)")
        rows.append(cells)
        for label in ("aware_het1", "aware_het2"):
            if row[label]["uj"] is not None:
                gains_basic.append(row[label]["gain_vs_basic"])
                gains_cpu.append(row[label]["gain_vs_cpu"])
    table_text = render_table(
        ["kernel", "CPU uJ", "basic@HOM64 uJ", "aware@HET1 uJ",
         "aware@HET2 uJ"], rows)
    avg_basic = sum(gains_basic) / len(gains_basic) if gains_basic else 0
    avg_cpu = sum(gains_cpu) / len(gains_cpu) if gains_cpu else 0
    summary = (
        f"aware vs basic: avg {avg_basic:.2f}x gain "
        f"(paper: 2.3x avg, 3.1x max, 1.4x min)\n"
        f"aware vs CPU:   avg {avg_cpu:.1f}x gain "
        f"(paper: 14x avg, 23x max, 5x min)")
    return f"Table II — energy consumption in uJ\n{table_text}\n{summary}"


def render_exploration(payload):
    """Human-readable view of one exploration document.

    Renders from the JSON payload (not the live result object), so
    the CLI table and a remotely fetched ``POST /v1/explorations``
    result print identically.
    """
    objectives = payload["objectives"]
    summary = payload["summary"]
    rows = []
    for design in payload["designs"]:
        metrics = design["metrics"]
        cells = [design["name"], str(design["total_words"])]
        for objective in objectives:
            value = metrics[objective]
            if not math.isfinite(value):
                cells.append("-")
            elif objective == "mappability":
                cells.append(f"{value:.0%}")
            elif objective == "latency":
                cells.append(f"{value:.0f}")
            else:
                cells.append(f"{value:.4f}")
        marks = []
        if design["frontier"]:
            marks.append("frontier")
        elif not design["complete"]:
            marks.append("pruned")
        cells.append(" ".join(marks))
        rows.append(cells)
    table = render_table(
        ["design", "CM words"] + list(objectives) + [""], rows)
    head = (f"Exploration — {summary['designs']} designs x "
            f"{len(payload['kernels'])} kernels "
            f"({payload['strategy']} strategy): "
            f"{summary['evaluated_pairs']} points evaluated "
            f"({summary['cache_hits']} cached, "
            f"{summary['computed']} computed) in "
            f"{summary['elapsed_seconds']:.1f}s")
    front = ", ".join(payload["frontier"]) or "(empty)"
    tail = (f"frontier ({summary['frontier_size']}): {front}\n"
            f"hypervolume: {summary['hypervolume']:.6f}")
    return f"{head}\n{table}\n{tail}"
