"""Experiment drivers: one entry point per figure/table of the paper.

Every driver composes the same pipeline::

    kernel --map--> MappingResult --assemble--> Program --simulate-->
    cycles + activity --price--> energy

and *verifies functional correctness* along the way: the CGRA's output
regions must match the kernel's independent reference bit-exactly, so
a latency/energy number is never reported for a broken mapping.

Results are memoised per process keyed by (kernel, config, variant) —
several figures share the same experiment points.
"""

from __future__ import annotations

import time

import numpy as np

from repro.arch.configs import get_config
from repro.codegen.assembler import assemble
from repro.errors import ReproError, UnmappableError
from repro.eval import normalize
from repro.kernels import PAPER_KERNEL_ORDER, get_kernel
from repro.mapping.flow import VARIANTS, map_kernel
from repro.power.area import AreaModel
from repro.power.energy import EnergyModel
from repro.sim.cgra import CGRASimulator
from repro.sim.cpu import CPUModel

#: Default input seed for all experiment executions.
INPUT_SEED = 7

#: The configurations the latency figures sweep.
LATENCY_CONFIGS = ("HOM64", "HOM32", "HET1", "HET2")


class ExperimentPoint:
    """One (kernel, config, flow-variant) measurement."""

    def __init__(self, kernel_name, config_name, variant, mapping=None,
                 compile_seconds=None, cycles=None, activity=None,
                 energy=None, error=None):
        self.kernel_name = kernel_name
        self.config_name = config_name
        self.variant = variant
        self.mapping = mapping
        self.compile_seconds = compile_seconds
        self.cycles = cycles
        self.activity = activity
        self.energy = energy
        self.error = error

    @property
    def mapped(self):
        return self.mapping is not None

    @property
    def energy_uj(self):
        return self.energy.total_uj if self.energy is not None else None

    def __repr__(self):
        status = f"{self.cycles} cycles" if self.mapped else "no mapping"
        return (f"ExperimentPoint({self.kernel_name}@{self.config_name}"
                f"/{self.variant}: {status})")


_POINT_CACHE = {}
_CPU_CACHE = {}


def clear_cache():
    _POINT_CACHE.clear()
    _CPU_CACHE.clear()


def compile_point(kernel_name, config_name, variant):
    """Map a kernel; returns (MappingResult | None, seconds)."""
    kernel = get_kernel(kernel_name)
    cgra = get_config(config_name)
    options = VARIANTS[variant]()
    started = time.perf_counter()
    try:
        result = map_kernel(kernel.cdfg, cgra, options)
    except UnmappableError:
        return None, time.perf_counter() - started
    return result, time.perf_counter() - started


def execute_point(kernel_name, config_name, variant):
    """Full pipeline for one point, memoised."""
    key = (kernel_name, config_name, variant)
    cached = _POINT_CACHE.get(key)
    if cached is not None:
        return cached
    kernel = get_kernel(kernel_name)
    mapping, seconds = compile_point(kernel_name, config_name, variant)
    if mapping is None:
        point = ExperimentPoint(kernel_name, config_name, variant,
                                compile_seconds=seconds,
                                error="unmappable")
        _POINT_CACHE[key] = point
        return point
    program = assemble(mapping, kernel.cdfg,
                       enforce_fit=mapping.options.ecmap)
    if not mapping.fits:
        # A context-unaware mapping that physically overflows this
        # configuration cannot run — the paper's zero bars.
        point = ExperimentPoint(kernel_name, config_name, variant,
                                compile_seconds=seconds,
                                error="context overflow")
        _POINT_CACHE[key] = point
        return point
    inputs = kernel.make_inputs(np.random.default_rng(INPUT_SEED))
    memory = kernel.make_memory(inputs)
    run = CGRASimulator(program, memory).run()
    expected = kernel.reference(inputs)
    for region in kernel.output_regions:
        got = run.region(kernel.cdfg, region)
        if got != expected[region]:
            raise ReproError(
                f"{kernel_name}@{config_name}/{variant}: region "
                f"{region!r} mismatch — mapping pipeline is unsound")
    energy = EnergyModel().cgra_energy(run.activity,
                                       get_config(config_name))
    point = ExperimentPoint(kernel_name, config_name, variant,
                            mapping=mapping, compile_seconds=seconds,
                            cycles=run.cycles, activity=run.activity,
                            energy=energy)
    _POINT_CACHE[key] = point
    return point


def cpu_point(kernel_name):
    """CPU baseline execution: (cycles, EnergyBreakdown)."""
    cached = _CPU_CACHE.get(kernel_name)
    if cached is not None:
        return cached
    kernel = get_kernel(kernel_name)
    inputs = kernel.make_inputs(np.random.default_rng(INPUT_SEED))
    memory = kernel.make_memory(inputs)
    run = CPUModel(kernel.cdfg).run(memory)
    expected = kernel.reference(inputs)
    for region in kernel.output_regions:
        if run.region(kernel.cdfg, region) != expected[region]:
            raise ReproError(f"{kernel_name}: CPU model mismatch")
    energy = EnergyModel().cpu_energy(run)
    result = (run.cycles, energy)
    _CPU_CACHE[kernel_name] = result
    return result


# ----------------------------------------------------------------------
# Fig 5: weighted vs forward traversal, moves and pnops per block
# ----------------------------------------------------------------------
def fig5_data(kernel_name="fft", config_name="HOM64"):
    """Per-block MOV/PNOP counts: weighted normalised to forward.

    The paper's Fig 5 shows the FFT kernel; the totals row carries the
    headline (~42% fewer moves, ~24% fewer pnops).
    """
    forward, _ = compile_point(kernel_name, config_name, "basic")
    weighted, _ = compile_point(kernel_name, config_name, "weighted")
    if forward is None or weighted is None:
        raise ReproError(f"fig5: {kernel_name} failed to map on "
                         f"{config_name}")
    rows = []
    weighted_by_block = {name: (movs, pnops) for name, movs, pnops
                         in weighted.per_block_stats()}
    for name, f_movs, f_pnops in forward.per_block_stats():
        w_movs, w_pnops = weighted_by_block[name]
        rows.append({
            "block": name,
            "forward_movs": f_movs,
            "forward_pnops": f_pnops,
            "weighted_movs": w_movs,
            "weighted_pnops": w_pnops,
        })
    totals = {
        "forward_movs": forward.total_movs,
        "forward_pnops": forward.total_pnops,
        "weighted_movs": weighted.total_movs,
        "weighted_pnops": weighted.total_pnops,
        "mov_reduction": 1 - normalize.normalized(
            weighted.total_movs, forward.total_movs),
        "pnop_reduction": 1 - normalize.normalized(
            weighted.total_pnops, forward.total_pnops),
    }
    return {"kernel": kernel_name, "rows": rows, "totals": totals}


# ----------------------------------------------------------------------
# Figs 6-8: latency under each flow variant, normalised to basic@HOM64
# ----------------------------------------------------------------------
def latency_figure_data(variant, kernels=PAPER_KERNEL_ORDER,
                        configs=LATENCY_CONFIGS):
    """Latency chart for one flow variant (Fig 6: "acmap", Fig 7:
    "ecmap", Fig 8: "full"), normalised to the baseline mapping.

    Zero means the variant found no mapping for that configuration —
    rendered exactly like the paper's missing bars.
    """
    chart = {}
    for kernel_name in kernels:
        baseline = execute_point(kernel_name, "HOM64", "basic")
        if not baseline.mapped:
            raise ReproError(f"baseline basic@HOM64 failed for "
                             f"{kernel_name}")
        bars = {}
        for config_name in configs:
            point = execute_point(kernel_name, config_name, variant)
            bars[config_name] = normalize.normalized(
                point.cycles, baseline.cycles) if point.mapped else 0.0
        chart[kernel_name] = bars
    return chart


# ----------------------------------------------------------------------
# Fig 9: compilation time of each flow variant vs basic
# ----------------------------------------------------------------------
def fig9_data(kernels=PAPER_KERNEL_ORDER, config_name="HET1"):
    """Average compile time per variant, normalised to the basic flow.

    The paper reports averages over the kernel suite (basic ~17s,
    full flow ~30s => ~1.8x); we report the same ratio structure.
    """
    variants = ("basic", "acmap", "ecmap", "full")
    times = {variant: [] for variant in variants}
    for kernel_name in kernels:
        for variant in variants:
            # Compile times are measured against the same target; the
            # basic flow is compiled for HOM64 (its paper target).
            config = "HOM64" if variant == "basic" else config_name
            _, seconds = compile_point(kernel_name, config, variant)
            times[variant].append(seconds)
    averages = {variant: sum(values) / len(values)
                for variant, values in times.items()}
    baseline = averages["basic"]
    normalizedv = {variant: normalize.normalized(avg, baseline)
                   for variant, avg in averages.items()}
    return {"seconds": averages, "normalized": normalizedv,
            "per_kernel": times}


# ----------------------------------------------------------------------
# Fig 10: execution time vs CPU
# ----------------------------------------------------------------------
def fig10_data(kernels=PAPER_KERNEL_ORDER):
    """Cycles normalised to the or1k CPU (plus speedups)."""
    chart = {}
    for kernel_name in kernels:
        cpu_cycles, _ = cpu_point(kernel_name)
        rows = {"cpu_cycles": cpu_cycles}
        for label, config, variant in (
                ("basic_hom64", "HOM64", "basic"),
                ("aware_het1", "HET1", "full"),
                ("aware_het2", "HET2", "full")):
            point = execute_point(kernel_name, config, variant)
            rows[label] = {
                "cycles": point.cycles if point.mapped else None,
                "normalized": normalize.normalized(
                    point.cycles, cpu_cycles) if point.mapped else 0.0,
                "speedup": normalize.speedup(
                    cpu_cycles, point.cycles) if point.mapped else 0.0,
            }
        chart[kernel_name] = rows
    return chart


# ----------------------------------------------------------------------
# Fig 11: area comparison with the CPU
# ----------------------------------------------------------------------
def fig11_data(configs=LATENCY_CONFIGS):
    """Area breakdowns of every configuration and the CPU."""
    model = AreaModel()
    data = {"CPU": {"breakdown": model.cpu_breakdown(),
                    "total": model.cpu_total(), "ratio": 1.0}}
    for config_name in configs:
        cgra = get_config(config_name)
        data[config_name] = {
            "breakdown": model.cgra_breakdown(cgra),
            "total": model.cgra_total(cgra),
            "ratio": model.ratio_to_cpu(cgra),
        }
    return data


# ----------------------------------------------------------------------
# Table II: energy comparison
# ----------------------------------------------------------------------
def table2_data(kernels=PAPER_KERNEL_ORDER):
    """Energy in uJ: CPU vs basic@HOM64 vs aware@HET1 vs aware@HET2."""
    table = {}
    for kernel_name in kernels:
        cpu_cycles, cpu_energy = cpu_point(kernel_name)
        row = {"cpu_uj": cpu_energy.total_uj}
        for label, config, variant in (
                ("basic_hom64", "HOM64", "basic"),
                ("aware_het1", "HET1", "full"),
                ("aware_het2", "HET2", "full")):
            point = execute_point(kernel_name, config, variant)
            uj = point.energy_uj if point.mapped else None
            row[label] = {
                "uj": uj,
                "gain_vs_cpu": normalize.gain(cpu_energy.total_uj, uj),
            }
        for label in ("aware_het1", "aware_het2"):
            row[label]["gain_vs_basic"] = normalize.gain(
                row["basic_hom64"]["uj"], row[label]["uj"])
        table[kernel_name] = row
    return table
