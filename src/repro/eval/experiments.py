"""Experiment drivers: one entry point per figure/table of the paper.

Every driver composes the same pipeline (implemented in
:mod:`repro.runtime.sweep`)::

    kernel --map--> MappingResult --assemble--> Program --simulate-->
    cycles + activity --price--> energy

and *verifies functional correctness* along the way: the CGRA's output
regions must match the kernel's independent reference bit-exactly, so
a latency/energy number is never reported for a broken mapping.

Results are memoised per process keyed by the fully resolved
:class:`~repro.runtime.sweep.PointSpec` — kernel, config, variant,
the complete FlowOptions and input seed — so several figures share
the same experiment points and custom-option callers can never
receive a stale entry keyed only by a variant name.  Drivers accept
``workers``/``cache`` and prefetch their points through the parallel
engine of :mod:`repro.runtime.pool` before assembling the figure.
"""

from __future__ import annotations

import time

import numpy as np

from repro.arch.configs import get_config
from repro.errors import ReproError, UnmappableError
from repro.eval import normalize
from repro.kernels import PAPER_KERNEL_ORDER, get_kernel
from repro.mapping.flow import map_kernel
from repro.power.area import AreaModel
from repro.power.energy import EnergyModel
from repro.runtime.pool import run_specs
from repro.runtime.sweep import (
    DEFAULT_SEED as INPUT_SEED,
    DETERMINISTIC_ERRORS,
    LATENCY_CONFIGS,
    ExperimentPoint,
    PointSpec,
    compute_point,
)
from repro.sim.cpu import CPUModel

__all__ = [
    "INPUT_SEED", "LATENCY_CONFIGS", "ExperimentPoint", "PointSpec",
    "clear_cache", "compile_point", "execute_point", "execute_spec",
    "figure_specs", "figure_point_specs", "latency_specs",
    "cpu_comparison_specs", "prefetch_points",
    "FIGURE_NAMES", "FIGURE_VARIANTS", "servable_figures",
    "cpu_point", "fig5_data", "latency_figure_data",
    "fig9_data", "fig10_data", "fig11_data", "table2_data",
]

_POINT_CACHE = {}
_CPU_CACHE = {}


def clear_cache():
    _POINT_CACHE.clear()
    _CPU_CACHE.clear()


def compile_point(kernel_name, config_name, variant, options=None):
    """Map a kernel; returns (MappingResult | None, seconds)."""
    kernel = get_kernel(kernel_name)
    spec = PointSpec(kernel_name, config_name, variant,
                     options=options).resolve()
    started = time.perf_counter()
    try:
        result = map_kernel(kernel.cdfg, spec.build_cgra(), spec.options)
    except UnmappableError:
        return None, time.perf_counter() - started
    return result, time.perf_counter() - started


def execute_spec(spec):
    """Full pipeline for one spec, memoised on the resolved spec."""
    spec = spec.resolve()
    cached = _POINT_CACHE.get(spec)
    if cached is not None:
        return cached
    point = compute_point(spec)
    _POINT_CACHE[spec] = point
    return point


def execute_point(kernel_name, config_name, variant, options=None,
                  seed=INPUT_SEED):
    """Full pipeline for one point, memoised.

    The memo key is the *resolved* spec: two calls that differ only in
    ``options`` (e.g. a custom pruning seed under the same variant
    name) get distinct entries.
    """
    return execute_spec(PointSpec(kernel_name, config_name, variant,
                                  options=options, seed=seed))


def prefetch_points(specs, workers=1, cache=None, progress=None):
    """Batch-compute specs into the memo via the parallel engine.

    Already-memoised specs are skipped; the rest run through
    :func:`repro.runtime.pool.run_specs` (process-parallel when
    ``workers > 1``, consulting/filling the persistent ``cache`` when
    given) and land in the per-process memo the drivers read.
    ``progress`` receives a
    :class:`~repro.runtime.stream.StreamUpdate` per landed point, so
    long prefetches report incrementally instead of going silent
    until the slowest point finishes.
    """
    missing = []
    for spec in specs:
        spec = spec.resolve()
        if spec not in _POINT_CACHE and spec not in missing:
            missing.append(spec)
    if not missing:
        return 0
    points, _ = run_specs(missing, workers=workers, cache=cache,
                          progress=progress)
    for spec, point in zip(missing, points):
        if point.error in DETERMINISTIC_ERRORS:
            _POINT_CACHE[spec] = point
        # A captured worker crash is not memoised: the next serial
        # execute_spec() recomputes it and raises the real exception.
    return len(missing)


def figure_specs(kernels=PAPER_KERNEL_ORDER, configs=LATENCY_CONFIGS):
    """Every memoised point the figure/table drivers consume.

    The latency figures need the basic@HOM64 baseline plus the
    acmap/ecmap/full variants on every configuration; Fig 10 and
    Table II read a subset of those.  Fig 5/Fig 9 time compilation
    through :func:`compile_point` and are deliberately not covered —
    prewarming them would not speed them up.
    """
    specs = [PointSpec(kernel, "HOM64", "basic") for kernel in kernels]
    specs += [PointSpec(kernel, config, variant)
              for kernel in kernels
              for variant in ("acmap", "ecmap", "full")
              for config in configs]
    return specs


#: Flow variant each latency figure sweeps.
FIGURE_VARIANTS = {"fig6": "acmap", "fig7": "ecmap", "fig8": "full"}

#: Every figure/table the CLI can render, in paper order — the single
#: list ``repro figure`` and the serve API validate names against.
FIGURE_NAMES = ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                "fig11", "table2")


def servable_figures():
    """``{figure name: prewarmable point count}`` for every figure.

    The over-the-wire listing behind ``GET /v1/figures``: a client
    deciding what to dispatch learns both the servable names and how
    many experiment points each one costs.  A count of zero marks the
    render-only figures (fig5/fig9/fig11 time compilation or price
    area locally) — submitting those is rejected, and this listing is
    how a caller finds out without trying.
    """
    return {name: len(figure_point_specs(name))
            for name in FIGURE_NAMES}


def latency_specs(variant, kernels=PAPER_KERNEL_ORDER,
                  configs=LATENCY_CONFIGS):
    """Specs one latency figure consumes: baselines, then the variant.

    The single source of truth shared by the figure driver and the
    ``--shard`` prewarm path — if they diverged, the distributed
    prewarm would warm the wrong set without any error.
    """
    return ([PointSpec(kernel, "HOM64", "basic") for kernel in kernels]
            + [PointSpec(kernel, config, variant)
               for kernel in kernels for config in configs])


def cpu_comparison_specs(kernels=PAPER_KERNEL_ORDER):
    """Specs Fig 10 and Table II consume (shared with ``--shard``)."""
    return [PointSpec(kernel, config, variant)
            for kernel in kernels
            for _, config, variant in _CPU_COMPARISON_COLUMNS]


def figure_point_specs(name, kernels=PAPER_KERNEL_ORDER,
                       configs=LATENCY_CONFIGS):
    """The mapping-bound specs one figure/table consumes, in a fixed
    deterministic order — the unit that ``repro figure NAME
    --shard i/N`` partitions across machines.

    Fig 5, Fig 9 and Fig 11 time compilation or price area and have
    no prewarmable points; they return an empty list.
    """
    if name in FIGURE_VARIANTS:
        return latency_specs(FIGURE_VARIANTS[name], kernels=kernels,
                             configs=configs)
    if name in ("fig10", "table2"):
        return cpu_comparison_specs(kernels=kernels)
    return []


def cpu_point(kernel_name):
    """CPU baseline execution: (cycles, EnergyBreakdown)."""
    cached = _CPU_CACHE.get(kernel_name)
    if cached is not None:
        return cached
    kernel = get_kernel(kernel_name)
    inputs = kernel.make_inputs(np.random.default_rng(INPUT_SEED))
    memory = kernel.make_memory(inputs)
    run = CPUModel(kernel.cdfg).run(memory)
    expected = kernel.reference(inputs)
    for region in kernel.output_regions:
        if run.region(kernel.cdfg, region) != expected[region]:
            raise ReproError(f"{kernel_name}: CPU model mismatch")
    energy = EnergyModel().cpu_energy(run)
    result = (run.cycles, energy)
    _CPU_CACHE[kernel_name] = result
    return result


# ----------------------------------------------------------------------
# Fig 5: weighted vs forward traversal, moves and pnops per block
# ----------------------------------------------------------------------
def fig5_data(kernel_name="fft", config_name="HOM64"):
    """Per-block MOV/PNOP counts: weighted normalised to forward.

    The paper's Fig 5 shows the FFT kernel; the totals row carries the
    headline (~42% fewer moves, ~24% fewer pnops).
    """
    forward, _ = compile_point(kernel_name, config_name, "basic")
    weighted, _ = compile_point(kernel_name, config_name, "weighted")
    if forward is None or weighted is None:
        raise ReproError(f"fig5: {kernel_name} failed to map on "
                         f"{config_name}")
    rows = []
    weighted_by_block = {name: (movs, pnops) for name, movs, pnops
                         in weighted.per_block_stats()}
    for name, f_movs, f_pnops in forward.per_block_stats():
        w_movs, w_pnops = weighted_by_block[name]
        rows.append({
            "block": name,
            "forward_movs": f_movs,
            "forward_pnops": f_pnops,
            "weighted_movs": w_movs,
            "weighted_pnops": w_pnops,
        })
    totals = {
        "forward_movs": forward.total_movs,
        "forward_pnops": forward.total_pnops,
        "weighted_movs": weighted.total_movs,
        "weighted_pnops": weighted.total_pnops,
        "mov_reduction": 1 - normalize.normalized(
            weighted.total_movs, forward.total_movs),
        "pnop_reduction": 1 - normalize.normalized(
            weighted.total_pnops, forward.total_pnops),
    }
    return {"kernel": kernel_name, "rows": rows, "totals": totals}


# ----------------------------------------------------------------------
# Figs 6-8: latency under each flow variant, normalised to basic@HOM64
# ----------------------------------------------------------------------
def latency_figure_data(variant, kernels=PAPER_KERNEL_ORDER,
                        configs=LATENCY_CONFIGS, workers=1, cache=None,
                        progress=None):
    """Latency chart for one flow variant (Fig 6: "acmap", Fig 7:
    "ecmap", Fig 8: "full"), normalised to the baseline mapping.

    Zero means the variant found no mapping for that configuration —
    rendered exactly like the paper's missing bars.
    """
    prefetch_points(latency_specs(variant, kernels=kernels,
                                  configs=configs),
                    workers=workers, cache=cache, progress=progress)
    chart = {}
    for kernel_name in kernels:
        baseline = execute_point(kernel_name, "HOM64", "basic")
        if not baseline.mapped:
            raise ReproError(f"baseline basic@HOM64 failed for "
                             f"{kernel_name}")
        bars = {}
        for config_name in configs:
            point = execute_point(kernel_name, config_name, variant)
            bars[config_name] = normalize.normalized(
                point.cycles, baseline.cycles) if point.mapped else 0.0
        chart[kernel_name] = bars
    return chart


# ----------------------------------------------------------------------
# Fig 9: compilation time of each flow variant vs basic
# ----------------------------------------------------------------------
def fig9_data(kernels=PAPER_KERNEL_ORDER, config_name="HET1"):
    """Average compile time per variant, normalised to the basic flow.

    The paper reports averages over the kernel suite (basic ~17s,
    full flow ~30s => ~1.8x); we report the same ratio structure.
    """
    variants = ("basic", "acmap", "ecmap", "full")
    times = {variant: [] for variant in variants}
    for kernel_name in kernels:
        for variant in variants:
            # Compile times are measured against the same target; the
            # basic flow is compiled for HOM64 (its paper target).
            config = "HOM64" if variant == "basic" else config_name
            _, seconds = compile_point(kernel_name, config, variant)
            times[variant].append(seconds)
    averages = {variant: sum(values) / len(values)
                for variant, values in times.items()}
    baseline = averages["basic"]
    normalizedv = {variant: normalize.normalized(avg, baseline)
                   for variant, avg in averages.items()}
    return {"seconds": averages, "normalized": normalizedv,
            "per_kernel": times}


# ----------------------------------------------------------------------
# Fig 10: execution time vs CPU
# ----------------------------------------------------------------------
#: The (label, config, variant) columns shared by Fig 10 and Table II.
_CPU_COMPARISON_COLUMNS = (
    ("basic_hom64", "HOM64", "basic"),
    ("aware_het1", "HET1", "full"),
    ("aware_het2", "HET2", "full"),
)


def fig10_data(kernels=PAPER_KERNEL_ORDER, workers=1, cache=None,
               progress=None):
    """Cycles normalised to the or1k CPU (plus speedups)."""
    prefetch_points(cpu_comparison_specs(kernels=kernels),
                    workers=workers, cache=cache, progress=progress)
    chart = {}
    for kernel_name in kernels:
        cpu_cycles, _ = cpu_point(kernel_name)
        rows = {"cpu_cycles": cpu_cycles}
        for label, config, variant in _CPU_COMPARISON_COLUMNS:
            point = execute_point(kernel_name, config, variant)
            rows[label] = {
                "cycles": point.cycles if point.mapped else None,
                "normalized": normalize.normalized(
                    point.cycles, cpu_cycles) if point.mapped else 0.0,
                "speedup": normalize.speedup(
                    cpu_cycles, point.cycles) if point.mapped else 0.0,
            }
        chart[kernel_name] = rows
    return chart


# ----------------------------------------------------------------------
# Fig 11: area comparison with the CPU
# ----------------------------------------------------------------------
def fig11_data(configs=LATENCY_CONFIGS):
    """Area breakdowns of every configuration and the CPU."""
    model = AreaModel()
    data = {"CPU": {"breakdown": model.cpu_breakdown(),
                    "total": model.cpu_total(), "ratio": 1.0}}
    for config_name in configs:
        cgra = get_config(config_name)
        data[config_name] = {
            "breakdown": model.cgra_breakdown(cgra),
            "total": model.cgra_total(cgra),
            "ratio": model.ratio_to_cpu(cgra),
        }
    return data


# ----------------------------------------------------------------------
# Table II: energy comparison
# ----------------------------------------------------------------------
def table2_data(kernels=PAPER_KERNEL_ORDER, workers=1, cache=None,
                progress=None):
    """Energy in uJ: CPU vs basic@HOM64 vs aware@HET1 vs aware@HET2."""
    prefetch_points(cpu_comparison_specs(kernels=kernels),
                    workers=workers, cache=cache, progress=progress)
    table = {}
    for kernel_name in kernels:
        cpu_cycles, cpu_energy = cpu_point(kernel_name)
        row = {"cpu_uj": cpu_energy.total_uj}
        for label, config, variant in _CPU_COMPARISON_COLUMNS:
            point = execute_point(kernel_name, config, variant)
            uj = point.energy_uj if point.mapped else None
            row[label] = {
                "uj": uj,
                "gain_vs_cpu": normalize.gain(cpu_energy.total_uj, uj),
            }
        for label in ("aware_het1", "aware_het2"):
            row[label]["gain_vs_basic"] = normalize.gain(
                row["basic_hom64"]["uj"], row[label]["uj"])
        table[kernel_name] = row
    return table
