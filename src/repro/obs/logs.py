"""Structured logging: levelled, machine-parseable, env-configured.

One logging layer for the whole system, replacing scattered
``print(..., file=sys.stderr)`` narration.  Configuration is one
environment variable::

    REPRO_LOG=level[:json]      # e.g. REPRO_LOG=debug, REPRO_LOG=info:json

``level`` is one of ``debug`` / ``info`` / ``warning`` / ``error``
(default ``info``); the ``:json`` suffix switches the format from
human-readable text lines to one JSON object per line — what a log
shipper wants.  Everything goes to stderr, keeping stdout clean for
tables and ``--json`` payloads, exactly like the progress lines
always have.

A logger emits *events with fields*, not format strings::

    log = get_logger("repro.serve")
    log.info("request", method="GET", path="/healthz", status=200)

Text rendering: ``2026-08-08T12:00:00.123Z INFO repro.serve: request
method=GET path=/healthz status=200``.  JSON rendering: the same
data as one object with ``ts``/``level``/``logger``/``event`` plus
the fields.  Fields are rendered in the order given, so callers
control readability.

:func:`configure` overrides the environment for tests and the CLI;
:func:`reset` re-reads the environment.
"""

from __future__ import annotations

import datetime
import json
import os
import sys
import threading

#: Environment variable: ``level`` or ``level:json``.
ENV_LOG = "REPRO_LOG"

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

DEFAULT_LEVEL = "info"


def _parse_env(value):
    """``(level_name, json_mode)`` from a ``REPRO_LOG`` value.

    Junk degrades to the defaults — logging configuration must never
    be able to crash the program it is meant to observe.
    """
    level, json_mode = DEFAULT_LEVEL, False
    if not value:
        return level, json_mode
    head, _, tail = value.strip().lower().partition(":")
    if head in LEVELS:
        level = head
    if tail == "json":
        json_mode = True
    return level, json_mode


class _Config:
    """The process-wide sink configuration, swapped atomically."""

    def __init__(self, level, json_mode, stream=None):
        self.level_name = level
        self.level = LEVELS[level]
        self.json_mode = json_mode
        # ``None`` means "whatever sys.stderr is at emit time", so
        # pytest's capture and late redirections both just work.
        self.stream = stream


_lock = threading.Lock()
_config = _Config(*_parse_env(os.environ.get(ENV_LOG)))


def configure(level=None, json_mode=None, stream=None):
    """Override the sink; unspecified fields keep their value."""
    global _config
    with _lock:
        new_level = level if level is not None else _config.level_name
        if new_level not in LEVELS:
            raise ValueError(
                f"unknown log level {new_level!r}; choose from "
                f"{', '.join(LEVELS)}")
        _config = _Config(
            new_level,
            _config.json_mode if json_mode is None else bool(json_mode),
            _config.stream if stream is None else stream)


def reset():
    """Re-read ``$REPRO_LOG`` and drop any configure() overrides."""
    global _config
    with _lock:
        _config = _Config(*_parse_env(os.environ.get(ENV_LOG)))


def _timestamp():
    now = datetime.datetime.now(datetime.timezone.utc)
    return now.strftime("%Y-%m-%dT%H:%M:%S.") \
        + f"{now.microsecond // 1000:03d}Z"


class StructuredLogger:
    """A named emitter of levelled events with key=value fields."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def enabled_for(self, level):
        return LEVELS[level] >= _config.level

    def log(self, level, event, **fields):
        config = _config
        if LEVELS[level] < config.level:
            return
        stream = config.stream if config.stream is not None \
            else sys.stderr
        if config.json_mode:
            record = {"ts": _timestamp(), "level": level,
                      "logger": self.name, "event": event}
            record.update(fields)
            line = json.dumps(record, default=str)
        else:
            rendered = " ".join(f"{key}={value}"
                                for key, value in fields.items())
            line = (f"{_timestamp()} {level.upper():7s} "
                    f"{self.name}: {event}"
                    + (f" {rendered}" if rendered else ""))
        try:
            stream.write(line + "\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # a dead stderr must not take the program with it

    def debug(self, event, **fields):
        self.log("debug", event, **fields)

    def info(self, event, **fields):
        self.log("info", event, **fields)

    def warning(self, event, **fields):
        self.log("warning", event, **fields)

    def error(self, event, **fields):
        self.log("error", event, **fields)


_loggers = {}


def get_logger(name):
    """The (cached) logger for a dotted component name."""
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger
