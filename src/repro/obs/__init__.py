"""repro.obs — tracing, metrics and structured logging (stdlib only).

The telemetry layer every later perf PR reads from:

- :mod:`repro.obs.trace` — spans around every pipeline stage, with
  context propagation across worker processes and HTTP, and Chrome
  trace-event export (``repro trace``, ``--trace-out``,
  ``REPRO_TRACE=1``);
- :mod:`repro.obs.metrics` — counters/gauges/histograms on one
  process-wide registry, rendered in the Prometheus text format
  (``GET /metrics`` on the serve tier, ``repro metrics`` locally);
- :mod:`repro.obs.logs` — levelled structured logging to stderr
  (``REPRO_LOG=level[:json]``), replacing ad-hoc prints;
- :mod:`repro.obs.analyze` — trace analytics over a span tree:
  critical path, per-stage self time, worker occupancy, straggler
  shards (``repro trace --analyze``);
- :mod:`repro.obs.flame` — a zero-dependency sampling profiler with
  collapsed-stack flame output (``repro profile --flame``,
  ``--flame-out``, ``REPRO_PROFILE_HZ``);
- :mod:`repro.obs.report` — the self-contained HTML dashboard
  (``repro report``, ``GET /dashboard``).

:func:`stage` is the composite used at every pipeline stage: it
always feeds the per-stage latency histogram (metrics are
permanently on and near-free) and *additionally* records a span when
a trace is active.
"""

from __future__ import annotations

import contextlib
import time

from repro.obs import logs, metrics, trace
from repro.obs.logs import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span

__all__ = ["logs", "metrics", "trace", "get_logger", "REGISTRY",
           "span", "stage", "analyze", "flame", "report"]


def __getattr__(name):
    # analyze/flame/report are lazy: flame imports threading machinery
    # and report is render-only — neither belongs on the hot import
    # path of every traced worker process.
    if name in ("analyze", "flame", "report"):
        import importlib
        module = importlib.import_module(f"repro.obs.{name}")
        globals()[name] = module
        return module
    raise AttributeError(name)


@contextlib.contextmanager
def stage(name, **attrs):
    """Time one pipeline stage: histogram always, span when tracing.

    The span (named after the stage, carrying a ``stage`` attribute
    so ingested worker spans can be re-observed into the local
    histogram) costs nothing when tracing is off; the histogram
    observation is one locked add.
    """
    started = time.perf_counter()
    try:
        with trace.span(name, stage=name, **attrs) as active:
            yield active
    finally:
        metrics.STAGE_SECONDS.observe(
            time.perf_counter() - started, stage=name)
