"""Pipeline tracing: spans, context propagation, Chrome export.

A *span* records one timed operation — a pipeline stage, a job, an
HTTP dispatch — as a plain dict: ``trace_id`` (32 hex chars shared by
every span of one logical run), ``span_id`` (16 hex chars),
``parent_id`` (the enclosing span, ``None`` for the root), name,
attributes, wall time, CPU time, process id and thread name.  Spans
nest through a :mod:`contextvars` variable, so ``with span("map"):``
inside ``with span("point"):`` parents itself automatically, across
threads started the normal way and — via explicit *carriers* —
across worker processes and HTTP hops.

Tracing is **off by default** and the off path is near-free:
:func:`span` returns a shared no-op context manager without
allocating anything when no trace is active.  Turn it on with
:func:`enable_tracing` (the ``repro trace`` command, ``--trace-out``)
or ``REPRO_TRACE=1`` in the environment.

Propagation uses a W3C-``traceparent``-shaped header,
``00-{trace_id}-{span_id}-01``:

- **across processes** — the worker entry wraps its computation in
  :func:`adopt` around a carrier captured by the submitting side and
  returns its recorded spans with the result (see
  :func:`repro.runtime.pool._compute_traced`);
- **across HTTP** — the serve client sends the header, the server
  adopts it, and the finished job ships its spans back inside the
  result payload, so a distributed ``run_distributed`` dispatch
  stitches into one tree with a single ``trace_id``.

Finished spans land in a bounded in-process collector; exporters
(:func:`chrome_trace`) turn them into Chrome trace-event JSON that
Perfetto / ``chrome://tracing`` loads directly.  Wall timestamps are
epoch microseconds (``time.time_ns``), so spans recorded by
different processes and hosts align on one timeline.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import threading
import time
import uuid

#: Environment variable enabling tracing for the whole process.
ENV_TRACE = "REPRO_TRACE"

#: Version prefix / sampled flag of the traceparent header we speak.
_TRACEPARENT_VERSION = "00"
_TRACEPARENT_FLAGS = "01"

#: Upper bound on buffered finished spans.  A forgotten long-lived
#: tracing server must degrade to dropped spans (counted), never to
#: unbounded memory growth.
MAX_BUFFERED_SPANS = 100_000

_HEX = set("0123456789abcdef")


class SpanContext:
    """The propagated identity of an active span (immutable)."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id, span_id):
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self):
        return f"SpanContext({self.trace_id!r}, {self.span_id!r})"


#: The currently active span's context, or None.  Contextvars flow
#: into threads only when the Context is copied explicitly, which is
#: why cross-thread/process/HTTP propagation uses carriers instead.
_current = contextvars.ContextVar("repro_trace_current", default=None)


class _Collector:
    """Bounded, locked buffer of finished span dicts."""

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._spans = []
        self.dropped = 0

    def record(self, span_dict):
        with self._lock:
            if len(self._spans) >= MAX_BUFFERED_SPANS:
                self.dropped += 1
                return
            self._spans.append(span_dict)

    def snapshot(self):
        with self._lock:
            return list(self._spans)

    def drain(self):
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    def for_trace(self, trace_id, drain=False):
        with self._lock:
            matched = [s for s in self._spans
                       if s["trace_id"] == trace_id]
            if drain:
                self._spans = [s for s in self._spans
                               if s["trace_id"] != trace_id]
            return matched

    def reset(self):
        with self._lock:
            self._spans = []
            self.dropped = 0


_collector = _Collector()


def _truthy(value):
    return (value or "").strip().lower() not in ("", "0", "false", "no")


def enable_tracing():
    """Record spans process-wide until :func:`disable_tracing`."""
    _collector.enabled = True


def disable_tracing():
    _collector.enabled = False


def tracing_enabled():
    """Whether this process records spans unconditionally."""
    return _collector.enabled


def tracing_active():
    """Whether a ``span()`` opened *right now* would be recorded.

    True when tracing is enabled process-wide **or** the caller sits
    inside an adopted remote context — a server that is not itself
    tracing still records the spans of a traced client's request.
    """
    return _collector.enabled or _current.get() is not None


def reset_tracing():
    """Disable tracing and drop all buffered spans (test isolation)."""
    _collector.enabled = False
    _collector.reset()


def dropped_spans():
    """How many spans the bounded buffer has refused so far."""
    return _collector.dropped


if _truthy(os.environ.get(ENV_TRACE)):  # pragma: no cover - env path
    enable_tracing()


def new_trace_id():
    return uuid.uuid4().hex


def new_span_id():
    return uuid.uuid4().hex[:16]


def current_context():
    """The active :class:`SpanContext`, or None."""
    return _current.get()


def format_traceparent(context):
    """``00-{trace_id}-{span_id}-01`` for a :class:`SpanContext`."""
    return (f"{_TRACEPARENT_VERSION}-{context.trace_id}-"
            f"{context.span_id}-{_TRACEPARENT_FLAGS}")


def parse_traceparent(header):
    """Parse a traceparent header; None on anything malformed.

    Propagation is best-effort by design: a bad header from an old
    client must degrade to "no trace", never to a 500.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, _flags = parts
    if version != _TRACEPARENT_VERSION:
        return None
    if len(trace_id) != 32 or not set(trace_id) <= _HEX:
        return None
    if len(span_id) != 16 or not set(span_id) <= _HEX:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return SpanContext(trace_id, span_id)


def current_carrier():
    """``{"traceparent": ...}`` for the active span, or None.

    The dict is what crosses process/HTTP boundaries: pickle it into
    a worker submission or copy it into request headers, then
    :func:`adopt` it on the far side.
    """
    context = _current.get()
    if context is None:
        return None
    return {"traceparent": format_traceparent(context)}


@contextlib.contextmanager
def adopt(carrier):
    """Run the body under a remote parent context.

    ``carrier`` is a ``{"traceparent": ...}`` dict (or None / a dict
    without the key, both no-ops).  Spans opened inside become
    children of the remote span, sharing its ``trace_id`` — the
    stitching primitive for workers, job runners and HTTP handlers.
    """
    context = None
    if isinstance(carrier, dict):
        context = parse_traceparent(carrier.get("traceparent"))
    if context is None:
        yield None
        return
    token = _current.set(context)
    try:
        yield context
    finally:
        _current.reset(token)


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        pass


_NOOP = _NoopSpan()


class _ActiveSpan:
    """One live span: times itself, records on exit."""

    __slots__ = ("name", "attrs", "trace_id", "span_id", "parent_id",
                 "_token", "_start_unix_ns", "_start_perf_ns",
                 "_start_cpu_ns")

    def __init__(self, name, attrs):
        self.name = name
        self.attrs = attrs

    def set(self, **attrs):
        """Attach attributes discovered mid-span (counts, outcomes)."""
        self.attrs.update(attrs)

    def __enter__(self):
        parent = _current.get()
        if parent is None:
            self.trace_id = new_trace_id()
            self.parent_id = None
        else:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        self.span_id = new_span_id()
        self._token = _current.set(
            SpanContext(self.trace_id, self.span_id))
        self._start_unix_ns = time.time_ns()
        self._start_perf_ns = time.perf_counter_ns()
        self._start_cpu_ns = time.thread_time_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        cpu_ns = time.thread_time_ns() - self._start_cpu_ns
        wall_ns = time.perf_counter_ns() - self._start_perf_ns
        _current.reset(self._token)
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_us": self._start_unix_ns // 1000,
            "wall_us": wall_ns // 1000,
            "cpu_us": cpu_ns // 1000,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
            "status": "ok" if exc_type is None else "error",
            "attrs": self.attrs,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        _collector.record(record)
        return False


def span(name, **attrs):
    """Context manager timing one operation as a span.

    The hot-path guard: when no trace is active this returns one
    shared no-op object — no allocation, no id generation, no clock
    reads — which is what keeps instrumented code bench-neutral with
    tracing off.
    """
    if not tracing_active():
        return _NOOP
    return _ActiveSpan(name, attrs)


# ----------------------------------------------------------------------
# Reading the buffer / moving spans between processes
# ----------------------------------------------------------------------
def snapshot_spans():
    """Copies of all buffered spans, oldest first."""
    return _collector.snapshot()


def drain_spans():
    """Remove and return all buffered spans (the worker hand-off)."""
    return _collector.drain()


def spans_for_trace(trace_id, drain=False):
    """Buffered spans of one trace; ``drain`` removes them too."""
    return _collector.for_trace(trace_id, drain=drain)


def ingest(spans, observe_stages=False):
    """Add spans recorded elsewhere (worker process, remote server).

    Only minimally well-formed dicts are kept — remote data crosses a
    pickle or JSON boundary and must not be able to corrupt the local
    buffer.  ``observe_stages=True`` additionally feeds each span
    carrying a ``stage`` attribute into the local per-stage latency
    histogram: a worker process's metrics registry dies with the
    process, so its stage timings are only observable here.
    """
    from repro.obs import metrics

    accepted = 0
    for item in spans or ():
        if not isinstance(item, dict):
            continue
        if not all(isinstance(item.get(key), str)
                   for key in ("name", "trace_id", "span_id")):
            continue
        _collector.record(item)
        accepted += 1
        if observe_stages:
            stage = (item.get("attrs") or {}).get("stage")
            if stage is not None:
                metrics.STAGE_SECONDS.observe(
                    item.get("wall_us", 0) / 1e6, stage=str(stage))
    return accepted


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def chrome_trace(spans):
    """Chrome trace-event JSON (a dict) from span dicts.

    Complete events (``ph: "X"``) on the epoch-microsecond timeline;
    load the written file in Perfetto (ui.perfetto.dev) or
    ``chrome://tracing``.  Span identities ride along in ``args`` so
    a flame row can be traced back to its tree position.
    """
    events = []
    for item in spans:
        args = dict(item.get("attrs") or {})
        args.update({
            "trace_id": item.get("trace_id"),
            "span_id": item.get("span_id"),
            "parent_id": item.get("parent_id"),
            "cpu_ms": round(item.get("cpu_us", 0) / 1000.0, 3),
            "status": item.get("status", "ok"),
        })
        events.append({
            "ph": "X",
            "cat": "repro",
            "name": item.get("name", "?"),
            "ts": item.get("start_unix_us", 0),
            "dur": max(1, item.get("wall_us", 0)),
            "pid": item.get("pid", 0),
            "tid": item.get("thread", "main"),
            "args": args,
        })
    events.sort(key=lambda event: event["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans):
    """Write :func:`chrome_trace` of ``spans`` to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(spans), handle, indent=2)
        handle.write("\n")
    return path
