"""The watchtower dashboard: one self-contained HTML file.

``repro report`` (and ``GET /dashboard`` on the serve tier) stitches
the ledger's trends, the latest trace's critical path, a metrics
snapshot and cache stats into a single HTML document with **zero
external dependencies** — inline CSS, inline SVG sparklines, no
JavaScript — so it can be committed as a CI artifact, mailed around,
or opened from a file:// URL years later and still render.

The renderer is a **pure function of its inputs**: it never reads the
clock, the hostname, or the environment, and it iterates every dict
in a fixed order.  Given the same ledger/analysis/metrics, the output
is byte-identical — which makes "did the dashboard change?" a plain
string comparison in tests and CI.

Palette and chart rules follow the repo's dataviz conventions: light
and dark surfaces via CSS custom properties and a
``prefers-color-scheme`` media query, a single blue series hue (one
series per sparkline, so no legend), and all text in text tokens —
the colored line carries identity, the numbers stay in ink.
"""

from __future__ import annotations

import html

#: Version of the rendered report (bumped when the layout changes
#: enough that a byte-comparison against an old artifact is moot).
REPORT_SCHEMA = 1

_STYLE = """
:root {
  color-scheme: light;
  --surface: #fcfcfb;
  --page: #f9f9f7;
  --text: #0b0b0b;
  --text-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --series-1: #2a78d6;
  --bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19;
    --page: #0d0d0d;
    --text: #ffffff;
    --text-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --series-1: #3987e5;
    --bad: #e66767;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 8px; color: var(--text); }
.sub { color: var(--text-2); margin: 0 0 20px; }
section {
  background: var(--surface); border: 1px solid var(--grid);
  border-radius: 8px; padding: 16px; margin: 0 0 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface); border: 1px solid var(--grid);
  border-radius: 8px; padding: 12px 16px; min-width: 130px;
}
.tile .value { font-size: 22px; }
.tile .label { color: var(--text-2); font-size: 12px; }
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 4px 12px 4px 0;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-2); font-weight: 600; font-size: 12px; }
td.num, th.num { text-align: right; }
.error { color: var(--bad); }
svg.sparkline { display: block; margin: 4px 0; }
svg.sparkline polyline {
  fill: none; stroke: var(--series-1); stroke-width: 2;
  stroke-linecap: round; stroke-linejoin: round;
}
svg.sparkline circle { fill: var(--series-1); }
pre {
  background: var(--page); border: 1px solid var(--grid);
  border-radius: 6px; padding: 10px; overflow-x: auto;
  font-size: 12px; max-height: 320px; overflow-y: auto;
}
.note { color: var(--muted); font-size: 12px; }
"""


def _fmt(value, digits=3):
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def svg_sparkline(values, width=220, height=36, pad=3):
    """One-series inline-SVG sparkline (deterministic output).

    Coordinates are rounded to 2 decimals so equal inputs always
    yield equal bytes.  Fewer than two points degrades to a single
    dot — a trend needs history, but the report must render without.
    """
    values = [float(value) for value in values]
    if not values:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    inner_w, inner_h = width - 2 * pad, height - 2 * pad

    def coords(index, value):
        x = pad + (inner_w * index / max(1, len(values) - 1))
        y = pad + inner_h * (1.0 - (value - low) / span)
        return round(x, 2), round(y, 2)

    header = (f'<svg class="sparkline" width="{width}" '
              f'height="{height}" viewBox="0 0 {width} {height}" '
              f'role="img" aria-label="trend of '
              f'{len(values)} values">')
    if len(values) == 1:
        x, y = coords(0, values[0])
        return header + f'<circle cx="{x}" cy="{y}" r="3"/></svg>'
    points = " ".join(f"{x},{y}" for x, y in
                      (coords(i, v) for i, v in enumerate(values)))
    last_x, last_y = coords(len(values) - 1, values[-1])
    return (header + f'<polyline points="{points}"/>'
            f'<circle cx="{last_x}" cy="{last_y}" r="3"/></svg>')


def _tile(label, value):
    return (f'<div class="tile"><div class="value">'
            f'{html.escape(str(value))}</div>'
            f'<div class="label">{html.escape(label)}</div></div>')


def _ledger_sections(entries):
    by_command = {}
    for entry in entries:
        by_command.setdefault(entry.get("command", "?"),
                              []).append(entry)
    parts = []

    bench = by_command.get("bench", [])
    if bench:
        totals = [entry["summary"].get("total_seconds", 0.0)
                  for entry in bench]
        latest = bench[-1]["summary"]
        rows = "".join(
            f"<tr><td>{html.escape(str(name))}</td>"
            f'<td class="num">{_fmt(latest["cases"][name], 4)}</td>'
            f"</tr>"
            for name in sorted(latest.get("cases") or {}))
        parts.append(
            "<section><h2>Bench trend</h2>"
            + svg_sparkline(totals)
            + f'<p class="note">total suite seconds over the last '
              f"{len(bench)} run(s); latest "
              f"{_fmt(totals[-1])} s</p>"
            + '<table><tr><th>case</th>'
              '<th class="num">seconds (latest)</th></tr>'
            + rows + "</table></section>")

    sweeps = by_command.get("sweep", [])
    if sweeps:
        elapsed = [entry["summary"].get("elapsed_seconds", 0.0)
                   for entry in sweeps]
        latest = sweeps[-1]["summary"]
        parts.append(
            "<section><h2>Sweep trend</h2>"
            + svg_sparkline(elapsed)
            + f'<p class="note">elapsed seconds over the last '
              f"{len(sweeps)} sweep(s); latest "
              f"{latest.get('points', 0)} point(s), "
              f"{latest.get('cache_hits', 0)} cache hit(s)</p>"
              "</section>")

    diffs = by_command.get("diff", [])
    if diffs:
        bad = sum(1 for entry in diffs
                  if not entry["summary"].get("ok"))
        verdict = (f'<span class="error">{bad} run(s) with '
                   f"mismatches</span>" if bad
                   else "all runs matched")
        parts.append(
            f"<section><h2>Differential runs</h2>"
            f'<p class="note">{len(diffs)} recorded; {verdict}</p>'
            f"</section>")
    return parts


def _analysis_section(analysis):
    root = analysis["root"]
    rows = "".join(
        f"<tr><td>{html.escape(str(row['name']))}"
        + (' <span class="error">(error)</span>'
           if row.get("status") == "error" else "")
        + f'</td><td class="num">{_fmt(row["wall_us"] / 1000.0, 2)}'
        + f'</td><td class="num">{_fmt(row["self_us"] / 1000.0, 2)}'
        + "</td></tr>"
        for row in analysis["critical_path"])
    stage_rows = "".join(
        f"<tr><td>{html.escape(str(row['name']))}</td>"
        f'<td class="num">{row["count"]}</td>'
        f'<td class="num">{_fmt(row["total_self_us"] / 1000.0, 2)}'
        f"</td></tr>"
        for row in analysis["stages"][:10])
    return (
        "<section><h2>Latest trace: critical path</h2>"
        f'<p class="note">root {html.escape(str(root["name"]))} '
        f"{_fmt(root['wall_us'] / 1000.0, 2)} ms; critical path "
        f"{_fmt(analysis['critical_path_us'] / 1000.0, 2)} ms "
        f"across {analysis['spans']} span(s)</p>"
        '<table class="critical-path"><tr><th>span</th>'
        '<th class="num">wall ms</th><th class="num">self ms</th>'
        "</tr>" + rows + "</table>"
        "<h2 style=\"margin-top:16px\">Stages by self time</h2>"
        '<table><tr><th>stage</th><th class="num">count</th>'
        '<th class="num">self ms</th></tr>'
        + stage_rows + "</table></section>")


def render_report(ledger_entries=None, analysis=None,
                  metrics_text=None, cache_stats=None,
                  title="repro performance watchtower"):
    """The full standalone dashboard HTML (byte-stable per inputs)."""
    entries = list(ledger_entries or [])
    tiles = [_tile("ledger entries", len(entries))]
    by_command = {}
    for entry in entries:
        by_command.setdefault(entry.get("command", "?"),
                              []).append(entry)
    for command in ("bench", "sweep", "diff"):
        if by_command.get(command):
            tiles.append(_tile(f"{command} runs",
                               len(by_command[command])))
    if analysis is not None:
        tiles.append(_tile(
            "critical path ms",
            _fmt(analysis["critical_path_us"] / 1000.0, 2)))
    if cache_stats:
        tiles.append(_tile("cache entries",
                           cache_stats.get("entries", 0)))

    body = ['<div class="tiles">' + "".join(tiles) + "</div>",
            '<p class="sub"></p>']
    if entries:
        body.extend(_ledger_sections(entries))
    else:
        body.append('<section><h2>Ledger</h2><p class="note">'
                    "empty — bench/sweep/diff runs append to it "
                    "automatically</p></section>")
    if analysis is not None:
        body.append(_analysis_section(analysis))
    if cache_stats:
        rows = "".join(
            f"<tr><td>{html.escape(str(key))}</td>"
            f'<td class="num">'
            f"{html.escape(str(cache_stats[key]))}</td></tr>"
            for key in sorted(cache_stats))
        body.append("<section><h2>Cache</h2><table>"
                    "<tr><th>stat</th><th class=\"num\">value</th>"
                    "</tr>" + rows + "</table></section>")
    if metrics_text:
        body.append("<section><h2>Metrics snapshot</h2><pre>"
                    + html.escape(metrics_text) + "</pre></section>")

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" '
        'content="width=device-width, initial-scale=1">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_STYLE}</style>\n</head>\n<body>\n"
        f"<h1>{html.escape(title)}</h1>\n"
        f'<p class="sub">report schema {REPORT_SCHEMA} &middot; '
        "generated by <code>repro report</code></p>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n")
