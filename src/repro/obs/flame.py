"""Zero-dependency sampling profiler with collapsed-stack output.

Spans tell us *that* ``map_kernel`` took 40 ms; they cannot say which
function inside it burned the cycles.  ``cProfile`` (``repro
profile``) answers that for a single call but its tracing overhead
distorts exactly the tight loops we care about.  This module adds the
third lens: a **sampling** profiler built only on the standard
library — a daemon thread wakes ``hz`` times per second, snapshots
``sys._current_frames()``, and counts call stacks.  Overhead is a
fixed, tiny tax proportional to ``hz``, not to the workload.

Output is the collapsed-stack format (``outer;inner;leaf count`` per
line) that flamegraph.pl / speedscope / inferno all consume, written
by ``--flame-out`` on sweep/bench or ``repro profile --flame``.

Scoping follows the span idiom: ``profiled_span("mapping")`` opens a
span *and* samples the calling thread while it is open, gated by an
explicit ``hz`` or the ``REPRO_PROFILE_HZ`` env var — zero means off,
and off costs nothing.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import Counter
from contextlib import contextmanager

from repro.errors import ReproError
from repro.obs import trace

#: Env var enabling scoped profiling (samples per second; 0/unset = off).
ENV_PROFILE_HZ = "REPRO_PROFILE_HZ"

#: Default sampling rate when profiling is requested without a rate.
#: Prime-ish, so a periodic workload can't hide between samples.
DEFAULT_HZ = 97.0

_lock = threading.Lock()
_accumulated = Counter()


def resolve_hz(hz=None):
    """Effective sampling rate: explicit arg beats env beats off."""
    if hz is not None:
        return float(hz)
    raw = os.environ.get(ENV_PROFILE_HZ, "").strip()
    if not raw:
        return 0.0
    try:
        return float(raw)
    except ValueError:
        raise ReproError(
            f"{ENV_PROFILE_HZ}={raw!r} is not a sampling rate") \
            from None


def _frame_stack(frame):
    """Stack as ``module.func`` names, outermost first."""
    parts = []
    while frame is not None:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return parts


class SamplingProfiler:
    """Wall-clock stack sampler over ``sys._current_frames()``.

    ``thread_ids`` pins sampling to specific threads (e.g. the one
    inside a ``profiled_span``); ``None`` samples every thread except
    the sampler itself.
    """

    def __init__(self, hz=DEFAULT_HZ, thread_ids=None):
        if hz <= 0:
            raise ReproError(f"sampling rate must be > 0, got {hz}")
        self.hz = float(hz)
        self.thread_ids = (set(thread_ids)
                           if thread_ids is not None else None)
        self.counts = Counter()
        self.samples = 0
        self._stop = threading.Event()
        self._thread = None

    def _run(self):
        interval = 1.0 / self.hz
        own = threading.get_ident()
        while not self._stop.wait(interval):
            frames = sys._current_frames()
            for ident, frame in frames.items():
                if ident == own:
                    continue
                if (self.thread_ids is not None
                        and ident not in self.thread_ids):
                    continue
                stack = _frame_stack(frame)
                if stack:
                    self.counts[";".join(stack)] += 1
            self.samples += 1

    def start(self):
        if self._thread is not None:
            raise ReproError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self):
        """Stop sampling; returns the collapsed-stack Counter."""
        if self._thread is None:
            return self.counts
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        return self.counts

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False


def accumulate(counts):
    """Fold a profiler's counts into the process-wide accumulator."""
    with _lock:
        _accumulated.update(counts)


def drain_accumulated():
    """Take and clear everything accumulated so far."""
    with _lock:
        counts = Counter(_accumulated)
        _accumulated.clear()
    return counts


def snapshot_accumulated():
    """Accumulated counts without clearing them."""
    with _lock:
        return Counter(_accumulated)


@contextmanager
def profiled_span(name, hz=None, **attrs):
    """A span that also samples the calling thread while open.

    With an effective rate of zero this is exactly ``trace.span`` —
    the profiling path costs nothing unless asked for.  Collected
    stacks land in the module accumulator so callers (sweep/bench
    ``--flame-out``) can drain one merged profile at the end.
    """
    rate = resolve_hz(hz)
    if rate <= 0:
        with trace.span(name, **attrs):
            yield None
        return
    profiler = SamplingProfiler(
        rate, thread_ids={threading.get_ident()})
    with trace.span(name, profile_hz=rate, **attrs):
        profiler.start()
        try:
            yield profiler
        finally:
            accumulate(profiler.stop())


def collapsed_lines(counts):
    """Collapsed-stack lines (sorted for deterministic output)."""
    return [f"{stack} {count}"
            for stack, count in sorted(counts.items())]


def write_collapsed(path, counts):
    """Write counts in collapsed-stack format; returns the path."""
    with open(path, "w") as handle:
        for line in collapsed_lines(counts):
            handle.write(line + "\n")
    return path


def render_flame(counts, top=25):
    """Terminal summary: hottest leaf functions, then hottest stacks."""
    total = sum(counts.values())
    if not total:
        return ("no samples collected (workload too fast for the "
                "sampling rate — raise --hz or --repeat)")
    leaves = Counter()
    on_stack = Counter()
    for stack, count in counts.items():
        frames = stack.split(";")
        leaves[frames[-1]] += count
        for frame in set(frames):
            on_stack[frame] += count
    lines = [f"{total} sample(s), {len(counts)} distinct stack(s)",
             "",
             f"{'self%':>7s} {'total%':>7s} {'samples':>8s}  function"]
    for name, count in leaves.most_common(top):
        lines.append(f"{count / total:7.1%} "
                     f"{on_stack[name] / total:7.1%} "
                     f"{count:8d}  {name}")
    lines += ["", "hottest stacks:"]
    for stack, count in counts.most_common(min(5, len(counts))):
        frames = stack.split(";")
        tail = ";".join(frames[-4:])
        prefix = "...;" if len(frames) > 4 else ""
        lines.append(f"  {count:6d}  {prefix}{tail}")
    return "\n".join(lines)
