"""A zero-dependency metrics registry with Prometheus exposition.

Three instrument kinds — :class:`Counter` (monotone), :class:`Gauge`
(set/inc/dec), :class:`Histogram` (cumulative buckets + sum + count)
— registered by name in a :class:`MetricsRegistry` and rendered in
the Prometheus text exposition format (version 0.0.4), which is what
``GET /metrics`` on the serve tier and ``repro metrics`` locally
both emit.

Every instrument takes optional *labels*, declared at registration
and supplied as keyword arguments per observation::

    POINTS = REGISTRY.counter(
        "repro_points_total", "Points landed", labels=("source",))
    POINTS.inc(source="cache")

Each instrument serialises its updates under its own lock, so
concurrent scheduler runners, HTTP handler threads and the sweep
engine can all record without a global choke point; registration
itself is idempotent (asking for an existing name with the same kind
and labels returns the existing instrument — double imports must not
fight).

The shared process-wide instruments live at the bottom of this
module on :data:`REGISTRY`: cache traffic, landed points, per-stage
latency, scheduler pressure, HTTP traffic, job latency, simulator
cycles and cross-backend cycle deltas.  An update is one dict lookup
and one locked float add — cheap enough to leave on permanently,
which is the point: metrics have no off switch, only tracing does.
"""

from __future__ import annotations

import threading

from repro.errors import ReproError

#: Default latency buckets (seconds): micro-stage to slow-mapping.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Job end-to-end latency buckets (seconds): probes to long sweeps.
JOB_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
               120.0, 300.0, 600.0)

#: Cross-backend cycle-delta buckets (cycles, absolute).
CYCLE_DELTA_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 1000.0)


def _escape_label_value(value):
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value):
    """Prometheus sample value: integers bare, floats via repr."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_le(bound):
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


def _render_labels(names, values, extra=None):
    pairs = [(name, value) for name, value in zip(names, values)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


class _Instrument:
    """Shared naming/label plumbing of all three instrument kinds."""

    kind = "untyped"

    def __init__(self, name, help_text="", labels=()):
        self.name = name
        self.help = help_text
        self.labels = tuple(labels)
        self._lock = threading.Lock()
        self._values = {}

    def _key(self, label_kwargs):
        if set(label_kwargs) != set(self.labels):
            raise ReproError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labels)}, got "
                f"{sorted(label_kwargs)}")
        return tuple(str(label_kwargs[name]) for name in self.labels)

    def clear(self):
        """Drop every recorded sample (test isolation)."""
        with self._lock:
            self._values.clear()

    def _sorted_items(self):
        with self._lock:
            return sorted(self._values.items())


class Counter(_Instrument):
    """A monotonically increasing count (``*_total`` by convention)."""

    kind = "counter"

    def inc(self, amount=1, **labels):
        if amount < 0:
            raise ReproError(
                f"counter {self.name!r} cannot decrease "
                f"(inc({amount}))")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels):
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self):
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def render(self):
        return [f"{self.name}"
                f"{_render_labels(self.labels, key)} "
                f"{_format_value(value)}"
                for key, value in self._sorted_items()]


class Gauge(_Instrument):
    """A value that goes up and down (depths, free workers)."""

    kind = "gauge"

    def set(self, value, **labels):
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount=1, **labels):
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount=1, **labels):
        self.inc(-amount, **labels)

    def value(self, **labels):
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self):
        return [f"{self.name}"
                f"{_render_labels(self.labels, key)} "
                f"{_format_value(value)}"
                for key, value in self._sorted_items()]


class Histogram(_Instrument):
    """Cumulative-bucket distribution (latencies, deltas).

    Stored per label combination as ``[per-bucket counts, sum,
    count]``; rendered with the conventional ``_bucket{le=...}`` /
    ``_sum`` / ``_count`` series, buckets cumulative and capped by
    ``+Inf`` — exactly what quantile expressions expect.
    """

    kind = "histogram"

    def __init__(self, name, help_text="", labels=(),
                 buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, labels)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ReproError(
                f"histogram {self.name!r} needs at least one bucket")

    def observe(self, value, **labels):
        key = self._key(labels)
        value = float(value)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = [[0] * len(self.buckets), 0.0, 0]
                self._values[key] = state
            counts, _, _ = state
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            state[1] += value
            state[2] += 1

    def count(self, **labels):
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            return 0 if state is None else state[2]

    def sum(self, **labels):
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            return 0.0 if state is None else state[1]

    def render(self):
        lines = []
        for key, (counts, total, count) in self._sorted_items():
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative = bucket_count
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(self.labels, key, ('le', _format_le(bound)))}"
                    f" {cumulative}")
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(self.labels, key, ('le', '+Inf'))}"
                f" {count}")
            lines.append(f"{self.name}_sum"
                         f"{_render_labels(self.labels, key)} "
                         f"{_format_value(total)}")
            lines.append(f"{self.name}_count"
                         f"{_render_labels(self.labels, key)} "
                         f"{count}")
        return lines


class MetricsRegistry:
    """Named instruments, registration-ordered, renderable as text."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}

    def _register(self, cls, name, help_text, labels, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.labels != tuple(labels)):
                    raise ReproError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labels)}")
                return existing
            instrument = cls(name, help_text, labels, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name, help_text="", labels=()):
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name, help_text="", labels=()):
        return self._register(Gauge, name, help_text, labels)

    def histogram(self, name, help_text="", labels=(),
                  buckets=DEFAULT_BUCKETS):
        return self._register(Histogram, name, help_text, labels,
                              buckets=buckets)

    def get(self, name):
        with self._lock:
            return self._instruments.get(name)

    def names(self):
        with self._lock:
            return list(self._instruments)

    def render(self):
        """The Prometheus text exposition of every instrument.

        ``# HELP`` / ``# TYPE`` headers per family, samples in label
        order — parseable by any Prometheus scraper, stable enough
        to golden-test.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        lines = []
        for instrument in instruments:
            if instrument.help:
                lines.append(f"# HELP {instrument.name} "
                             f"{instrument.help}")
            lines.append(f"# TYPE {instrument.name} "
                         f"{instrument.kind}")
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"

    def reset_values(self):
        """Zero every instrument, keep the definitions (tests)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.clear()


#: The process-wide default registry: what ``/metrics`` and
#: ``repro metrics`` expose.
REGISTRY = MetricsRegistry()


# ----------------------------------------------------------------------
# The shared instruments.  Declared eagerly so every family shows up
# in the exposition (with headers) from the first scrape, whether or
# not it has recorded yet.
# ----------------------------------------------------------------------
CACHE_HITS = REGISTRY.counter(
    "repro_cache_hits_total", "Result-cache lookups that hit")
CACHE_MISSES = REGISTRY.counter(
    "repro_cache_misses_total", "Result-cache lookups that missed")
CACHE_STORES = REGISTRY.counter(
    "repro_cache_stores_total", "Result-cache entries written")
CACHE_EVICTIONS = REGISTRY.counter(
    "repro_cache_evictions_total",
    "Result-cache entries evicted by the byte cap")
CACHE_ENTRIES = REGISTRY.gauge(
    "repro_cache_entries", "Result-cache entries on disk at last scan")
CACHE_BYTES = REGISTRY.gauge(
    "repro_cache_bytes", "Result-cache bytes on disk at last scan")
CACHE_ORPHANED_BYTES = REGISTRY.gauge(
    "repro_cache_orphaned_bytes",
    "Result-cache bytes from other cache formats at last scan")
CACHE_CORRUPT = REGISTRY.counter(
    "repro_cache_corrupt_entries_total",
    "Result-cache entries discarded because they failed to load")

POINTS = REGISTRY.counter(
    "repro_points_total", "Experiment points landed by source",
    labels=("source",))
STAGE_SECONDS = REGISTRY.histogram(
    "repro_stage_seconds", "Per-pipeline-stage latency",
    labels=("stage",))
SIM_CYCLES = REGISTRY.counter(
    "repro_sim_cycles_total", "Simulated CGRA cycles by engine",
    labels=("engine",))
CYCLE_DELTA = REGISTRY.histogram(
    "repro_backend_cycle_delta",
    "Absolute per-point cycle disagreement between diffed backends",
    buckets=CYCLE_DELTA_BUCKETS)

HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total", "Serve-tier HTTP requests answered",
    labels=("method", "code"))
SCHED_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_scheduler_queue_depth", "Jobs waiting for a runner")
SCHED_REJECTIONS = REGISTRY.counter(
    "repro_scheduler_rejections_total",
    "Submissions bounced with 429 backpressure")
JOBS = REGISTRY.counter(
    "repro_jobs_total", "Jobs finished by terminal status",
    labels=("status",))
JOB_SECONDS = REGISTRY.histogram(
    "repro_job_seconds", "Job end-to-end latency (running to done)",
    buckets=JOB_BUCKETS)
WORKERS_TOTAL = REGISTRY.gauge(
    "repro_workers_total", "Worker-process budget of the serve pool")
WORKERS_FREE = REGISTRY.gauge(
    "repro_workers_free", "Unallocated workers in the serve pool")

POOL_RESTARTS = REGISTRY.counter(
    "repro_pool_restarts_total",
    "Worker-pool restarts after a crash or a reaped point deadline",
    labels=("cause",))
POINT_RETRIES = REGISTRY.counter(
    "repro_point_retries_total",
    "Point specs resubmitted to a restarted worker pool",
    labels=("reason",))
POINT_QUARANTINES = REGISTRY.counter(
    "repro_point_quarantines_total",
    "Point specs given up on after exhausting their retry budget",
    labels=("reason",))
JOBS_REPLAYED = REGISTRY.counter(
    "repro_jobs_replayed_total",
    "Jobs requeued from the durable job journal at startup")
FAULTS_INJECTED = REGISTRY.counter(
    "repro_fault_injections_total",
    "Faults injected by the repro.chaos layer, by kind",
    labels=("kind",))
