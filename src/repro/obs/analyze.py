"""Trace analytics: turn a span tree into operator answers.

PR 8's tracer records *what happened*; this module answers *what it
means*.  Given a list of span dicts — live from the collector, or
reloaded from a ``--trace-out`` Chrome trace file — it computes:

- the **critical path**: the chain from the root span down through
  whichever child ends last at every level, i.e. the sequence of
  operations that actually bounded the run's wall clock (everything
  off this path overlapped something on it);
- **per-stage self time**: wall time exclusive of children, grouped
  by span name — the honest answer to "where does the time go",
  since a parent span's wall time double-counts everything nested
  inside it;
- **worker occupancy**: per ``(pid, thread)`` lane, how much of the
  root window the lane spent inside spans — idle lanes in a
  distributed sweep show up as low utilisation, not as a feeling;
- **straggler shards**: in a ``run_distributed`` trace, shards whose
  wall time exceeds ``straggler_factor ×`` the median shard — the
  servers the fleet waited on.

The result is a JSON-safe payload (``kind: "trace-analysis"``,
schema-versioned like the bench/sweep documents) surfaced by
``repro trace --analyze`` and folded into the ``repro report``
dashboard.  Spans are analysed as *data*: a subset trace whose
parents were dropped by the bounded collector degrades to multiple
roots (counted in ``orphans``), never to a crash.
"""

from __future__ import annotations

import json
import statistics

from repro.errors import ReproError

#: Version of the trace-analysis payload.
TRACE_ANALYSIS_SCHEMA = 1

#: A shard slower than this multiple of the median shard is a
#: straggler (only meaningful with >= 2 shards).
DEFAULT_STRAGGLER_FACTOR = 1.5

#: Chrome-event ``args`` keys that carry span identity rather than
#: user attributes (the inverse of what ``chrome_trace`` injects).
_IDENTITY_ARGS = ("trace_id", "span_id", "parent_id", "cpu_ms",
                  "status")


def spans_from_chrome(document):
    """Reconstruct span dicts from Chrome trace-event JSON.

    The exporter rides every span's identity along in ``args``
    precisely so a saved ``--trace-out`` file remains analysable —
    this is the inverse transform.  Events without a ``span_id``
    (foreign traces, hand-edited files) are skipped, not fatal.
    """
    if not isinstance(document, dict):
        raise ReproError("not a Chrome trace document (expected a "
                         "JSON object with traceEvents)")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ReproError("not a Chrome trace document (no "
                         "traceEvents list)")
    spans = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        span_id = args.get("span_id")
        if not isinstance(span_id, str) or not span_id:
            continue
        attrs = {key: value for key, value in args.items()
                 if key not in _IDENTITY_ARGS}
        try:
            cpu_us = int(round(float(args.get("cpu_ms", 0)) * 1000))
        except (TypeError, ValueError):
            cpu_us = 0
        spans.append({
            "name": str(event.get("name", "?")),
            "trace_id": str(args.get("trace_id") or ""),
            "span_id": span_id,
            "parent_id": args.get("parent_id"),
            "start_unix_us": int(event.get("ts", 0) or 0),
            "wall_us": int(event.get("dur", 0) or 0),
            "cpu_us": cpu_us,
            "pid": event.get("pid", 0),
            "thread": str(event.get("tid", "main")),
            "status": str(args.get("status", "ok")),
            "attrs": attrs,
        })
    return spans


def load_trace_file(path):
    """Spans from a ``--trace-out`` Chrome trace JSON file."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as error:
        raise ReproError(f"cannot read trace {path}: {error}") \
            from None
    except json.JSONDecodeError as error:
        raise ReproError(f"trace {path} is not JSON: {error}") \
            from None
    spans = spans_from_chrome(document)
    if not spans:
        raise ReproError(
            f"trace {path} holds no repro spans (was it written by "
            f"--trace-out / repro trace?)")
    return spans


def _index(spans):
    """``(by_id, children, roots, orphans)`` for a span list.

    A root is a span with no parent *in this list* — the genuine
    root, plus any span whose parent the bounded collector dropped
    (those are additionally counted as orphans).
    """
    by_id = {}
    for span in spans:
        span_id = span.get("span_id")
        if isinstance(span_id, str) and span_id:
            by_id.setdefault(span_id, span)
    children = {}
    roots, orphans = [], 0
    for span in by_id.values():
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
            if parent is not None:
                orphans += 1
    for kids in children.values():
        kids.sort(key=lambda s: (s.get("start_unix_us", 0),
                                 s["span_id"]))
    return by_id, children, roots, orphans


def _wall(span):
    return max(0, int(span.get("wall_us", 0) or 0))


def _end(span):
    return int(span.get("start_unix_us", 0) or 0) + _wall(span)


def _self_us(span, children):
    """Wall time exclusive of children, floored at zero.

    Children overlap freely (parallel workers under one sweep span),
    so the naive subtraction can go negative; a negative self time is
    an artifact, not an answer.
    """
    kids = children.get(span["span_id"], ())
    return max(0, _wall(span) - sum(_wall(kid) for kid in kids))


def _start(span):
    return int(span.get("start_unix_us", 0) or 0)


def _critical_segments(span, children, lo=None, hi=None, depth=0):
    """``(span, start, end)`` segments that bounded the wall clock.

    Walk backwards from the span's end: whatever child is active at
    the cursor is what the parent was waiting for, so recurse into
    it, then jump the cursor to that child's start and repeat.  Gaps
    between children — and a childless stretch — are the span's own
    time on the path.  Unlike a naive "descend into the latest-ending
    child" this credits *every* stage of a sequential pipeline, not
    just the last one.  Child intervals are clipped to the parent's
    (cross-process clock skew must not mint time), and segments are
    disjoint by construction, so their sum cannot exceed the root's
    wall.
    """
    start, end = _start(span), _end(span)
    if hi is not None:
        end = min(end, hi)
    if lo is not None:
        start = max(start, lo)
    if end <= start or depth > 200:
        return []
    segments = []
    cursor = end
    kids = [kid for kid in children.get(span["span_id"], ())
            if _end(kid) > start and _start(kid) < end]
    for kid in sorted(kids, key=lambda s: (_end(s), s["span_id"]),
                      reverse=True):
        kid_end = min(_end(kid), cursor)
        if kid_end <= start:
            break
        if kid_end < cursor:
            segments.append((span, kid_end, cursor))
        segments.extend(_critical_segments(
            kid, children, lo=start, hi=kid_end, depth=depth + 1))
        cursor = max(_start(kid), start)
        if cursor <= start:
            break
    if cursor > start:
        segments.append((span, start, cursor))
    return segments


def _lane_busy_us(lane_spans):
    """Union length of the lane's span intervals (overlap-safe)."""
    intervals = sorted((int(s.get("start_unix_us", 0) or 0), _end(s))
                       for s in lane_spans)
    busy = 0
    cursor = None
    for start, end in intervals:
        if cursor is None or start > cursor:
            busy += max(0, end - start)
            cursor = end
        elif end > cursor:
            busy += end - cursor
            cursor = end
    return busy


def analyze_spans(spans, straggler_factor=DEFAULT_STRAGGLER_FACTOR):
    """The :data:`TRACE_ANALYSIS_SCHEMA` payload for a span list."""
    spans = [span for span in spans
             if isinstance(span, dict)
             and isinstance(span.get("span_id"), str)]
    if not spans:
        raise ReproError("no spans to analyze (enable tracing with "
                         "--trace-out / REPRO_TRACE=1, or point "
                         "--from at a saved trace)")
    by_id, children, roots, orphans = _index(spans)
    root = max(roots, key=lambda s: (_wall(s), s["span_id"]))
    root_wall = _wall(root)

    segments = _critical_segments(root, children)
    # One row per span on the path, in chronological order of first
    # contribution; self_us is its total on-path time.
    on_path = {}
    for span, seg_start, seg_end in sorted(
            segments, key=lambda seg: (seg[1], seg[0]["span_id"])):
        row = on_path.get(span["span_id"])
        if row is None:
            attrs = span.get("attrs") or {}
            row = on_path[span["span_id"]] = {
                "span_id": span["span_id"],
                "name": span.get("name", "?"),
                "wall_us": _wall(span),
                "self_us": 0,
                "start_unix_us": _start(span),
                "status": span.get("status", "ok"),
            }
            if attrs:
                row["attrs"] = {key: attrs[key]
                                for key in sorted(attrs)}
        row["self_us"] += seg_end - seg_start
    path_rows = list(on_path.values())
    # Segments are disjoint inside the root window, so the sum is
    # <= the root's wall by construction; the cap makes it a hard
    # guarantee even for traces whose cross-process clocks disagree.
    path_us = min(sum(row["self_us"] for row in path_rows),
                  root_wall) if root_wall else 0

    stages = {}
    for span in by_id.values():
        name = span.get("name", "?")
        entry = stages.setdefault(name, {
            "name": name, "count": 0, "total_self_us": 0,
            "total_wall_us": 0, "max_wall_us": 0, "errors": 0})
        entry["count"] += 1
        entry["total_self_us"] += _self_us(span, children)
        entry["total_wall_us"] += _wall(span)
        entry["max_wall_us"] = max(entry["max_wall_us"], _wall(span))
        if span.get("status") == "error":
            entry["errors"] += 1
    stage_rows = sorted(stages.values(),
                        key=lambda row: (-row["total_self_us"],
                                         row["name"]))

    lanes = {}
    for span in by_id.values():
        lanes.setdefault((span.get("pid", 0),
                          str(span.get("thread", "main"))),
                         []).append(span)
    worker_rows = []
    for (pid, thread), lane_spans in sorted(lanes.items(),
                                            key=lambda kv: (str(kv[0][0]),
                                                            kv[0][1])):
        busy = min(_lane_busy_us(lane_spans), root_wall) \
            if root_wall else _lane_busy_us(lane_spans)
        worker_rows.append({
            "pid": pid, "thread": thread,
            "spans": len(lane_spans), "busy_us": busy,
            "utilization": round(busy / root_wall, 4)
            if root_wall else 0.0,
        })

    shard_spans = [span for span in by_id.values()
                   if span.get("name") == "shard"]
    shard_walls = sorted(_wall(span) for span in shard_spans)
    stragglers = []
    median_us = statistics.median(shard_walls) if shard_walls else 0
    if len(shard_spans) >= 2 and median_us > 0:
        for span in shard_spans:
            ratio = _wall(span) / median_us
            if ratio > straggler_factor:
                attrs = span.get("attrs") or {}
                stragglers.append({
                    "span_id": span["span_id"],
                    "shard": attrs.get("shard"),
                    "server": attrs.get("server"),
                    "wall_us": _wall(span),
                    "ratio": round(ratio, 2),
                })
        stragglers.sort(key=lambda row: -row["wall_us"])

    return {
        "kind": "trace-analysis",
        "schema": TRACE_ANALYSIS_SCHEMA,
        "trace_id": root.get("trace_id", ""),
        "spans": len(by_id),
        "roots": len(roots),
        "orphans": orphans,
        "errors": sum(1 for span in by_id.values()
                      if span.get("status") == "error"),
        "root": {"span_id": root["span_id"],
                 "name": root.get("name", "?"),
                 "wall_us": root_wall},
        "critical_path": path_rows,
        "critical_path_us": path_us,
        "stages": stage_rows,
        "workers": worker_rows,
        "shards": {
            "count": len(shard_spans),
            "median_us": int(median_us),
            "max_us": shard_walls[-1] if shard_walls else 0,
            "straggler_factor": straggler_factor,
            "stragglers": stragglers,
        },
    }


def _ms(us):
    return f"{us / 1000.0:9.2f} ms"


def render_analysis(payload):
    """Human-readable analysis (what ``repro trace --analyze`` prints)."""
    root = payload["root"]
    lines = [
        f"trace {payload['trace_id'] or '?'}: {payload['spans']} "
        f"span(s), root {root['name']} {_ms(root['wall_us']).strip()}"
        + (f", {payload['errors']} error span(s)"
           if payload["errors"] else "")
        + (f", {payload['orphans']} orphan(s)"
           if payload["orphans"] else ""),
        "",
        f"critical path — {_ms(payload['critical_path_us']).strip()} "
        f"of the root's {_ms(root['wall_us']).strip()}:",
    ]
    for row in payload["critical_path"]:
        attrs = row.get("attrs") or {}
        detail = " ".join(f"{key}={attrs[key]}"
                          for key in sorted(attrs)
                          if key not in ("stage",))
        flag = " !" if row["status"] == "error" else ""
        lines.append(f"  {row['name']:24s} {_ms(row['wall_us'])} wall "
                     f"{_ms(row['self_us'])} self{flag}"
                     + (f"  [{detail}]" if detail else ""))
    lines += ["", f"{'stage':24s} {'count':>6s} {'self':>12s} "
                  f"{'wall':>12s} {'max':>12s}"]
    for row in payload["stages"]:
        lines.append(f"{row['name']:24s} {row['count']:6d} "
                     f"{_ms(row['total_self_us'])} "
                     f"{_ms(row['total_wall_us'])} "
                     f"{_ms(row['max_wall_us'])}")
    lines += ["", "worker occupancy (of the root window):"]
    for row in payload["workers"]:
        lines.append(f"  pid {row['pid']}/{row['thread']:20s} "
                     f"{row['spans']:4d} span(s) "
                     f"{_ms(row['busy_us'])} busy "
                     f"{row['utilization']:6.1%}")
    shards = payload["shards"]
    if shards["count"]:
        lines += ["", f"shards: {shards['count']}, median "
                      f"{_ms(shards['median_us']).strip()}, max "
                      f"{_ms(shards['max_us']).strip()}"]
        if shards["stragglers"]:
            for row in shards["stragglers"]:
                lines.append(
                    f"  straggler shard {row['shard']} @ "
                    f"{row['server']}: {_ms(row['wall_us']).strip()} "
                    f"({row['ratio']}x median)")
        else:
            lines.append(f"  no shard beyond "
                         f"{shards['straggler_factor']}x the median")
    return "\n".join(lines)
