"""Unit tests for the execution-backend registry.

The registry's contract: named, validated, cache-key-perturbing
backends behind the one ``PointSpec -> ExperimentPoint`` signature.
The differential *behaviour* of the two seed backends is covered by
``tests/property/test_differential.py`` and the golden snapshots;
here we test the plumbing — registration, lookup diagnostics, axis
threading, cache keys and payload round-trips.
"""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.runtime.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    backend_names,
    get_backend,
    register_backend,
    validated_backend,
)
from repro.runtime.cache import point_key, spec_payload
from repro.runtime.shard import (
    point_from_json,
    point_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.runtime.sweep import (
    PointSpec,
    compute_point,
    sweep_specs,
    validated_sweep_specs,
)

SPEC = PointSpec("dc_filter", "HOM64", "basic")


class TestRegistry:
    def test_both_seed_backends_registered(self):
        assert backend_names() == ("analytic", "cycle")
        assert DEFAULT_BACKEND == "analytic"

    def test_lookup_returns_callable_backend(self):
        backend = get_backend("cycle")
        assert backend.name == "cycle"
        assert callable(backend)

    def test_unknown_backend_names_the_valid_set(self):
        with pytest.raises(ReproError, match="analytic, cycle"):
            get_backend("sat")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            register_backend("cycle")(lambda spec: None)
        assert len(BACKENDS) == 2

    def test_validated_backend_defaults_none(self):
        assert validated_backend(None) == DEFAULT_BACKEND
        assert validated_backend("cycle") == "cycle"
        with pytest.raises(ReproError, match="unknown backend"):
            validated_backend("typo")


class TestSpecAxis:
    def test_default_backend_on_plain_specs(self):
        assert SPEC.backend == DEFAULT_BACKEND
        assert SPEC.resolve().backend == DEFAULT_BACKEND

    def test_resolve_validates_the_backend(self):
        bad = dataclasses.replace(SPEC, backend="typo")
        with pytest.raises(ReproError, match="unknown backend"):
            bad.resolve()

    def test_describe_tags_non_default_backends_only(self):
        assert "#" not in SPEC.describe()
        tagged = dataclasses.replace(SPEC, backend="cycle")
        assert tagged.describe().endswith("#cycle")

    def test_backend_perturbs_the_cache_key(self):
        assert point_key(SPEC) != point_key(
            dataclasses.replace(SPEC, backend="cycle"))

    def test_backend_in_spec_payload_and_json_roundtrip(self):
        spec = dataclasses.replace(SPEC, backend="cycle").resolve()
        payload = spec_payload(spec)
        assert payload["backend"] == "cycle"
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_payloads_without_backend_default(self):
        # Schema-2 shard files predate the axis; reading one must
        # yield default-backend specs, not crash.
        data = spec_to_json(SPEC.resolve())
        del data["backend"]
        assert spec_from_json(data).backend == DEFAULT_BACKEND

    def test_sweep_specs_thread_the_axis(self):
        specs = sweep_specs(kernels=("fir",), configs=("HOM64",),
                            variants=("basic",), backend="cycle")
        assert [spec.backend for spec in specs] == ["cycle"]

    def test_validated_sweep_specs_reject_unknown_backend(self):
        with pytest.raises(ReproError, match="unknown backend"):
            validated_sweep_specs(kernels=("fir",), backend="typo")

    def test_validated_sweep_specs_default_backend(self):
        specs = validated_sweep_specs(kernels=("fir",),
                                      configs=("HOM64",),
                                      variants=("basic",))
        assert specs[0].backend == DEFAULT_BACKEND


class TestDispatch:
    def test_compute_point_dispatches_to_the_named_backend(self):
        analytic = compute_point(PointSpec("dc_filter", "HOM64",
                                           "basic"))
        cycle = compute_point(PointSpec("dc_filter", "HOM64", "basic",
                                        backend="cycle"))
        assert analytic.mapped and cycle.mapped
        # Identical outputs, measured cycles never above analytic.
        assert analytic.output_digest == cycle.output_digest
        assert cycle.cycles <= analytic.cycles

    def test_unmappable_outcome_is_backend_independent(self):
        # fft needs more context than an 8-word CM offers; both
        # backends share the mapping front half, so both must report
        # the identical deterministic outcome.
        depths = (8,) * 16
        points = [compute_point(PointSpec("fft", "cm8", "full",
                                          cm_depths=depths,
                                          backend=name))
                  for name in ("analytic", "cycle")]
        assert points[0].error == points[1].error
        assert points[0].error in ("unmappable", "context overflow")

    def test_output_digest_survives_the_point_json_roundtrip(self):
        point = compute_point(PointSpec("dc_filter", "HOM64", "basic",
                                        backend="cycle"))
        rebuilt = point_from_json(point_to_json(point))
        assert rebuilt.output_digest == point.output_digest
        assert rebuilt.cycles == point.cycles
