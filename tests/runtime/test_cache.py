"""Unit tests for the persistent result cache.

Everything runs against ``tmp_path``-scoped cache directories — the
suite never touches the user's real ``~/.cache/repro``.
"""

import os
import pickle

import pytest

from repro.mapping.flow import FlowOptions
from repro.runtime.cache import (
    ENV_CACHE_DIR,
    ENV_CACHE_MAX_BYTES,
    ResultCache,
    default_cache_dir,
    default_max_bytes,
    parse_bytes,
    point_key,
)
from repro.runtime.sweep import ExperimentPoint, PointSpec

SPEC = PointSpec("dc_filter", "HOM64", "basic")


def make_point(cycles=123):
    return ExperimentPoint("dc_filter", "HOM64", "basic", cycles=cycles)


class TestPointKey:
    def test_same_spec_same_key(self):
        assert point_key(SPEC) == point_key(
            PointSpec("dc_filter", "HOM64", "basic"))

    def test_none_options_resolve_to_variant_preset(self):
        explicit = PointSpec("dc_filter", "HOM64", "basic",
                             options=FlowOptions.basic())
        assert point_key(SPEC) == point_key(explicit)

    def test_every_determining_field_perturbs_the_key(self):
        baseline = point_key(SPEC)
        perturbed = [
            PointSpec("fir", "HOM64", "basic"),
            PointSpec("dc_filter", "HET1", "basic"),
            PointSpec("dc_filter", "HOM64", "full"),
            PointSpec("dc_filter", "HOM64", "basic", seed=8),
            PointSpec("dc_filter", "HOM64", "basic",
                      options=FlowOptions.basic(seed=3)),
            PointSpec("dc_filter", "HOM64", "basic",
                      options=FlowOptions.basic(prune_cap=13)),
            PointSpec("dc_filter", "HOM64", "basic",
                      cm_depths=(64,) * 16),
        ]
        keys = [point_key(spec) for spec in perturbed]
        assert baseline not in keys
        assert len(set(keys)) == len(keys)

    def test_empty_cm_depths_is_rejected_early(self):
        # () must not collide with None (the Table I lookup) — since
        # PointSpec validates the array shape, it cannot even resolve.
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="CM depths"):
            point_key(PointSpec("dc_filter", "HOM64", "basic",
                                cm_depths=()))

    def test_rows_cols_perturb_the_key(self):
        # The same 16 depths on a 4x4 and a 2x8 array are different
        # machines; the explicit default shape hashes like None.
        depths = (64,) * 16
        base = PointSpec("dc_filter", "HOM64", "basic",
                         cm_depths=depths)
        explicit = PointSpec("dc_filter", "HOM64", "basic",
                             cm_depths=depths, rows=4, cols=4)
        reshaped = PointSpec("dc_filter", "HOM64", "basic",
                             cm_depths=depths, rows=2, cols=8)
        assert point_key(base) == point_key(explicit)
        assert point_key(reshaped) != point_key(base)

    def test_rows_cols_without_cm_depths_is_rejected(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="rows/cols"):
            point_key(PointSpec("dc_filter", "HOM64", "basic", rows=4))

    def test_config_name_case_is_normalised(self):
        # get_config() is case-insensitive, so the keys must agree.
        assert point_key(PointSpec("dc_filter", "hom64", "basic")) \
            == point_key(SPEC)

    def test_package_version_perturbs_the_key(self):
        assert point_key(SPEC, version="1.0.0") \
            != point_key(SPEC, version="1.0.1")


class TestHitMissInvalidate:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_point(SPEC) is None
        assert cache.misses == 1
        cache.store_point(SPEC, make_point())
        assert cache.stores == 1
        got = cache.get_point(SPEC)
        assert got is not None
        assert got.cycles == 123
        assert cache.hits == 1

    def test_roundtrip_preserves_fields(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = ExperimentPoint("dc_filter", "HET2", "full",
                                compile_seconds=1.5, cycles=308,
                                error=None)
        cache.store_point(SPEC, point)
        got = cache.get_point(SPEC)
        assert (got.kernel_name, got.config_name, got.variant) \
            == ("dc_filter", "HET2", "full")
        assert got.cycles == 308
        assert got.compile_seconds == 1.5

    def test_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_point(SPEC, make_point())
        assert cache.invalidate_point(SPEC) is True
        assert cache.get_point(SPEC) is None
        assert cache.invalidate_point(SPEC) is False

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_point(SPEC, make_point())
        cache.store_point(PointSpec("fir", "HET1", "full"), make_point())
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_distinct_options_hit_distinct_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        custom = PointSpec("dc_filter", "HOM64", "basic",
                           options=FlowOptions.basic(seed=3))
        cache.store_point(SPEC, make_point(cycles=100))
        cache.store_point(custom, make_point(cycles=200))
        assert cache.get_point(SPEC).cycles == 100
        assert cache.get_point(custom).cycles == 200


class TestAtomicWrites:
    def test_partial_temp_file_is_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(SPEC)
        # Simulate a writer that died mid-write: a temp file exists,
        # the final name does not.
        partial = tmp_path / f"{key}.pkl.tmp1234"
        partial.write_bytes(pickle.dumps(make_point())[:10])
        assert cache.get(key) is None
        assert cache.entries() == []

    def test_truncated_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(SPEC)
        cache.put(key, make_point())
        payload = cache.path_for(key).read_bytes()
        cache.path_for(key).write_bytes(payload[: len(payload) // 2])
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(SPEC)
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_bytes(b"not a pickle at all")
        assert cache.get(key) is None

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_point(SPEC, make_point())
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_clear_sweeps_stray_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "deadbeef.pkl.tmp99").write_bytes(b"partial")
        cache.store_point(SPEC, make_point())
        assert cache.clear() == 2
        assert list(tmp_path.iterdir()) == []


def spec_for(seed):
    return PointSpec("dc_filter", "HOM64", "basic", seed=seed)


def fill(cache, count):
    """Store ``count`` distinct entries with strictly older mtimes
    for lower seeds, so LRU order is unambiguous."""
    for seed in range(count):
        path = cache.store_point(spec_for(seed), make_point(seed))
        os.utime(path, (1000 + seed, 1000 + seed))
    return [cache.path_for(point_key(spec_for(seed)))
            for seed in range(count)]


class TestParseBytes:
    @pytest.mark.parametrize("text,expected", [
        ("4096", 4096), ("0", 0), (" 512K ", 512 * 1024),
        ("64M", 64 * 1024 ** 2), ("2G", 2 * 1024 ** 3),
        ("2g", 2 * 1024 ** 3),
    ])
    def test_accepted(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("text", ["", "K", "12X", "1.5M", "-4"])
    def test_rejected(self, text):
        with pytest.raises(ValueError):
            parse_bytes(text)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_BYTES, "64K")
        assert default_max_bytes() == 64 * 1024
        monkeypatch.delenv(ENV_CACHE_MAX_BYTES)
        assert default_max_bytes() is None

    def test_env_zero_means_unlimited(self, monkeypatch):
        # The common env convention — a standing cap of 0 would evict
        # every entry the moment it is written.
        monkeypatch.setenv(ENV_CACHE_MAX_BYTES, "0")
        assert default_max_bytes() is None

    def test_cache_picks_up_env_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_BYTES, "4096")
        assert ResultCache(tmp_path).max_bytes == 4096


class TestEviction:
    def test_stores_respect_the_byte_cap(self, tmp_path):
        probe = ResultCache(tmp_path)
        probe.store_point(spec_for(0), make_point())
        entry_size = probe.size_bytes()
        probe.clear()

        cache = ResultCache(tmp_path, max_bytes=3 * entry_size)
        fill(cache, 6)
        assert cache.size_bytes() <= 3 * entry_size
        assert len(cache.entries()) == 3
        assert cache.evictions == 3

    def test_oldest_entries_evicted_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        paths = fill(cache, 4)
        entry_size = cache.size_bytes() // 4
        evicted = cache.prune(2 * entry_size)
        assert evicted == 2
        # The two oldest (lowest mtime) are gone, the newest remain.
        assert [path.exists() for path in paths] \
            == [False, False, True, True]

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path)
        paths = fill(cache, 3)
        entry_size = cache.size_bytes() // 3
        # Touch the oldest entry via a hit; now the middle one is LRU.
        assert cache.get_point(spec_for(0)) is not None
        cache.prune(2 * entry_size)
        assert paths[0].exists()
        assert not paths[1].exists()

    def test_prune_without_any_cap_is_an_error(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune()

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 3)
        assert cache.prune(0) == 3
        assert cache.entries() == []

    def test_uncapped_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 5)
        assert cache.evictions == 0
        assert len(cache.entries()) == 5


class TestStats:
    def test_stats_accounting(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10 ** 9)
        fill(cache, 2)
        cache.get_point(spec_for(0))
        cache.get_point(spec_for(99))  # miss
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] == cache.size_bytes()
        assert stats["total_bytes"] > 0
        assert stats["max_bytes"] == 10 ** 9
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 2
        assert stats["evictions"] == 0
        assert stats["directory"] == str(tmp_path)

    def test_stats_on_missing_directory(self, tmp_path):
        stats = ResultCache(tmp_path / "nowhere").stats()
        assert stats["entries"] == 0
        assert stats["total_bytes"] == 0
        assert stats["orphaned_entries"] == 0
        assert stats["orphaned_bytes"] == 0


class TestFormatOrphans:
    """The format-4 bump (backend in the key, ``f4-`` name prefix)
    must leave a cache written by formats 2/3 usable: old entries are
    ignored — never loaded, never crashed on — and visibly reported
    as orphaned bytes so the user knows prune/clear reclaims them.
    """

    def old_format_dir(self, tmp_path, entries=3):
        """A cache directory as formats 2/3 left it: bare-hash
        filenames, no format prefix, arbitrary pickle payloads."""
        tmp_path.mkdir(exist_ok=True)
        for i in range(entries):
            stale = tmp_path / f"{'%040x' % (i + 1)}{'0' * 24}.pkl"
            stale.write_bytes(pickle.dumps(make_point(cycles=i)))
        return tmp_path

    def test_old_entries_are_ignored_not_crashed_on(self, tmp_path):
        cache = ResultCache(self.old_format_dir(tmp_path))
        # Old-format entries never satisfy a lookup (even though they
        # hold valid pickles): the key's filename now carries the
        # format prefix, so the miss recomputes instead of serving a
        # result keyed without the backend field.
        assert cache.get_point(SPEC) is None
        assert cache.misses == 1
        path = cache.store_point(SPEC, make_point(cycles=777))
        assert path.name.startswith("f")
        assert cache.get_point(SPEC).cycles == 777

    def test_stats_report_orphaned_bytes(self, tmp_path):
        cache = ResultCache(self.old_format_dir(tmp_path, entries=2))
        cache.store_point(SPEC, make_point())
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["orphaned_entries"] == 2
        assert 0 < stats["orphaned_bytes"] < stats["total_bytes"]

    def test_fresh_cache_has_no_orphans(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_point(SPEC, make_point())
        stats = cache.stats()
        assert stats["orphaned_entries"] == 0
        assert stats["orphaned_bytes"] == 0

    def test_clear_reclaims_orphans(self, tmp_path):
        cache = ResultCache(self.old_format_dir(tmp_path, entries=2))
        cache.store_point(SPEC, make_point())
        assert cache.clear() == 3
        assert cache.stats()["orphaned_entries"] == 0

    def test_prune_to_zero_reclaims_orphans(self, tmp_path):
        cache = ResultCache(self.old_format_dir(tmp_path, entries=2))
        assert cache.prune(0) == 2
        assert cache.stats()["entries"] == 0


class TestCacheDir:
    def test_env_var_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        cache = ResultCache()
        assert cache.directory == tmp_path / "elsewhere"

    def test_default_is_under_home(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        path = default_cache_dir()
        assert path.name == "repro"
        assert path.parent.name == ".cache"

    def test_get_on_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "never_created")
        assert cache.get_point(SPEC) is None
        assert cache.entries() == []
        assert cache.clear() == 0


class TestCorruptEntry:
    """A garbled on-disk entry is a loud miss, never a crash."""

    def corrupted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_point(SPEC, make_point())
        path = cache.path_for(point_key(SPEC))
        path.write_bytes(b"\x80repro-garbage-not-a-pickle")
        return cache, path

    def test_corrupt_entry_is_a_miss_and_is_discarded(self, tmp_path):
        cache, path = self.corrupted(tmp_path)
        assert cache.get_point(SPEC) is None
        assert cache.misses == 1
        assert not path.exists(), \
            "a corrupt entry must not survive to fail the next run"

    def test_corrupt_entry_bumps_its_own_counter(self, tmp_path):
        from repro.obs import metrics

        before = metrics.CACHE_CORRUPT.total()
        cache, _ = self.corrupted(tmp_path)
        assert cache.get_point(SPEC) is None
        assert metrics.CACHE_CORRUPT.total() == before + 1

    def test_recompute_heals_the_slot(self, tmp_path):
        cache, _ = self.corrupted(tmp_path)
        assert cache.get_point(SPEC) is None
        cache.store_point(SPEC, make_point(cycles=77))
        healed = cache.get_point(SPEC)
        assert healed is not None and healed.cycles == 77
