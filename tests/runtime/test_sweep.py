"""Spec/sweep API tests: resolution, batching, result lookup."""

import pickle

import pytest

from repro.kernels import PAPER_KERNEL_ORDER
from repro.mapping.flow import VARIANTS, FlowOptions
from repro.runtime.pool import run_sweep
from repro.runtime.sweep import (
    LATENCY_CONFIGS,
    PointSpec,
    compute_point,
    sweep_specs,
)


class TestPointSpec:
    def test_resolve_fills_variant_preset(self):
        spec = PointSpec("fir", "HET1", "acmap")
        resolved = spec.resolve()
        assert resolved.options == FlowOptions.with_acmap()
        assert resolved == PointSpec("fir", "HET1", "acmap",
                                     options=FlowOptions.with_acmap())

    def test_resolve_normalises_config_case(self):
        resolved = PointSpec("fir", "het1", "basic").resolve()
        assert resolved.config_name == "HET1"
        assert resolved == PointSpec("fir", "HET1", "basic").resolve()

    def test_resolve_is_idempotent(self):
        spec = PointSpec("fir", "HET1", "full",
                         options=FlowOptions.aware(seed=5))
        assert spec.resolve() is spec

    def test_resolve_coerces_list_cm_depths_to_tuple(self):
        # make_cgra takes lists, so callers naturally pass one; the
        # resolved spec must still be hashable (memo/dedup keys).
        resolved = PointSpec("fir", "HOM16", "full",
                             cm_depths=[16] * 16).resolve()
        assert resolved.cm_depths == (16,) * 16
        hash(resolved)

    def test_spec_is_hashable_and_picklable(self):
        spec = PointSpec("fir", "HET1", "full", cm_depths=(16,) * 16)
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_build_cgra_custom_depths(self):
        spec = PointSpec("fir", "HOM16", "full", cm_depths=(16,) * 16)
        cgra = spec.build_cgra()
        assert cgra.name == "HOM16"
        assert all(cgra.cm_depth(t) == 16 for t in range(cgra.n_tiles))


class TestSweepSpecs:
    def test_full_cartesian_product(self):
        specs = sweep_specs()
        assert len(specs) == (len(PAPER_KERNEL_ORDER)
                              * len(LATENCY_CONFIGS) * len(VARIANTS))
        assert len(set(specs)) == len(specs)
        assert PointSpec("fft", "HET2", "ecmap") in specs

    def test_restricted_axes(self):
        specs = sweep_specs(kernels=("fir",), configs=("HET1",),
                            variants=("basic", "full"))
        assert [(s.kernel_name, s.config_name, s.variant)
                for s in specs] == [("fir", "HET1", "basic"),
                                    ("fir", "HET1", "full")]


class TestComputePoint:
    def test_mapped_point_carries_everything(self):
        point = compute_point(PointSpec("dc_filter", "HET1", "full"))
        assert point.mapped
        assert point.cycles > 0
        assert point.energy_uj > 0
        assert point.compile_seconds > 0
        assert point.mapping.fits
        assert point.error is None

    def test_unmappable_point_is_an_error_value(self):
        point = compute_point(
            PointSpec("dc_filter", "HOM4", "full",
                      options=FlowOptions.aware(max_attempts=2),
                      cm_depths=(4,) * 16))
        assert not point.mapped
        assert point.error == "unmappable"
        assert point.compile_seconds > 0


class TestSweepResult:
    def test_point_lookup_and_partitions(self):
        specs = [PointSpec("dc_filter", "HOM64", "basic"),
                 PointSpec("dc_filter", "HOM4", "full",
                           options=FlowOptions.aware(max_attempts=2),
                           cm_depths=(4,) * 16)]
        result = run_sweep(specs, workers=1)
        assert result.point("dc_filter", "HOM64", "basic").mapped
        assert len(result.mapped) == 1
        assert len(result.unmapped) == 1
        assert result.crashed == []
        with pytest.raises(KeyError):
            result.point("fir", "HOM64", "basic")
        assert "1 no-map" in result.summary()
