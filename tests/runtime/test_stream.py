"""Streaming collection: equivalence with the batch path, progress.

The batch engine is a collector over the stream generator, so the
decisive property is that the *set* of results is identical and only
arrival order differs — a consumer that renders incrementally sees
exactly the points a blocking consumer would have seen.
"""

from repro.mapping.flow import FlowOptions
from repro.runtime import pool
from repro.runtime.cache import ResultCache
from repro.runtime.pool import run_specs
from repro.runtime.stream import StreamUpdate, stream_specs
from repro.runtime.sweep import PointSpec

SPECS = [
    PointSpec("dc_filter", "HOM64", "basic"),
    PointSpec("dc_filter", "HET1", "full"),
    PointSpec("dc_filter", "HOM4", "full",
              options=FlowOptions.aware(max_attempts=2),
              cm_depths=(4,) * 16),
]


class TestEquivalence:
    def test_stream_matches_batch_field_by_field(self, point_fields):
        streamed = {spec: point
                    for spec, point in stream_specs(SPECS, workers=1)}
        batch_points, _ = run_specs(SPECS, workers=1)
        assert len(streamed) == len(SPECS)
        for spec, batch_point in zip([s.resolve() for s in SPECS],
                                     batch_points):
            assert point_fields(streamed[spec]) \
                == point_fields(batch_point)

    def test_parallel_stream_matches_serial_stream(self, point_fields):
        serial = {spec: point_fields(point)
                  for spec, point in stream_specs(SPECS, workers=1)}
        parallel = {spec: point_fields(point)
                    for spec, point in stream_specs(SPECS, workers=3)}
        assert serial == parallel

    def test_duplicates_yield_once(self):
        spec = PointSpec("dc_filter", "HOM64", "basic")
        pairs = list(stream_specs([spec, spec, spec], workers=1))
        assert len(pairs) == 1


class TestProgress:
    def test_updates_count_up_to_total(self):
        updates = []
        pairs = list(stream_specs(SPECS, workers=1,
                                  progress=updates.append))
        assert [u.done for u in updates] == [1, 2, 3]
        assert all(u.total == len(SPECS) for u in updates)
        assert [(u.spec, u.point) for u in updates] == pairs
        assert all(isinstance(u, StreamUpdate) for u in updates)
        assert all(u.elapsed_seconds >= 0 for u in updates)

    def test_describe_is_renderable_for_every_outcome(self):
        updates = []
        list(stream_specs(SPECS, workers=1, progress=updates.append))
        for update in updates:
            line = update.describe()
            assert f"/{len(SPECS)}]" in line
            assert update.spec.kernel_name in line

    def test_cache_hits_stream_first_and_are_flagged(self, tmp_path):
        warm_spec = SPECS[0]
        cache = ResultCache(tmp_path)
        list(stream_specs([warm_spec], workers=1, cache=cache))
        updates = []
        pairs = list(stream_specs(SPECS, workers=1,
                                  cache=ResultCache(tmp_path),
                                  progress=updates.append))
        assert pairs[0][0] == warm_spec.resolve()
        assert updates[0].from_cache
        assert not any(u.from_cache for u in updates[1:])


class TestCacheProtocol:
    def test_stream_fills_the_cache_with_deterministic_outcomes(
            self, tmp_path):
        cache = ResultCache(tmp_path)
        list(stream_specs(SPECS, workers=1, cache=cache))
        # All three outcomes (two mapped, one unmappable) persist.
        assert len(cache.entries()) == len(SPECS)

    def test_captured_crash_streams_but_is_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [PointSpec("no_such_kernel", "HOM64", "basic"),
                 PointSpec("dc_filter", "HOM64", "basic")]
        pairs = list(stream_specs(specs, workers=1, cache=cache))
        by_kernel = {spec.kernel_name: point for spec, point in pairs}
        assert "no_such_kernel" in by_kernel["no_such_kernel"].error
        assert by_kernel["dc_filter"].mapped
        assert len(cache.entries()) == 1

    def test_worker_crash_capture_under_parallelism(self):
        specs = [PointSpec("no_such_kernel", "HOM64", "basic"),
                 PointSpec("dc_filter", "HOM64", "basic")]
        pairs = list(stream_specs(specs, workers=2))
        by_kernel = {spec.kernel_name: point for spec, point in pairs}
        assert not by_kernel["no_such_kernel"].mapped
        assert by_kernel["dc_filter"].mapped


class TestMonkeypatchability:
    def test_serial_stream_routes_through_pool_compute(self,
                                                       monkeypatch):
        calls = []
        real = pool._compute_captured

        def counting(spec):
            calls.append(spec)
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", counting)
        list(stream_specs([PointSpec("dc_filter", "HOM64", "basic")],
                          workers=1))
        assert len(calls) == 1
