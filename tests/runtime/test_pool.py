"""Parallel engine tests: determinism, exception capture, caching.

The equivalence test is the load-bearing one: a figure's points
computed with ``workers=1`` (plain serial loop, no pickling) and
``workers=4`` (process pool) must agree field-by-field, proving that
a point's result is a pure function of its spec no matter which
process computes it.
"""


from repro.mapping.flow import FlowOptions
from repro.runtime import pool
from repro.runtime.cache import ResultCache
from repro.runtime.pool import run_specs, run_sweep
from repro.runtime.sweep import PointSpec

#: A small figure's worth of points: the dc_filter column of the
#: latency figures (baseline + three variants), plus one point that
#: cannot map (4-word context memories) to prove failure capture.
FIGURE_SPECS = [
    PointSpec("dc_filter", "HOM64", "basic"),
    PointSpec("dc_filter", "HET1", "acmap"),
    PointSpec("dc_filter", "HET1", "full"),
    PointSpec("dc_filter", "HOM32", "full"),
    PointSpec("dc_filter", "HOM4", "full",
              options=FlowOptions.aware(max_attempts=2),
              cm_depths=(4,) * 16),
]


class TestEquivalence:
    def test_parallel_matches_serial_field_by_field(self, point_fields):
        serial, _ = run_specs(FIGURE_SPECS, workers=1)
        parallel, _ = run_specs(FIGURE_SPECS, workers=4)
        assert len(serial) == len(parallel) == len(FIGURE_SPECS)
        for left, right in zip(serial, parallel):
            assert point_fields(left) == point_fields(right)
        # The unmappable point failed identically on both paths.
        assert serial[-1].error == "unmappable"
        assert parallel[-1].error == "unmappable"


class TestExceptionCapture:
    def test_broken_point_does_not_kill_the_sweep(self):
        specs = [
            PointSpec("dc_filter", "HOM64", "basic"),
            PointSpec("no_such_kernel", "HOM64", "basic"),
            PointSpec("dc_filter", "HET1", "full"),
        ]
        points, _ = run_specs(specs, workers=2)
        assert points[0].mapped
        assert points[2].mapped
        assert not points[1].mapped
        assert "no_such_kernel" in points[1].error

    def test_captured_crash_is_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [PointSpec("no_such_kernel", "HOM64", "basic"),
                 PointSpec("dc_filter", "HOM64", "basic")]
        run_specs(specs, workers=1, cache=cache)
        # Only the deterministic outcome was persisted.
        assert len(cache.entries()) == 1
        warm = ResultCache(tmp_path)
        points, hits = run_specs(specs, workers=1, cache=warm)
        assert hits == 1
        assert points[1].mapped


class TestOrderingAndDedup:
    def test_results_follow_spec_order(self):
        specs = [
            PointSpec("dc_filter", "HET1", "full"),
            PointSpec("dc_filter", "HOM64", "basic"),
            PointSpec("dc_filter", "HET1", "basic"),
        ]
        points, _ = run_specs(specs, workers=3)
        got = [(p.config_name, p.variant) for p in points]
        assert got == [("HET1", "full"), ("HOM64", "basic"),
                       ("HET1", "basic")]

    def test_duplicates_computed_once(self, monkeypatch):
        calls = []
        real = pool._compute_captured

        def counting(spec):
            calls.append(spec)
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", counting)
        spec = PointSpec("dc_filter", "HOM64", "basic")
        points, _ = run_specs([spec, spec, spec], workers=1)
        assert len(calls) == 1
        assert points[0] is points[1] is points[2]


class TestCacheIntegration:
    def test_warm_run_computes_nothing(self, tmp_path, monkeypatch,
                                       point_fields):
        specs = FIGURE_SPECS[:3]
        cold = ResultCache(tmp_path)
        cold_points, hits = run_specs(specs, workers=1, cache=cold)
        assert hits == 0
        assert cold.stores == len(specs)

        def explode(_spec):  # pragma: no cover — must never run
            raise AssertionError("warm run re-computed a point")

        monkeypatch.setattr(pool, "_compute_captured", explode)
        warm = ResultCache(tmp_path)
        warm_points, hits = run_specs(specs, workers=1, cache=warm)
        assert hits == len(specs)
        for left, right in zip(cold_points, warm_points):
            assert point_fields(left) == point_fields(right)

    def test_run_sweep_summary_counts(self, tmp_path):
        specs = FIGURE_SPECS[:2]
        cache = ResultCache(tmp_path)
        cold = run_sweep(specs, workers=1, cache=cache)
        assert cold.cache_hits == 0
        assert cold.computed == 2
        warm = run_sweep(specs, workers=1, cache=ResultCache(tmp_path))
        assert warm.cache_hits == 2
        assert warm.computed == 0
        assert "0 computed" in warm.summary()
