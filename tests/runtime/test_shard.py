"""Sharding invariants and the shard-merge path.

The property tests are the load-bearing ones: for *any* spec list and
*any* shard count, the shards must partition the list (pairwise
disjoint, union exactly the input) and the assignment must be a
function of the spec multiset alone — re-ordering the input cannot
move a spec to a different shard.  That is what lets N machines build
the same sweep independently and each take a slice without
coordinating.
"""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.mapping.flow import VARIANTS, FlowOptions
from repro.runtime.cache import ResultCache
from repro.runtime.pool import run_sweep
from repro.runtime.shard import (
    SWEEP_JSON_SCHEMA,
    estimated_cost,
    merge_sweep_files,
    merge_sweep_payloads,
    parse_shard,
    point_from_json,
    point_to_json,
    shard_indices,
    shard_specs,
    spec_from_json,
    spec_to_json,
    sweep_fingerprint,
    sweep_json_payload,
)
from repro.runtime.sweep import (
    ExperimentPoint,
    PointSpec,
    SweepResult,
    sweep_specs,
)

SPEC_LISTS = st.lists(
    st.builds(
        PointSpec,
        kernel_name=st.sampled_from(("fir", "fft", "dc_filter",
                                     "matmul")),
        config_name=st.sampled_from(("HOM64", "HOM32", "HET1", "HET2")),
        variant=st.sampled_from(tuple(VARIANTS)),
        seed=st.integers(0, 2),
    ),
    max_size=40,
)

TOTALS = st.integers(min_value=1, max_value=6)


class TestPartition:
    @settings(max_examples=60, deadline=None)
    @given(specs=SPEC_LISTS, total=TOTALS)
    def test_disjoint_and_union_complete(self, specs, total):
        parts = [shard_indices(specs, index, total)
                 for index in range(total)]
        flat = [i for part in parts for i in part]
        # Pairwise disjoint and complete in one stroke: every input
        # position appears exactly once across all shards.
        assert sorted(flat) == list(range(len(specs)))
        # And on the spec level the union is the input, as a multiset.
        union = collections.Counter(
            spec for index in range(total)
            for spec in shard_specs(specs, index, total))
        assert union == collections.Counter(specs)

    @settings(max_examples=60, deadline=None)
    @given(specs=SPEC_LISTS, total=TOTALS)
    def test_order_stable_within_a_shard(self, specs, total):
        for index in range(total):
            positions = shard_indices(specs, index, total)
            assert positions == sorted(positions)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), specs=SPEC_LISTS, total=TOTALS)
    def test_assignment_invariant_under_input_order(self, data, specs,
                                                    total):
        permuted = data.draw(st.permutations(specs))
        for index in range(total):
            assert (collections.Counter(shard_specs(specs, index, total))
                    == collections.Counter(
                        shard_specs(permuted, index, total)))

    def test_equal_cost_specs_balance_by_count(self):
        # 20 same-cost points over 6 shards: sizes differ by at most 1.
        specs = [PointSpec("fir", "HET1", "full", seed=seed)
                 for seed in range(20)]
        sizes = [len(shard_specs(specs, index, 6)) for index in range(6)]
        assert sum(sizes) == 20
        assert max(sizes) - min(sizes) <= 1

    def test_heavy_kernels_spread_across_shards(self):
        # The full paper sweep split 4 ways: no shard owns more than
        # half the total estimated cost (a plain round-robin over an
        # unsorted list can; the greedy balancer must not).
        specs = sweep_specs()
        costs = [sum(estimated_cost(spec)
                     for spec in shard_specs(specs, index, 4))
                 for index in range(4)]
        assert max(costs) <= sum(costs) / 2

    def test_single_shard_is_identity(self):
        specs = sweep_specs(kernels=("fir", "fft"))
        assert shard_specs(specs, 0, 1) == specs

    def test_more_shards_than_specs_leaves_some_empty(self):
        specs = [PointSpec("fir", "HET1", "basic")]
        sizes = [len(shard_specs(specs, index, 4)) for index in range(4)]
        assert sorted(sizes) == [0, 0, 0, 1]


class TestCacheAwareBalance:
    """``shard_specs(..., cache=)``: warm entries cost ~nothing, so a
    partially warm sweep splits its *residual* work evenly."""

    def _cache_with(self, tmp_path, specs):
        cache = ResultCache(tmp_path)
        for spec in specs:
            spec = spec.resolve()
            cache.store_point(spec, fake_point(spec, cycles=100))
        return cache

    def test_partition_contract_holds_with_a_cache(self, tmp_path):
        specs = sweep_specs(kernels=("fir", "fft", "matmul"))
        cache = self._cache_with(tmp_path, specs[::3])
        flat = sorted(i for index in range(4)
                      for i in shard_indices(specs, index, 4,
                                             cache=cache))
        assert flat == list(range(len(specs)))

    def test_residual_work_splits_evenly(self, tmp_path):
        # Warm every heavy kernel's specs.  Cost-unaware balancing
        # would mix warm and cold freely; cache-aware balancing must
        # spread the remaining *cold* specs evenly across the shards.
        specs = sweep_specs(kernels=("fir", "fft", "matmul",
                                     "nonsep_filter"))
        warm = [spec for spec in specs
                if spec.kernel_name in ("fft", "matmul",
                                        "nonsep_filter")]
        cache = self._cache_with(tmp_path, warm)
        warm_set = {spec.resolve() for spec in warm}
        cold_costs = []
        for index in range(4):
            mine = shard_specs(specs, index, 4, cache=cache)
            cold_costs.append(sum(estimated_cost(spec)
                                  for spec in mine
                                  if spec.resolve() not in warm_set))
        # Every shard owns a fair slice of the cold cost (the greedy
        # balancer bounds the spread by one spec's cost; "fir"/"full"
        # is the heaviest cold spec).
        heaviest = max(estimated_cost(spec) for spec in specs
                       if spec.resolve() not in warm_set)
        assert max(cold_costs) - min(cold_costs) <= heaviest

    def test_deterministic_for_a_fixed_cache_state(self, tmp_path):
        specs = sweep_specs(kernels=("fir", "dc_filter"))
        cache = self._cache_with(tmp_path, specs[:5])
        first = [shard_indices(specs, index, 3, cache=cache)
                 for index in range(3)]
        again = [shard_indices(specs, index, 3, cache=cache)
                 for index in range(3)]
        assert first == again

    def test_no_cache_matches_the_plain_assignment(self, tmp_path):
        specs = sweep_specs(kernels=("fir", "fft"))
        empty = ResultCache(tmp_path)  # exists, holds nothing
        for index in range(4):
            assert shard_indices(specs, index, 4, cache=empty) \
                == shard_indices(specs, index, 4)


class TestParseShard:
    def test_roundtrip(self):
        assert parse_shard("2/4") == (2, 4)
        assert parse_shard("0/1") == (0, 1)

    @pytest.mark.parametrize("text", ["", "3", "a/b", "1/2/3", "-1/4",
                                      "4/4", "0/0"])
    def test_rejects_malformed(self, text):
        with pytest.raises(ReproError):
            parse_shard(text)


def fake_point(spec, cycles):
    return ExperimentPoint(spec.kernel_name, spec.config_name,
                           spec.variant, cycles=cycles, mapped=True,
                           compile_seconds=0.5)


def fake_sweep(specs):
    resolved = [spec.resolve() for spec in specs]
    points = [fake_point(spec, cycles=100 + index)
              for index, spec in enumerate(resolved)]
    return SweepResult(specs=resolved, points=points, cache_hits=0,
                       computed=len(specs), elapsed_seconds=1.0)


def shard_payloads(specs, total):
    """Shard a fake sweep into JSON payloads, one per shard."""
    full = fake_sweep(specs)
    payloads = []
    for index in range(total):
        positions = shard_indices(specs, index, total)
        part = SweepResult(
            specs=[full.specs[i] for i in positions],
            points=[full.points[i] for i in positions],
            cache_hits=0, computed=len(positions),
            elapsed_seconds=1.0)
        payloads.append(sweep_json_payload(
            part, shard=(index, total), positions=positions,
            spec_total=len(specs),
            fingerprint=sweep_fingerprint(specs)))
    return full, payloads


class TestJsonRoundTrip:
    def test_spec_roundtrip_including_custom_fields(self):
        spec = PointSpec("fir", "HOM16", "full",
                         options=FlowOptions.aware(max_attempts=3),
                         seed=11, cm_depths=(16,) * 16)
        assert spec_from_json(spec_to_json(spec)) == spec.resolve()

    def test_point_roundtrip_preserves_summary_fields(self):
        point = ExperimentPoint("fir", "HET1", "full", cycles=321,
                                compile_seconds=2.5, mapped=True)
        back = point_from_json(point_to_json(point))
        assert point_to_json(back) == point_to_json(point)
        assert back.mapped
        assert back.cycles == 321

    def test_unmapped_point_roundtrip(self):
        point = ExperimentPoint("fir", "HOM4", "full",
                                error="unmappable")
        back = point_from_json(point_to_json(point))
        assert not back.mapped
        assert back.error == "unmappable"


class TestMerge:
    SPECS = sweep_specs(kernels=("fir", "fft", "dc_filter"),
                        configs=("HOM64", "HET1"),
                        variants=("basic", "full"))

    def test_merge_reproduces_the_unsharded_sweep(self):
        full, payloads = shard_payloads(self.SPECS, 4)
        merged = merge_sweep_payloads(payloads)
        assert sweep_json_payload(merged)["points"] \
            == sweep_json_payload(full)["points"]
        assert merged.computed == full.computed

    def test_merge_order_is_shard_file_order_independent(self):
        _, payloads = shard_payloads(self.SPECS, 3)
        forward = merge_sweep_payloads(payloads)
        backward = merge_sweep_payloads(payloads[::-1])
        assert sweep_json_payload(forward) \
            == sweep_json_payload(backward)

    def test_missing_shard_is_a_hard_error(self):
        _, payloads = shard_payloads(self.SPECS, 3)
        with pytest.raises(ReproError, match="cover"):
            merge_sweep_payloads(payloads[:-1])

    def test_duplicate_shard_is_a_hard_error(self):
        _, payloads = shard_payloads(self.SPECS, 3)
        with pytest.raises(ReproError, match="more than once"):
            merge_sweep_payloads(payloads + [payloads[0]])

    def test_mismatched_sweep_sizes_rejected(self):
        _, payloads = shard_payloads(self.SPECS, 2)
        _, other = shard_payloads(self.SPECS[:-1], 2)
        with pytest.raises(ReproError, match="sweep size"):
            merge_sweep_payloads([payloads[0], other[1]])

    def test_unknown_schema_rejected(self):
        _, payloads = shard_payloads(self.SPECS, 2)
        payloads[0]["schema"] = 999
        with pytest.raises(ReproError, match="schema"):
            merge_sweep_payloads(payloads)

    def test_shards_of_different_sweeps_rejected(self):
        # Same axes, same length, disjoint positions — but a
        # different seed.  Only the fingerprint can tell them apart.
        other_specs = [
            PointSpec(s.kernel_name, s.config_name, s.variant, seed=8)
            for s in self.SPECS]
        _, ours = shard_payloads(self.SPECS, 2)
        _, theirs = shard_payloads(other_specs, 2)
        with pytest.raises(ReproError, match="different sweeps"):
            merge_sweep_payloads([ours[0], theirs[1]])

    def test_tampered_specs_fail_the_fingerprint_check(self):
        _, payloads = shard_payloads(self.SPECS, 2)
        payloads[0]["points"][0]["spec"]["seed"] = 99
        with pytest.raises(ReproError, match="do not match"):
            merge_sweep_payloads(payloads)

    def test_stripped_fingerprint_is_a_hard_error(self):
        # Every payload must declare its sweep; without fingerprints
        # a mixed-sweep merge would be undetectable.
        _, payloads = shard_payloads(self.SPECS, 2)
        for payload in payloads:
            del payload["fingerprint"]
        with pytest.raises(ReproError, match="fingerprint"):
            merge_sweep_payloads(payloads)

    def test_merge_files(self, tmp_path):
        import json

        full, payloads = shard_payloads(self.SPECS, 2)
        paths = []
        for index, payload in enumerate(payloads):
            path = tmp_path / f"shard-{index}.json"
            path.write_text(json.dumps(payload))
            paths.append(path)
        merged = merge_sweep_files(paths)
        assert sweep_json_payload(merged)["points"] \
            == sweep_json_payload(full)["points"]

    def test_unreadable_file_is_a_repro_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="cannot read"):
            merge_sweep_files([bad])

    @pytest.mark.parametrize("payload", [
        [1, 2, 3],                      # valid JSON, not an object
        {"schema": SWEEP_JSON_SCHEMA},  # truncated: no spec_total
        {"schema": SWEEP_JSON_SCHEMA,         # wrong field type
         "spec_total": "140"},
        {"schema": SWEEP_JSON_SCHEMA,         # shard not an object
         "spec_total": 2,
         "shard": "0/2", "fingerprint": "x",
         "summary": {"cache_hits": 0, "computed": 2,
                     "elapsed_seconds": 0.0},
         "points": []},
        {"schema": SWEEP_JSON_SCHEMA,         # non-numeric counter
         "spec_total": 2,
         "fingerprint": "x",
         "summary": {"cache_hits": "none", "computed": 2,
                     "elapsed_seconds": 0.0},
         "points": []},
        {"schema": SWEEP_JSON_SCHEMA,   # record without a position
         "spec_total": 2,
         "fingerprint": "x",
         "summary": {"cache_hits": 0, "computed": 2,
                     "elapsed_seconds": 0.0},
         "points": [{"spec": {}, "point": {}}]},
    ])
    def test_structurally_malformed_payloads_are_repro_errors(
            self, payload):
        with pytest.raises(ReproError, match="malformed|payload"):
            merge_sweep_payloads([payload])


class TestMergeEndToEnd:
    """The acceptance path with the real pipeline: a cold unsharded
    sweep, warm shard runs over the same cache, merge — every
    deterministic point field identical, compile seconds included
    (cached points carry the original measurement)."""

    def test_shards_plus_merge_equal_full_sweep(self, tmp_path):
        specs = sweep_specs(kernels=("dc_filter",),
                            configs=("HOM64", "HET1"),
                            variants=("basic", "full"))
        full = run_sweep(specs, workers=2, cache=ResultCache(tmp_path))
        payloads = []
        for index in range(3):
            positions = shard_indices(specs, index, 3)
            part = run_sweep([specs[i] for i in positions], workers=1,
                             cache=ResultCache(tmp_path))
            payloads.append(sweep_json_payload(
                part, shard=(index, 3), positions=positions,
                spec_total=len(specs),
                fingerprint=sweep_fingerprint(specs)))
        merged = merge_sweep_payloads(payloads)
        assert sweep_json_payload(merged)["points"] \
            == sweep_json_payload(full)["points"]
        # The shards ran warm: everything came from the cache.
        assert merged.cache_hits == len(specs)
        assert merged.computed == 0
