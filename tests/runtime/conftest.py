"""Shared helpers for the runtime test suite."""

import pytest


@pytest.fixture
def point_fields():
    """Every deterministic field of a point (compile time excluded).

    The one definition both equivalence suites compare against —
    serial vs parallel (``test_pool``) and stream vs batch
    (``test_stream``).  When :class:`ExperimentPoint` grows a
    deterministic field, adding it here extends every equivalence
    check at once.
    """

    def _fields(point):
        fields = {
            "kernel": point.kernel_name,
            "config": point.config_name,
            "variant": point.variant,
            "mapped": point.mapped,
            "cycles": point.cycles,
            "error": point.error and point.error.splitlines()[0],
            "energy_uj": point.energy_uj,
            "energy_parts": (dict(point.energy.parts)
                             if point.energy else None),
        }
        if point.mapping is not None:
            fields["movs"] = point.mapping.total_movs
            fields["pnops"] = point.mapping.total_pnops
            fields["tile_words"] = point.mapping.tile_words()
            fields["activity_cycles"] = point.activity.cycles
        return fields

    return _fields
