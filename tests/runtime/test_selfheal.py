"""Self-healing runtime: crash containment, deadlines, salvage.

These tests arm real fault plans (``REPRO_FAULT``) against real
worker processes — the injected ``os._exit`` breaks a real
``ProcessPoolExecutor`` exactly like a segfault would, so what is
under test is the production recovery path, not a simulation of it.
Plans use ``p=1`` (or ``p=1,attempts=1``) so every run is
deterministic and fast.
"""

import pytest

from repro.chaos.faults import ENV_FAULT
from repro.errors import ReproError
from repro.obs import metrics
from repro.runtime import stream as stream_module
from repro.runtime.cache import ResultCache
from repro.runtime.stream import (
    ENV_POINT_ATTEMPTS,
    ENV_POINT_TIMEOUT,
    resolve_point_attempts,
    resolve_point_timeout,
    stream_specs,
)
from repro.runtime.sweep import PointSpec

SPECS = [
    PointSpec("dc_filter", "HOM64", "basic"),
    PointSpec("dc_filter", "HET1", "basic"),
]


class TestEnvKnobs:
    def test_explicit_timeout_wins_and_nonpositive_disables(self):
        assert resolve_point_timeout(12.5) == 12.5
        assert resolve_point_timeout(0) is None
        assert resolve_point_timeout(-3) is None

    def test_timeout_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_POINT_TIMEOUT, "7.5")
        assert resolve_point_timeout() == 7.5
        monkeypatch.setenv(ENV_POINT_TIMEOUT, "soon")
        with pytest.raises(ReproError, match=ENV_POINT_TIMEOUT):
            resolve_point_timeout()

    def test_attempts_env_fallback_and_floor(self, monkeypatch):
        monkeypatch.delenv(ENV_POINT_ATTEMPTS, raising=False)
        assert resolve_point_attempts() \
            == stream_module.DEFAULT_MAX_POINT_ATTEMPTS
        monkeypatch.setenv(ENV_POINT_ATTEMPTS, "0")
        assert resolve_point_attempts() == 1
        monkeypatch.setenv(ENV_POINT_ATTEMPTS, "many")
        with pytest.raises(ReproError, match=ENV_POINT_ATTEMPTS):
            resolve_point_attempts()


class TestCrashContainment:
    def test_crashed_points_heal_on_retry(self, monkeypatch,
                                          point_fields):
        clean = {spec: point_fields(point)
                 for spec, point in stream_specs(SPECS, workers=1)}
        restarts = metrics.POOL_RESTARTS.total()
        retries = metrics.POINT_RETRIES.total()
        # Every point's first attempt kills its worker; the retry is
        # not injected, so the sweep must land on the clean answer.
        monkeypatch.setenv(ENV_FAULT, "worker_crash:p=1,attempts=1")
        healed = {spec: point_fields(point)
                  for spec, point in stream_specs(SPECS, workers=2)}
        assert healed == clean
        assert metrics.POOL_RESTARTS.total() > restarts
        assert metrics.POINT_RETRIES.total() > retries

    def test_repeat_killer_is_quarantined_not_cached(self, monkeypatch,
                                                     tmp_path):
        quarantines = metrics.POINT_QUARANTINES.total()
        monkeypatch.setenv(ENV_FAULT, "worker_crash:p=1")
        cache = ResultCache(tmp_path)
        spec = SPECS[0]
        pairs = list(stream_specs([spec], workers=2, cache=cache,
                                  max_point_attempts=2))
        assert len(pairs) == 1
        point = pairs[0][1]
        assert point.error.startswith("worker-crash:")
        assert "2 attempt(s)" in point.error
        assert metrics.POINT_QUARANTINES.total() > quarantines
        # A containment verdict is circumstance, not truth — it must
        # never poison the cache for the next (healthy) run.
        assert cache.get_point(spec) is None


class TestDeadlines:
    def test_wedged_point_lands_as_timeout(self, monkeypatch,
                                           tmp_path):
        # A worker that stalls 60s against a sub-second deadline;
        # grace is shrunk so the test pays seconds, not the 5s
        # production slack, per attempt.
        monkeypatch.setenv(ENV_FAULT, "point_hang:p=1,seconds=60")
        monkeypatch.setattr(stream_module, "TIMEOUT_GRACE_SECONDS",
                            0.5)
        cache = ResultCache(tmp_path)
        spec = SPECS[0]
        pairs = list(stream_specs([spec], workers=1, cache=cache,
                                  point_timeout=0.5,
                                  max_point_attempts=1))
        assert len(pairs) == 1
        point = pairs[0][1]
        assert point.error.startswith("timeout:")
        assert "0.5s deadline" in point.error
        assert cache.get_point(spec) is None


class TestPoolBroken:
    def test_unbuildable_pool_stamps_every_point(self, monkeypatch,
                                                 tmp_path):
        def refuse(*args, **kwargs):
            raise RuntimeError("no processes today")

        monkeypatch.setattr(stream_module, "ProcessPoolExecutor",
                            refuse)
        cache = ResultCache(tmp_path)
        pairs = list(stream_specs(SPECS, workers=2, cache=cache))
        assert len(pairs) == len(SPECS)
        for spec, point in pairs:
            assert point.error.startswith("pool-broken:")
            assert "no processes today" in point.error
            assert cache.get_point(spec) is None


class TestSalvage:
    def test_early_close_persists_finished_inflight_points(
            self, tmp_path):
        specs = [
            PointSpec("dc_filter", "HOM64", "basic"),
            PointSpec("dc_filter", "HET1", "basic"),
            PointSpec("dc_filter", "HOM32", "basic"),
            PointSpec("dc_filter", "HET2", "basic"),
        ]
        cache = ResultCache(tmp_path)
        gen = stream_specs(specs, workers=2, cache=cache)
        first_spec, _ = next(gen)
        gen.close()
        # The in-flight window is two wide, so only the first two
        # specs ever reached a worker: the delivered one is stored,
        # the co-flying one is salvaged by the finally block if it
        # finished, and the queued pair must not have been computed.
        window = [spec.resolve() for spec in specs[:2]]
        assert first_spec in window
        assert cache.get_point(first_spec) is not None
        for spec in specs[2:]:
            assert cache.get_point(spec) is None
