"""Property test: JSON shard round-trips reproduce the full sweep.

For *arbitrary* synthetic sweep results — any mix of mapped,
unmapped and custom-option points, any shard count — serialising
each shard to real JSON text, parsing it back and merging must
reproduce the unsharded :class:`SweepResult`'s deterministic fields
exactly.  This is the contract both ``repro merge`` and the serve
subsystem's distributed dispatch stand on: a payload that survives
this property can cross any file, socket or machine boundary.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.flow import VARIANTS
from repro.power.energy import EnergyBreakdown
from repro.runtime.shard import (
    merge_sweep_payloads,
    shard_indices,
    sweep_fingerprint,
    sweep_json_payload,
    sweep_result_from_payload,
)
from repro.runtime.sweep import (
    ExperimentPoint,
    PointSpec,
    SweepResult,
)

SPECS = st.builds(
    PointSpec,
    kernel_name=st.sampled_from(("fir", "fft", "dc_filter",
                                 "matmul")),
    config_name=st.sampled_from(("HOM64", "HOM32", "HET1", "HET2")),
    variant=st.sampled_from(tuple(VARIANTS)),
    seed=st.integers(0, 3),
)

ENERGIES = st.dictionaries(
    st.sampled_from(("alu", "cm", "rf", "interconnect", "leakage")),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=5)


@st.composite
def sweep_results(draw):
    """An arbitrary synthetic sweep: specs plus matching points."""
    specs = draw(st.lists(SPECS, min_size=1, max_size=24))
    points = []
    for spec in specs:
        spec = spec.resolve()
        if draw(st.booleans()):
            points.append(ExperimentPoint(
                spec.kernel_name, spec.config_name, spec.variant,
                compile_seconds=draw(st.floats(
                    0.0, 1e3, allow_nan=False, allow_infinity=False)),
                cycles=draw(st.integers(1, 10**6)),
                energy=EnergyBreakdown(draw(ENERGIES)),
                mapped=True))
        else:
            points.append(ExperimentPoint(
                spec.kernel_name, spec.config_name, spec.variant,
                error=draw(st.sampled_from(("unmappable",
                                            "context overflow")))))
    return SweepResult(specs=[spec.resolve() for spec in specs],
                       points=points, cache_hits=0,
                       computed=len(specs), elapsed_seconds=1.0)


def through_json(payload):
    """Real serialisation — text, not dict identity."""
    return json.loads(json.dumps(payload))


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(full=sweep_results(), total=st.integers(1, 5))
    def test_serialise_parse_merge_reproduces_the_sweep(self, full,
                                                        total):
        fingerprint = sweep_fingerprint(full.specs)
        payloads = []
        for index in range(total):
            positions = shard_indices(full.specs, index, total)
            part = SweepResult(
                specs=[full.specs[p] for p in positions],
                points=[full.points[p] for p in positions],
                cache_hits=0, computed=len(positions),
                elapsed_seconds=full.elapsed_seconds)
            payloads.append(through_json(sweep_json_payload(
                part, shard=(index, total), positions=positions,
                spec_total=len(full.specs),
                fingerprint=fingerprint)))
        merged = merge_sweep_payloads(payloads)
        assert sweep_json_payload(merged)["points"] \
            == through_json(sweep_json_payload(full))["points"]
        assert merged.computed == len(full.specs)
        assert merged.cache_hits == 0
        assert [spec.resolve() for spec in merged.specs] \
            == full.specs
        assert sweep_fingerprint(merged.specs) == fingerprint

    @settings(max_examples=60, deadline=None)
    @given(full=sweep_results())
    def test_single_payload_result_round_trip(self, full):
        rebuilt = sweep_result_from_payload(
            through_json(sweep_json_payload(full)))
        assert sweep_json_payload(rebuilt)["points"] \
            == through_json(sweep_json_payload(full))["points"]
        assert len(rebuilt.mapped) == len(full.mapped)
        assert len(rebuilt.unmapped) == len(full.unmapped)
        assert not rebuilt.crashed
