"""The jittered retry backoff of the distributed dispatcher."""

from repro.serve.client import (
    MAX_BACKOFF_SECONDS,
    backoff_delay,
)


class TestBackoffDelay:
    def test_zero_backoff_and_no_hint_never_sleeps(self):
        assert backoff_delay(1, 0) == 0.0
        assert backoff_delay(5, 0, retry_hint=0) == 0.0

    def test_jitter_spans_half_to_one_and_a_half(self):
        low = backoff_delay(2, 1.0, rng=lambda: 0.0)
        high = backoff_delay(2, 1.0, rng=lambda: 0.999)
        assert low == 2 * 1.0 * 0.5
        assert abs(high - 2 * 1.0 * 1.499) < 1e-6
        assert low < high

    def test_retry_after_hint_is_a_floor_not_a_target(self):
        # Jitter would give 0.5s; the server asked for 4s of quiet.
        assert backoff_delay(1, 1.0, retry_hint=4.0,
                             rng=lambda: 0.0) == 4.0
        # But a larger jittered base may exceed the hint.
        assert backoff_delay(10, 1.0, retry_hint=4.0,
                             rng=lambda: 0.5) == 10.0

    def test_hint_alone_sleeps_even_with_zero_backoff(self):
        assert backoff_delay(3, 0, retry_hint=2.5,
                             rng=lambda: 0.7) == 2.5

    def test_cap_bounds_hint_and_base_alike(self):
        assert backoff_delay(1000, 1.0, rng=lambda: 0.999) \
            == MAX_BACKOFF_SECONDS
        assert backoff_delay(1, 0, retry_hint=9999.0) \
            == MAX_BACKOFF_SECONDS

    def test_negative_hint_is_ignored(self):
        assert backoff_delay(1, 1.0, retry_hint=-5,
                             rng=lambda: 0.5) == 1.0
