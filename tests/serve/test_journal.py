"""Durable serve jobs: the journal and ``--resume`` replay.

The crash scenarios never kill a real process here (the CI
chaos-smoke lane does that); instead they construct the exact
artifact a SIGKILL leaves behind — a journal whose last word for a
job is ``submitted`` or ``started`` — and assert a fresh manager
resurrects the job under its original ID.  Everything runs on the
fake compute stand-in and synchronises on terminal status, never
sleeps.
"""

import json
import urllib.request

import pytest

from repro.errors import ReproError
from repro.serve.jobs import JobManager
from repro.serve.journal import (
    ENV_JOURNAL,
    JOURNAL_FILENAME,
    JobJournal,
    journal_path,
    journalling_enabled,
)

BODY = {"kernels": ["dc_filter"], "configs": ["HOM64"],
        "variants": ["basic"]}


def finished(job):
    list(job.iter_records())
    assert job.is_terminal
    return job


@pytest.fixture
def journal(tmp_path):
    return JobJournal(tmp_path / JOURNAL_FILENAME)


@pytest.fixture
def manager(fake_compute, journal):
    manager = JobManager(workers=1, cache=None, journal=journal)
    yield manager
    manager.close()


class TestJournalFile:
    def test_path_lives_in_the_cache_dir(self, tmp_path):
        assert journal_path(tmp_path) \
            == tmp_path / JOURNAL_FILENAME

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.delenv(ENV_JOURNAL, raising=False)
        assert journalling_enabled()
        monkeypatch.setenv(ENV_JOURNAL, "0")
        assert not journalling_enabled()

    def test_record_then_replay_reduces_to_last_event(self, journal):
        journal.record("submitted", "job-1", job_kind="sweep",
                       body=BODY, priority=2)
        journal.record("started", "job-1")
        journal.record("submitted", "job-2", job_kind="sweep",
                       body=BODY, priority=0)
        jobs, skipped = journal.replay()
        assert skipped == 0
        assert jobs["job-1"]["event"] == "started"
        assert jobs["job-1"]["body"] == BODY
        assert jobs["job-1"]["priority"] == 2
        assert jobs["job-2"]["event"] == "submitted"

    def test_reader_skips_and_counts_foreign_lines(self, journal):
        journal.record("submitted", "job-1", job_kind="sweep",
                       body=BODY)
        with open(journal.path, "a") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"kind": "run-ledger"}) + "\n")
            handle.write(json.dumps({"kind": "job-event",
                                     "event": "vanished",
                                     "job_id": "job-1"}) + "\n")
        jobs, skipped = journal.replay()
        assert skipped == 3
        assert jobs["job-1"]["event"] == "submitted"

    def test_missing_file_replays_empty(self, tmp_path):
        jobs, skipped = JobJournal(tmp_path / "never.jsonl").replay()
        assert jobs == {} and skipped == 0

    def test_record_never_raises_on_filesystem_trouble(self, tmp_path):
        blocked = tmp_path / "file"
        blocked.write_text("")
        journal = JobJournal(blocked / "jobs.jsonl")  # parent is a file
        assert journal.record("submitted", "job-1", body=BODY) is None
        assert journal.write_errors == 1


class TestLifecycleRecording:
    def test_http_submission_journals_the_full_lifecycle(self,
                                                         manager,
                                                         journal):
        job = manager.submit_request(dict(BODY))
        finished(job)
        jobs, _ = journal.replay()
        assert jobs[job.id]["event"] == "finished"
        events = [json.loads(line)["event"]
                  for line in open(journal.path)]
        assert events == ["submitted", "started", "finished"]

    def test_programmatic_submission_is_not_journaled(self, manager,
                                                      journal):
        from repro.serve.jobs import resolve_request

        job = manager.submit(resolve_request(dict(BODY)))
        finished(job)
        jobs, _ = journal.replay()
        assert job.id not in jobs

    def test_failed_job_is_terminal_in_the_journal(self, journal,
                                                   monkeypatch):
        from repro.runtime import pool

        def explode(spec):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(pool, "_compute_captured", explode)
        manager = JobManager(workers=1, cache=None, journal=journal)
        try:
            job = manager.submit_request(dict(BODY))
            list(job.iter_records())
            assert job.is_terminal
        finally:
            manager.close()
        jobs, _ = journal.replay()
        assert jobs[job.id]["event"] == "failed"


class TestResume:
    def crashed_journal(self, journal):
        """What a SIGKILLed server leaves: no terminal events."""
        journal.record("submitted", "job-queued-1", job_kind="sweep",
                       body=dict(BODY), priority=0)
        journal.record("submitted", "job-running-1", job_kind="sweep",
                       body=dict(BODY), priority=0)
        journal.record("started", "job-running-1")
        journal.record("submitted", "job-done-1", job_kind="sweep",
                       body=dict(BODY), priority=0)
        journal.record("started", "job-done-1")
        journal.record("finished", "job-done-1")
        return journal

    def test_non_terminal_jobs_requeue_under_their_original_ids(
            self, fake_compute, journal):
        self.crashed_journal(journal)
        manager = JobManager(workers=1, cache=None, journal=journal)
        try:
            stats = manager.resume_from_journal()
            assert stats == {"journaled": 3, "requeued": 2,
                             "completed": 1, "unrestorable": 0,
                             "skipped_lines": 0}
            assert manager.replay_stats is stats
            for job_id in ("job-queued-1", "job-running-1"):
                job = finished(manager.get(job_id))
                assert job.id == job_id
                assert job.status == "done"
            with pytest.raises(ReproError):
                manager.get("job-done-1")
        finally:
            manager.close()

    def test_replayed_job_finishes_in_the_journal_too(self,
                                                      fake_compute,
                                                      journal):
        journal.record("submitted", "job-x", job_kind="sweep",
                       body=dict(BODY))
        manager = JobManager(workers=1, cache=None, journal=journal)
        try:
            manager.resume_from_journal()
            finished(manager.get("job-x"))
        finally:
            manager.close()
        jobs, _ = journal.replay()
        assert jobs["job-x"]["event"] == "finished"

    def test_invalid_recorded_body_is_unrestorable_not_fatal(
            self, fake_compute, journal):
        journal.record("submitted", "job-bad", job_kind="sweep",
                       body={"kernels": ["warp_drive"]})
        journal.record("submitted", "job-bodyless")
        manager = JobManager(workers=1, cache=None, journal=journal)
        try:
            stats = manager.resume_from_journal()
            assert stats["requeued"] == 0
            assert stats["unrestorable"] == 2
        finally:
            manager.close()

    def test_pinned_duplicate_id_is_rejected(self, manager):
        job = manager.submit_request(dict(BODY))
        with pytest.raises(ReproError, match="already exists"):
            manager.submit_request(dict(BODY), job_id=job.id)

    def test_no_journal_resume_is_a_noop(self, fake_compute):
        manager = JobManager(workers=1, cache=None)
        try:
            stats = manager.resume_from_journal()
            assert stats["journaled"] == 0
        finally:
            manager.close()


class TestHealthz:
    def test_healthz_reports_journal_state(self, fake_compute,
                                           start_server, tmp_path):
        journal = JobJournal(tmp_path / JOURNAL_FILENAME)
        journal.record("submitted", "job-lost", job_kind="sweep",
                       body=dict(BODY))
        url, server = start_server(journal=journal, resume=True)
        with urllib.request.urlopen(f"{url}/healthz") as response:
            payload = json.load(response)
        block = payload["journal"]
        assert block["path"] == str(journal.path)
        assert block["write_errors"] == 0
        assert block["replay"]["requeued"] == 1
        finished(server.manager.get("job-lost"))

    def test_journalless_server_reports_null(self, fake_compute,
                                             server_url):
        with urllib.request.urlopen(f"{server_url}/healthz") \
                as response:
            payload = json.load(response)
        assert payload["journal"] is None
