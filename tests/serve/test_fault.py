"""Failure-path integration: dead servers, silent streams, retries.

The acceptance scenario lives here: two live servers, one killed
mid-dispatch, and the rebalanced ``run_distributed`` still merging to
exactly the local batch result.  The kill rides the ``on_receipts``
seam — invoked between the submit and stream phases — so the victim
dies at a deterministic point instead of whenever a sleep happens to
land (the CI ``serve-fault-smoke`` job covers the literal SIGKILL).

The idle-timeout regressions also live here: the old client applied
one ``timeout`` to the whole long-lived NDJSON stream read, so a
healthy-but-slow job could kill its own stream.  Now streams use a
*per-read* idle timeout that the server's keepalives reset — a slow
job survives a client timeout shorter than its runtime, while a
genuinely wedged server still trips it.
"""

import threading
import time

import pytest

from repro.runtime.pool import run_sweep
from repro.runtime.shard import sweep_json_payload
from repro.runtime.sweep import sweep_specs
from repro.serve.client import (
    ServeClientError,
    SweepClient,
    run_distributed,
)

AXES = {"kernels": ["fir", "fft"], "configs": ["HOM64", "HET1"],
        "variants": ["basic", "full"]}

SPECS = sweep_specs(kernels=("fir", "fft"),
                    configs=("HOM64", "HET1"),
                    variants=("basic", "full"))


def points(result):
    return sweep_json_payload(result)["points"]


class TestFailover:
    def test_killed_server_rebalances_to_the_survivor(
            self, fake_compute, start_server):
        # Acceptance: K=2 degrades to K−1.  Server B accepts its
        # shard, then dies before the dispatcher can stream it; the
        # missing shard must be recomputed by server A and the merge
        # still equal the local batch run.
        url_a, _ = start_server()
        url_b, server_b = start_server()

        def kill_b(receipts):
            assert set(receipts) == {0, 1}  # B took its shard first
            server_b.shutdown()
            server_b.server_close()

        result, payloads = run_distributed(
            [url_a, url_b], AXES, backoff_seconds=0,
            on_receipts=kill_b)
        assert points(result) == points(run_sweep(SPECS))
        assert result.computed == len(SPECS)
        # Both shards exist and both were (re)computed by A.
        assert {payload["shard"]["index"]
                for payload in payloads} == {0, 1}

    def test_progress_recovers_across_the_failover(
            self, fake_compute, start_server):
        url_a, _ = start_server()
        url_b, server_b = start_server()
        seen = []

        def kill_b(receipts):
            server_b.shutdown()
            server_b.server_close()

        run_distributed(
            [url_a, url_b], AXES, backoff_seconds=0,
            on_receipts=kill_b,
            progress=lambda record, done, total, url:
            seen.append(url))
        # Every narrated record names the survivor; the dead server
        # never got to stream anything.
        assert set(seen) == {url_a}
        assert len(seen) == len(SPECS)

    def test_429_retries_without_marking_the_server_dead(
            self, fake_compute, start_server, monkeypatch):
        url, _ = start_server()
        original = SweepClient.submit
        calls = []

        def flaky(self, request):
            calls.append(list(request["shard"]))
            if len(calls) == 1:
                raise ServeClientError("busy", status=429,
                                       retry_after=0)
            return original(self, request)

        monkeypatch.setattr(SweepClient, "submit", flaky)
        result, _ = run_distributed([url], AXES, backoff_seconds=0)
        # Backpressure is not death: the bounced shard went back to
        # the same (only) server and succeeded on attempt two.
        assert calls == [[0, 1], [0, 1]]
        assert points(result) == points(run_sweep(SPECS))


class TestIdleTimeout:
    ONE = {"kernels": ["fir"], "configs": ["HOM64"],
           "variants": ["basic"]}

    def test_slow_job_outlives_a_short_idle_timeout(
            self, fake_compute, start_server, monkeypatch):
        # The regression: a job slower than the client's timeout.
        # Keepalives (sped up here) reset the per-read clock, so the
        # stream must survive a 0.3s idle timeout on a ~1s job.
        import repro.serve.server as server_module

        from repro.runtime import pool

        monkeypatch.setattr(server_module,
                            "STREAM_KEEPALIVE_SECONDS", 0.05)
        real = pool._compute_captured

        def slow(spec):
            time.sleep(1.0)  # deliberately slower than idle_timeout
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", slow)
        url, _ = start_server()
        client = SweepClient(url, timeout=10.0, idle_timeout=0.3)
        payload = client.run(self.ONE)
        assert payload["summary"]["points"] == 1

    def test_wedged_server_trips_the_idle_timeout(
            self, fake_compute, start_server, monkeypatch):
        # No keepalives and a compute that never returns: the only
        # thing standing between the client and an eternal hang is
        # the per-read idle timeout.
        import repro.serve.server as server_module

        from repro.runtime import pool

        monkeypatch.setattr(server_module,
                            "STREAM_KEEPALIVE_SECONDS", 3600.0)
        gate = threading.Event()

        def wedged(spec):
            gate.wait(timeout=30.0)
            return fake_compute(spec)

        monkeypatch.setattr(pool, "_compute_captured", wedged)
        url, _ = start_server()
        client = SweepClient(url, timeout=10.0, idle_timeout=0.3)
        receipt = client.submit(self.ONE)
        started = time.monotonic()
        with pytest.raises(ServeClientError, match="idle timeout"):
            for _ in client.stream(receipt["id"]):
                pass
        # It tripped on idleness, not the 10s request timeout.
        assert time.monotonic() - started < 5.0
        gate.set()

    def test_regular_requests_keep_the_full_timeout(
            self, fake_compute, server_url):
        # idle_timeout only governs streams; submit/status calls
        # still ride the regular timeout.
        client = SweepClient(server_url, timeout=10.0,
                             idle_timeout=0.2)
        payload = client.run(self.ONE)
        assert payload["summary"]["points"] == 1
