"""Serve-tier observability: /metrics, healthz, logs, stitched traces."""

import io
import json
import urllib.request

import pytest

import repro
from repro.obs import logs, metrics, trace
from repro.serve.client import run_distributed


@pytest.fixture(autouse=True)
def _clean_obs_state():
    trace.reset_tracing()
    metrics.REGISTRY.reset_values()
    logs.reset()
    yield
    trace.reset_tracing()
    metrics.REGISTRY.reset_values()
    logs.reset()


AXES = {"kernels": ["fir", "matmul"], "configs": ["HET1"],
        "variants": ["full"]}


def fetch_text(url):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


def parse_exposition(text):
    """name -> {label_string: value} from Prometheus 0.0.4 text."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_and_labels, value = line.rsplit(" ", 1)
        samples[name_and_labels] = float(value)
    return samples


class TestMetricsEndpoint:
    def test_scrape_parses_and_counts_work(self, fake_compute,
                                           server_url, client):
        client.run(dict(AXES))
        status, content_type, text = fetch_text(server_url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        samples = parse_exposition(text)
        assert samples['repro_points_total{source="computed"}'] == 2
        assert samples['repro_jobs_total{status="done"}'] == 1
        assert samples["repro_job_seconds_count"] == 1
        assert samples["repro_workers_total"] == 1
        # The scrape itself and the job's requests all counted.
        assert sum(value for key, value in samples.items()
                   if key.startswith("repro_http_requests_total")) > 0

    def test_metrics_is_open_like_healthz(self, start_server):
        url, _ = start_server(token="secret-token")
        status, _, _ = fetch_text(url + "/metrics")
        assert status == 200

    def test_cache_gauges_refresh_at_scrape_time(self, fake_compute,
                                                 start_server,
                                                 tmp_path):
        from repro.runtime.cache import ResultCache
        cache = ResultCache(tmp_path)
        url, _ = start_server(cache=cache)
        _, _, text = fetch_text(url + "/metrics")
        before = parse_exposition(text)
        assert before["repro_cache_entries"] == 0
        assert before["repro_cache_orphaned_bytes"] == 0
        # Populate the cache directly, then scrape again: the gauges
        # must reflect disk state without a /v1/cache/stats call.
        from repro.serve.client import SweepClient
        SweepClient(url).run(dict(AXES))
        _, _, text = fetch_text(url + "/metrics")
        after = parse_exposition(text)
        assert after["repro_cache_entries"] == 2
        assert after["repro_cache_bytes"] > 0


class TestDashboard:
    def test_dashboard_serves_html(self, fake_compute, server_url,
                                   client):
        client.run(dict(AXES))
        status, content_type, body = fetch_text(
            server_url + "/dashboard")
        assert status == 200
        assert content_type.startswith("text/html")
        assert body.startswith("<!DOCTYPE html>")
        assert "watchtower" in body
        assert "Metrics snapshot" in body

    def test_dashboard_open_behind_token(self, start_server):
        url, _ = start_server(token="secret-token")
        status, _, body = fetch_text(url + "/dashboard")
        assert status == 200
        assert "watchtower" in body

    def test_dashboard_shows_ledger_entries(self, fake_compute,
                                            start_server, tmp_path):
        from repro.perf.ledger import (
            append_entry, ledger_path, make_entry)
        from repro.runtime.cache import ResultCache
        cache = ResultCache(tmp_path)
        append_entry(make_entry("bench", {
            "total_seconds": 1.25,
            "cases": {"fir@HOM32/full": 1.25},
        }), ledger_path(tmp_path))
        url, _ = start_server(cache=cache)
        _, _, body = fetch_text(url + "/dashboard")
        assert "Bench trend" in body
        assert "fir@HOM32/full" in body


class TestHealthz:
    def test_operational_fields(self, fake_compute, client,
                                server_url):
        first = client.health()
        assert first["version"] == repro.__version__
        assert first["uptime_seconds"] >= 0
        assert first["requests_total"] >= 0
        again = client.health()
        assert again["requests_total"] > first["requests_total"]
        assert again["uptime_seconds"] >= first["uptime_seconds"]


class TestAccessLog:
    def test_requests_logged_unless_quiet(self, fake_compute,
                                          start_server):
        stream = io.StringIO()
        logs.configure(stream=stream)
        url, server = start_server()
        server.quiet = False
        fetch_text(url + "/healthz")
        line = stream.getvalue()
        assert "repro.serve: request" in line
        assert "path=/healthz" in line
        assert "status=200" in line

    def test_quiet_suppresses_access_log(self, fake_compute,
                                         start_server):
        stream = io.StringIO()
        logs.configure(stream=stream)
        url, _ = start_server()  # conftest servers are quiet=True
        fetch_text(url + "/healthz")
        assert stream.getvalue() == ""


class TestDistributedTraceStitching:
    def test_two_servers_one_tree(self, fake_compute, start_server,
                                  tmp_path):
        url_a, _ = start_server()
        url_b, _ = start_server()
        trace.enable_tracing()
        result, payloads = run_distributed([url_a, url_b], dict(AXES))
        assert len(result.points) == 2
        # The additive trace key never leaks into the merged payloads.
        assert all("trace" not in payload for payload in payloads)

        spans = trace.drain_spans()
        names = {span["name"] for span in spans}
        assert {"run_distributed", "shard", "submit", "job",
                "sweep"} <= names
        assert [span["name"] for span in spans
                if span["parent_id"] is None] == ["run_distributed"]
        # One trace id across client spans and both servers' spans.
        assert len({span["trace_id"] for span in spans}) == 1
        ids = {span["span_id"] for span in spans}
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in ids
        # Both servers' job spans made it home.
        jobs = [span for span in spans if span["name"] == "job"]
        assert len(jobs) == 2
        assert {span["attrs"]["kind"] for span in jobs} == {"sweep"}

        # And the stitched tree exports as loadable Chrome trace JSON.
        path = trace.write_chrome_trace(tmp_path / "dist.json", spans)
        document = json.loads(open(path).read())
        assert len(document["traceEvents"]) == len(spans)
        assert all(event["ph"] == "X"
                   for event in document["traceEvents"])

        # Acceptance: the analysis of a 2-server distributed trace
        # reports a critical path whose span ids all exist in the
        # stitched tree and whose duration never exceeds the root's.
        from repro.obs.analyze import analyze_spans, load_trace_file
        payload = analyze_spans(spans)
        assert payload["root"]["name"] == "run_distributed"
        assert payload["critical_path_us"] <= \
            payload["root"]["wall_us"]
        path_ids = {row["span_id"]
                    for row in payload["critical_path"]}
        assert path_ids and path_ids <= ids
        assert payload["shards"]["count"] == 2
        assert payload["orphans"] == 0
        # The saved file analyses to the same critical path.
        reloaded = analyze_spans(load_trace_file(path))
        assert {row["span_id"]
                for row in reloaded["critical_path"]} == path_ids

    def test_untraced_dispatch_ships_no_spans(self, fake_compute,
                                              start_server):
        url, _ = start_server()
        result, payloads = run_distributed([url], dict(AXES))
        assert len(result.points) == 2
        assert all("trace" not in payload for payload in payloads)
        assert trace.snapshot_spans() == []


class TestSchedulerMetrics:
    def test_rejections_and_queue_depth(self, fake_compute,
                                        start_server):
        import threading

        from repro.serve import jobs as jobs_module
        from repro.serve.jobs import JobManager

        gate = threading.Event()
        manager = JobManager(workers=1, max_concurrent_jobs=1,
                             max_queued_jobs=1)
        try:
            blocker = threading.Event()

            def stall(self, job, workers):
                gate.set()
                blocker.wait(timeout=10.0)
                job.fail("stalled")

            original = JobManager._execute
            JobManager._execute = stall
            try:
                body = {"kernels": ["fir"], "configs": ["HET1"],
                        "variants": ["full"]}
                manager.submit_request(dict(body))
                assert gate.wait(timeout=10.0)
                manager.submit_request(dict(body))  # queued (depth 1)
                assert metrics.SCHED_QUEUE_DEPTH.value() == 1
                before = metrics.SCHED_REJECTIONS.total()
                with pytest.raises(jobs_module.BusyError):
                    manager.submit_request(dict(body))
                assert metrics.SCHED_REJECTIONS.total() == before + 1
            finally:
                JobManager._execute = original
                blocker.set()
        finally:
            manager.close()
