"""``POST /v1/explorations``: the DSE engine behind the HTTP door.

Runs on the fake compute stand-in (see ``conftest``) — these tests
are about request validation, the job plumbing and the payload
contract, not the mapper.  The exploration *engine* has its own
suite under ``tests/dse/``.
"""

import pytest

from repro.serve.jobs import (
    JobManager,
    RequestError,
    resolve_exploration_request,
)

SMALL = {"space": ["ladder"], "depths": [8, 16, 32, 64],
         "kernels": ["fir", "fft"]}


class TestResolveExplorationRequest:
    def test_defaults(self):
        request = resolve_exploration_request({})
        assert request.kind == "exploration"
        assert request.config.strategy == "exhaustive"
        assert request.spec_total == len(request.config.designs) \
            * len(request.config.kernels)

    def test_axes_apply(self):
        request = resolve_exploration_request(
            {**SMALL, "strategy": "random", "budget": 5, "seed": 3})
        assert request.config.budget == 5
        assert request.config.seed == 3
        assert [d.name for d in request.config.designs] \
            == ["hom8", "hom16", "hom32", "hom64"]

    @pytest.mark.parametrize("body, diagnostic", [
        ({"kernals": ["fir"]}, "unknown request keys"),
        ({"kernels": "fir"}, "must be a list"),
        ({"budget": "five"}, "must be an integer"),
        ({"budget": 0}, "budget"),
        ({"strategy": "warp"}, "unknown search strategy"),
        ({"space": ["warp"]}, "unknown design space"),
        ({"objectives": ["energy", "karma"]}, "unknown objectives"),
        ([1, 2], "JSON object"),
    ])
    def test_bad_bodies_are_request_errors(self, body, diagnostic):
        with pytest.raises(RequestError, match=diagnostic):
            resolve_exploration_request(body)


class TestExplorationJobs:
    @pytest.fixture
    def manager(self, fake_compute):
        manager = JobManager(workers=1, cache=None)
        yield manager
        manager.close()

    def test_job_finishes_with_the_exploration_document(self,
                                                        manager):
        job = manager.submit_exploration_request(SMALL)
        records = [record for record in job.iter_records()
                   if record is not None]
        assert job.status == "done"
        payload = job.payload
        assert payload["kind"] == "exploration"
        assert payload["frontier"]
        assert payload["summary"]["evaluated_pairs"] == len(records)
        # Stream records land in evaluation order.
        assert [record["pos"] for record in records] \
            == list(range(len(records)))

    def test_snapshot_carries_the_kind(self, manager):
        job = manager.submit_exploration_request(SMALL)
        snapshot = job.snapshot()
        assert snapshot["kind"] == "exploration"
        assert snapshot["label"] == "explore:exhaustive"
        list(job.iter_records())


class TestHttpDoor:
    def test_submit_stream_fetch(self, fake_compute, client):
        receipt = client.submit_exploration(
            {**SMALL, "strategy": "adaptive"})
        assert receipt["kind"] == "exploration"
        assert receipt["stream"].startswith("/v1/explorations/")
        payload = client.follow(receipt)
        assert payload["kind"] == "exploration"
        assert payload["strategy"] == "adaptive"
        assert payload["frontier"]

    def test_run_exploration_shortcut(self, fake_compute, client):
        payload = client.run_exploration({**SMALL, "budget": 4})
        assert payload["summary"]["evaluated_pairs"] == 4

    def test_listings_are_kind_scoped(self, fake_compute, client):
        client.run_exploration(SMALL)
        client.run({"kernels": ["fir"], "configs": ["HOM64"],
                    "variants": ["basic"]})
        explorations = client.explorations()
        sweeps = client.jobs()
        assert [job["kind"] for job in explorations] \
            == ["exploration"]
        assert [job["kind"] for job in sweeps] == ["sweep"]

    def test_listing_reports_evictions(self, fake_compute,
                                       start_server):
        url, server = start_server()
        server.manager.max_finished_jobs = 0
        from repro.serve.client import SweepClient
        client = SweepClient(url, timeout=30.0)
        client.run_exploration({**SMALL, "budget": 2})
        listing = client._json("/v1/explorations")
        assert listing["jobs"] == []
        assert listing["evicted"] >= 1
        assert client.health()["evicted"] >= 1

    def test_bad_submission_is_400(self, fake_compute, client):
        from repro.serve.client import ServeClientError
        with pytest.raises(ServeClientError, match="400"):
            client.submit_exploration({"strategy": "warp"})
