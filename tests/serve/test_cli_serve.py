"""``repro submit`` end-to-end against live in-process servers."""

import json

import pytest

from repro.cli import main
from repro.runtime.cache import ResultCache
from repro.runtime.sweep import sweep_specs

AXIS_ARGS = ["--kernels", "fir,fft", "--configs", "HOM64",
             "--variants", "basic,full"]
N_POINTS = len(sweep_specs(kernels=("fir", "fft"),
                           configs=("HOM64",),
                           variants=("basic", "full")))


def run_json(capsys, argv):
    code = main(argv)
    return code, json.loads(capsys.readouterr().out)


class TestSubmitCli:
    def test_single_server_table(self, fake_compute, server_url,
                                 capsys):
        assert main(["submit", "--server", server_url]
                    + AXIS_ARGS) == 0
        out, err = capsys.readouterr()
        assert "fir" in out.lower() and "fft" in out.lower()
        # One stderr progress line per landed point.
        progress = [line for line in err.splitlines()
                    if line.startswith("[")]
        assert len(progress) == N_POINTS
        assert f"[{N_POINTS}/{N_POINTS}]" in progress[-1]

    def test_single_server_json_payload(self, fake_compute,
                                        server_url, capsys):
        code, payload = run_json(
            capsys, ["submit", "--server", server_url, "--json",
                     "--quiet"] + AXIS_ARGS)
        assert code == 0
        assert payload["summary"]["points"] == N_POINTS
        assert payload["summary"]["crashed"] == 0

    def test_quiet_flag_silences_progress(self, fake_compute,
                                          server_url, capsys):
        assert main(["submit", "--server", server_url, "--quiet"]
                    + AXIS_ARGS) == 0
        assert capsys.readouterr().err == ""

    def test_quiet_env_var(self, fake_compute, server_url, capsys,
                           monkeypatch):
        monkeypatch.setenv("REPRO_QUIET", "1")
        assert main(["submit", "--server", server_url]
                    + AXIS_ARGS) == 0
        assert capsys.readouterr().err == ""

    def test_sharded_submission_emits_a_mergeable_payload(
            self, fake_compute, server_url, tmp_path, capsys):
        files = []
        for index in range(2):
            code, payload = run_json(
                capsys, ["submit", "--server", server_url, "--json",
                         "--quiet", "--shard", f"{index}/2"]
                + AXIS_ARGS)
            assert code == 0
            assert payload["shard"] == {"index": index, "total": 2}
            path = tmp_path / f"shard-{index}.json"
            path.write_text(json.dumps(payload))
            files.append(str(path))
        code, merged = run_json(
            capsys, ["merge", "--json"] + files)
        assert code == 0
        assert len(merged["points"]) == N_POINTS

    def test_shard_across_two_servers(self, fake_compute,
                                      start_server, capsys):
        urls = [start_server()[0] for _ in range(2)]
        code, payload = run_json(
            capsys, ["submit", "--server", ",".join(urls),
                     "--shard-across", "--json", "--quiet"]
            + AXIS_ARGS)
        assert code == 0
        assert payload["summary"]["points"] == N_POINTS
        assert payload["summary"]["computed"] == N_POINTS

    def test_shard_across_progress_names_the_server(
            self, fake_compute, start_server, capsys):
        urls = [start_server()[0] for _ in range(2)]
        assert main(["submit", "--server", ",".join(urls),
                     "--shard-across"] + AXIS_ARGS) == 0
        _, err = capsys.readouterr()
        for url in urls:
            assert url in err

    def test_figure_submission(self, fake_compute, server_url,
                               capsys):
        from repro.eval.experiments import figure_point_specs
        code, payload = run_json(
            capsys, ["submit", "--server", server_url,
                     "--figure", "fig10", "--json", "--quiet"])
        assert code == 0
        assert payload["summary"]["points"] \
            == len(figure_point_specs("fig10"))

    def test_submit_warms_the_server_cache(self, fake_compute,
                                           start_server, tmp_path,
                                           capsys):
        url, _ = start_server(cache=ResultCache(tmp_path))
        args = ["submit", "--server", url, "--json", "--quiet"] \
            + AXIS_ARGS
        code, cold = run_json(capsys, args)
        assert code == 0
        assert cold["summary"]["computed"] == N_POINTS
        code, warm = run_json(capsys, args)
        assert code == 0
        assert warm["summary"]["computed"] == 0
        assert warm["summary"]["cache_hits"] == N_POINTS
        assert [p["point"] for p in warm["points"]] \
            == [p["point"] for p in cold["points"]]

    def test_several_servers_need_shard_across(self, fake_compute,
                                               capsys):
        assert main(["submit", "--server", "http://a,http://b"]
                    + AXIS_ARGS) == 1
        assert "--shard-across" in capsys.readouterr().err

    def test_shard_and_shard_across_conflict(self, fake_compute,
                                             server_url, capsys):
        assert main(["submit", "--server", server_url,
                     "--shard", "0/2", "--shard-across"]
                    + AXIS_ARGS) == 1
        assert "one or the other" in capsys.readouterr().err

    def test_figure_and_axes_conflict(self, fake_compute,
                                      server_url, capsys):
        assert main(["submit", "--server", server_url,
                     "--figure", "fig10", "--kernels", "fir"]) == 1
        assert "exclusive" in capsys.readouterr().err

    def test_serve_port_in_use_is_a_clean_error(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 1
            err = capsys.readouterr().err
            assert "cannot bind" in err
            assert "Traceback" not in err
        finally:
            blocker.close()

    def test_serve_out_of_range_port_is_a_clean_error(self, capsys):
        # bind() reports port 99999 as OverflowError, not OSError.
        assert main(["serve", "--port", "99999"]) == 1
        err = capsys.readouterr().err
        assert "cannot bind" in err
        assert "Traceback" not in err

    def test_unreachable_server_is_a_clean_error(self, capsys):
        assert main(["submit", "--server", "http://127.0.0.1:9",
                     "--timeout", "2"] + AXIS_ARGS) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_server_side_validation_reaches_the_user(
            self, fake_compute, server_url, capsys):
        assert main(["submit", "--server", server_url,
                     "--kernels", "warp_drive"]) == 1
        assert "unknown kernels" in capsys.readouterr().err

    def test_priority_flag_reaches_the_job(self, fake_compute,
                                           server_url, capsys):
        from repro.serve.client import SweepClient

        code, payload = run_json(
            capsys, ["submit", "--server", server_url, "--json",
                     "--quiet", "--priority", "9"] + AXIS_ARGS)
        assert code == 0
        assert payload["summary"]["points"] == N_POINTS
        jobs = SweepClient(server_url, timeout=10.0).jobs()
        assert jobs[-1]["priority"] == 9

    def test_out_of_range_priority_is_a_clean_error(
            self, fake_compute, server_url, capsys):
        assert main(["submit", "--server", server_url,
                     "--priority", "101"] + AXIS_ARGS) == 1
        assert "priority" in capsys.readouterr().err

    def test_serve_refuses_public_bind_without_token(self, capsys,
                                                     monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_TOKEN", raising=False)
        assert main(["serve", "--host", "0.0.0.0",
                     "--port", "0"]) == 1
        err = capsys.readouterr().err
        assert "without authentication" in err
        assert "Traceback" not in err

    def test_token_env_authenticates_submit(self, fake_compute,
                                            start_server, capsys,
                                            monkeypatch):
        url, _ = start_server(token="hunter2")
        args = ["submit", "--server", url, "--json", "--quiet"] \
            + AXIS_ARGS
        monkeypatch.delenv("REPRO_SERVE_TOKEN", raising=False)
        assert main(args) == 1
        assert "401" in capsys.readouterr().err
        monkeypatch.setenv("REPRO_SERVE_TOKEN", "hunter2")
        code, payload = run_json(capsys, args)
        assert code == 0
        assert payload["summary"]["points"] == N_POINTS

    def test_crashed_points_exit_nonzero(self, fake_compute,
                                         server_url, capsys,
                                         monkeypatch):
        import traceback

        from repro.runtime import pool
        from repro.runtime.sweep import ExperimentPoint

        def crashing(spec):
            spec = spec.resolve()
            try:
                raise RuntimeError("boom")
            except RuntimeError as error:
                return ExperimentPoint(
                    spec.kernel_name, spec.config_name, spec.variant,
                    error=f"RuntimeError: {error}\n"
                          f"{traceback.format_exc(limit=2)}")

        monkeypatch.setattr(pool, "_compute_captured", crashing)
        code, payload = run_json(
            capsys, ["submit", "--server", server_url, "--json",
                     "--quiet"] + AXIS_ARGS)
        assert code == 1
        assert payload["summary"]["crashed"] == N_POINTS


class TestMetricsScrapeErrors:
    def test_scrape_works_against_live_server(self, fake_compute,
                                              server_url, capsys):
        assert main(["metrics", "--server", server_url]) == 0
        out = capsys.readouterr().out
        assert "repro_http_requests_total" in out

    def test_connection_refused_is_one_line_error(self, capsys):
        # Port 1 is privileged and unbound: connect() fails fast.
        assert main(["metrics", "--server",
                     "http://127.0.0.1:1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot scrape")
        assert "Traceback" not in err

    def test_non_2xx_scrape_is_one_line_error(self, fake_compute,
                                              server_url, capsys):
        # /v1/metrics is not a route: the server answers 404.
        assert main(["metrics", "--server",
                     server_url + "/v1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: scrape of")
        assert "HTTP 404" in err
        assert "Traceback" not in err

    def test_schemeless_url_is_one_line_error(self, capsys):
        assert main(["metrics", "--server", "localhost:8000"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestSubmitTraceOut:
    def test_submit_trace_out_stitches_server_spans(
            self, fake_compute, server_url, tmp_path, capsys):
        out = tmp_path / "submit-trace.json"
        assert main(["submit", "--server", server_url, "--quiet",
                     "--trace-out", str(out)] + AXIS_ARGS) == 0
        capsys.readouterr()
        from repro.obs.analyze import load_trace_file
        spans = load_trace_file(out)
        names = {span["name"] for span in spans}
        # The server-side job span rode home and stitched in.
        assert {"submit", "job", "sweep"} <= names
        assert len({span["trace_id"] for span in spans}) == 1

    def test_explore_trace_out(self, fake_compute, tmp_path,
                               capsys):
        out = tmp_path / "explore-trace.json"
        assert main(["explore", "--space", "ladder", "--depths",
                     "8,16", "--kernels", "fir", "--quiet",
                     "--no-cache", "--trace-out", str(out)]) == 0
        capsys.readouterr()
        from repro.obs.analyze import load_trace_file
        assert any(span["name"] == "exploration"
                   for span in load_trace_file(out))


@pytest.mark.parametrize("argv", [
    ["sweep", "--kernels", "dc_filter", "--configs", "HOM64",
     "--variants", "basic", "--quiet"],
    ["figure", "fig10", "--shard", "0/8", "--quiet"],
])
class TestQuietFlag:
    """--quiet / $REPRO_QUIET on the local sweep/figure paths."""

    def test_flag_silences_progress(self, argv, tmp_path, capsys):
        assert main(argv + ["--cache-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().err == ""

    def test_env_silences_progress(self, argv, tmp_path, capsys,
                                   monkeypatch):
        monkeypatch.setenv("REPRO_QUIET", "1")
        assert main(argv[:-1] + ["--cache-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().err == ""

    def test_default_still_narrates(self, argv, tmp_path, capsys,
                                    monkeypatch):
        monkeypatch.delenv("REPRO_QUIET", raising=False)
        assert main(argv[:-1] + ["--cache-dir", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "[1/" in err
