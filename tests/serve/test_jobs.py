"""Job-manager unit tests: request parsing, lifecycle, streaming.

Everything here runs on the fake compute stand-in — these tests are
about the job machinery, not the mapper.  Synchronisation is always
``iter_records()`` / terminal status, never a sleep.
"""

import pytest

from repro.errors import ReproError
from repro.runtime.shard import (
    merge_sweep_payloads,
    spec_to_json,
    sweep_json_payload,
)
from repro.runtime.sweep import PointSpec, sweep_specs
from repro.serve.jobs import (
    JobManager,
    RequestError,
    resolve_request,
)


def finished(job):
    """Drain the record stream (returns at terminal) and return job."""
    list(job.iter_records())
    assert job.is_terminal
    return job


@pytest.fixture
def manager(fake_compute):
    manager = JobManager(workers=1, cache=None)
    yield manager
    manager.close()


class TestResolveRequest:
    def test_default_axes_are_the_full_sweep(self):
        request = resolve_request({})
        assert len(request.specs) == len(sweep_specs())
        assert request.shard is None
        assert request.positions == list(range(len(request.specs)))

    def test_axes_restrict_the_sweep(self):
        request = resolve_request({"kernels": ["fir"],
                                   "configs": ["hom64"],
                                   "variants": ["basic", "full"],
                                   "seed": 3})
        assert len(request.specs) == 2
        assert {spec.config_name for spec in request.specs} \
            == {"HOM64"}
        assert {spec.seed for spec in request.specs} == {3}

    def test_unknown_axis_is_a_request_error(self):
        with pytest.raises(RequestError, match="unknown kernels"):
            resolve_request({"kernels": ["warp_drive"]})

    def test_axis_must_be_a_string_list(self):
        with pytest.raises(RequestError, match="list of strings"):
            resolve_request({"kernels": "fir"})

    def test_figure_resolves_its_prewarm_specs(self):
        from repro.eval.experiments import figure_point_specs
        request = resolve_request({"figure": "fig6"})
        assert request.label == "fig6"
        assert len(request.specs) == len(figure_point_specs("fig6"))

    def test_render_only_figure_rejected(self):
        with pytest.raises(RequestError, match="v1/figures"):
            resolve_request({"figure": "fig9"})

    def test_unknown_figure_gets_its_own_diagnostic(self):
        with pytest.raises(RequestError, match="unknown figure"):
            resolve_request({"figure": "fig12"})

    def test_typod_request_key_rejected(self):
        # {"kernals": ...} must 400, never silently widen to the
        # full 140-point default sweep.
        with pytest.raises(RequestError, match="unknown request"):
            resolve_request({"kernals": ["fir"]})
        with pytest.raises(RequestError, match="unknown request"):
            resolve_request({"figures": "fig8"})

    def test_explicit_specs_round_trip(self):
        specs = [PointSpec("fir", "HET1", "full").resolve()]
        request = resolve_request(
            {"specs": [spec_to_json(spec) for spec in specs]})
        assert request.specs == specs

    def test_malformed_spec_is_a_request_error(self):
        with pytest.raises(RequestError, match="malformed spec"):
            resolve_request({"specs": [{"kernel": "fir"}]})

    def test_non_object_spec_entry_is_a_request_error(self):
        # A bare kernel name instead of a spec dict is an easy
        # client mistake; it must 400, not crash the handler.
        with pytest.raises(RequestError, match="malformed spec"):
            resolve_request({"specs": ["fir"]})

    def test_empty_specs_never_widen_to_the_default_sweep(self):
        with pytest.raises(RequestError, match="zero specs"):
            resolve_request({"specs": []})

    def test_empty_axis_never_widens_to_the_default_sweep(self):
        with pytest.raises(RequestError, match="zero specs"):
            resolve_request({"kernels": []})

    def test_figure_with_seed_rejected(self):
        # figure_point_specs pins its own seed; silently ignoring a
        # caller's seed would mislabel every cached point.
        with pytest.raises(RequestError, match="seed"):
            resolve_request({"figure": "fig6", "seed": 99})

    def test_modes_are_exclusive(self):
        with pytest.raises(RequestError, match="exclusive"):
            resolve_request({"figure": "fig6", "kernels": ["fir"]})

    @pytest.mark.parametrize("shard", ["1/4", [1, 4]])
    def test_shard_forms(self, shard):
        request = resolve_request({"kernels": ["fir", "fft"],
                                   "shard": shard})
        assert request.shard == (1, 4)
        assert len(request.specs) < request.spec_total

    @pytest.mark.parametrize("shard", ["4/2", [1], {"index": 0},
                                       [True, 2]])
    def test_bad_shards_rejected(self, shard):
        with pytest.raises(RequestError):
            resolve_request({"kernels": ["fir"], "shard": shard})

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            resolve_request([1, 2, 3])

    def test_bad_seed_rejected(self):
        with pytest.raises(RequestError, match="seed"):
            resolve_request({"seed": "seven"})


class TestJobLifecycle:
    REQUEST = {"kernels": ["fir", "fft"], "configs": ["HOM64"],
               "variants": ["basic", "full"]}

    def test_job_completes_with_a_mergeable_payload(self, manager):
        job = finished(manager.submit_request(self.REQUEST))
        assert job.status == "done"
        assert len(job.records) == 4
        payload = job.payload
        assert payload["shard"] is None
        assert payload["summary"]["points"] == 4
        merged = merge_sweep_payloads([payload])
        assert sweep_json_payload(merged)["points"] \
            == payload["points"]
        # Only the JSON payload survives completion; the heavy
        # SweepResult must not be retained for the server's lifetime.
        assert not hasattr(job, "result")

    def test_sharded_jobs_merge_to_the_full_sweep(self, manager):
        jobs = [finished(manager.submit_request(
            {**self.REQUEST, "shard": [index, 2]}))
            for index in range(2)]
        merged = merge_sweep_payloads([job.payload for job in jobs])
        full = finished(manager.submit_request(self.REQUEST))
        assert sweep_json_payload(merged)["points"] \
            == full.payload["points"]

    def test_unmapped_points_are_results_not_failures(self, manager):
        # fake_point turns HOM32/basic into a "context overflow".
        job = finished(manager.submit_request(
            {"kernels": ["fir"], "configs": ["HOM32"],
             "variants": ["basic"]}))
        assert job.status == "done"
        assert job.records[0]["point"]["error"] == "context overflow"

    def test_duplicate_specs_fan_out_to_every_position(self, manager):
        spec = spec_to_json(PointSpec("fir", "HET1", "full"))
        job = finished(manager.submit_request(
            {"specs": [spec, spec, spec]}))
        assert [record["pos"] for record in job.records] == [0, 1, 2]
        # One unique spec computed, three positions filled.
        assert job.computed == 1
        assert job.payload["summary"]["points"] == 3

    def test_engine_crash_fails_the_job(self, manager, monkeypatch):
        from repro.runtime import pool

        def explode(spec):
            raise RuntimeError("engine on fire")

        monkeypatch.setattr(pool, "_compute_captured", explode)
        job = finished(manager.submit_request(self.REQUEST))
        assert job.status == "failed"
        assert "engine on fire" in job.error
        assert job.payload is None

    def test_snapshot_counts_landed_points(self, manager):
        job = finished(manager.submit_request(self.REQUEST))
        snapshot = job.snapshot()
        assert snapshot["status"] == "done"
        assert snapshot["landed"] == 4
        assert snapshot["cache_hits"] == 0
        assert snapshot["computed"] == 4
        assert snapshot["error"] is None

    def test_records_replay_after_completion(self, manager):
        job = finished(manager.submit_request(self.REQUEST))
        again = list(job.iter_records())
        assert again == job.records

    def test_idle_stream_emits_heartbeats(self, fake_compute):
        from repro.serve.jobs import SweepJob, resolve_request

        # Never enqueued: the job stays silent, so a heartbeat-aware
        # reader must get None ticks instead of an endless block.
        job = SweepJob("job-x", resolve_request(self.REQUEST))
        stream = job.iter_records(heartbeat=0.0)
        assert next(stream) is None
        assert next(stream) is None
        job.fail("abandoned")
        remaining = [record for record in stream
                     if record is not None]
        assert remaining == []

    def test_heartbeats_never_interleave_with_records(self, manager):
        job = finished(manager.submit_request(self.REQUEST))
        # A finished job replays pure records even with an eager
        # heartbeat — ticks only fire while genuinely idle.
        assert list(job.iter_records(heartbeat=0.0)) == job.records

    def test_jobs_run_fifo_within_a_priority(self, fake_compute):
        # One runner makes completion order observable: equal
        # priorities must preserve submission order.
        manager = JobManager(workers=1, cache=None,
                             max_concurrent_jobs=1)
        try:
            first = manager.submit_request(self.REQUEST)
            second = manager.submit_request(self.REQUEST)
            finished(second)  # returns only once second is terminal
            assert first.status == "done"
            assert manager.counts()["done"] == 2
        finally:
            manager.close()

    def test_concurrent_jobs_run_at_once(self, fake_compute,
                                         monkeypatch):
        import threading

        from repro.runtime import pool

        both_started = threading.Barrier(3, timeout=10.0)
        gate = threading.Event()
        real = pool._compute_captured

        def slow(spec):
            both_started.wait()
            gate.wait(timeout=10.0)
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", slow)
        manager = JobManager(workers=1, cache=None,
                             max_concurrent_jobs=2)
        try:
            one_spec = {"kernels": ["fir"], "configs": ["HOM64"],
                        "variants": ["basic"]}
            jobs = [manager.submit_request(one_spec)
                    for _ in range(2)]
            # Both jobs reach their compute before either finishes —
            # impossible under the old single FIFO runner.
            both_started.wait()
            gate.set()
            for job in jobs:
                finished(job)
                assert job.status == "done"
        finally:
            gate.set()
            manager.close()

    def test_unknown_job_id(self, manager):
        from repro.serve.jobs import UnknownJobError
        with pytest.raises(UnknownJobError):
            manager.get("job-0-deadbeef")

    def test_close_fails_jobs_that_never_ran(self, fake_compute,
                                             monkeypatch):
        import threading

        from repro.runtime import pool

        started = threading.Event()
        gate = threading.Event()
        real = pool._compute_captured

        def slow(spec):
            started.set()
            gate.wait(timeout=10.0)
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", slow)
        manager = JobManager(workers=1, cache=None,
                             max_concurrent_jobs=1)
        blocker = manager.submit_request({"kernels": ["fir"],
                                          "configs": ["HOM64"],
                                          "variants": ["basic"]})
        assert started.wait(timeout=10.0)  # runner holds `blocker`
        queued = manager.submit_request(self.REQUEST)
        # close() fails the still-queued job before joining the
        # runner, which is parked on the gate — so run it from a
        # helper thread and observe the failure through the stream.
        closer = threading.Thread(target=manager.close, daemon=True)
        closer.start()
        list(queued.iter_records())  # returns at terminal status
        assert queued.status == "failed"
        assert "shut down" in queued.error
        gate.set()
        closer.join(timeout=10.0)
        finished(blocker)
        assert blocker.status == "done"
        with pytest.raises(ReproError, match="shut down"):
            manager.submit_request(self.REQUEST)


class TestScheduler:
    """Priority ordering, worker-pool budgets, and backpressure."""

    def _gated_manager(self, monkeypatch, order, **kwargs):
        """A single-runner manager whose computes wait on a gate."""
        import threading

        from repro.runtime import pool

        started = threading.Event()
        gate = threading.Event()
        real = pool._compute_captured

        def slow(spec):
            started.set()
            gate.wait(timeout=10.0)
            order.append(spec.kernel_name)
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", slow)
        manager = JobManager(workers=1, cache=None,
                             max_concurrent_jobs=1, **kwargs)
        return manager, started, gate

    @staticmethod
    def _one(kernel, priority=None):
        request = {"kernels": [kernel], "configs": ["HOM64"],
                   "variants": ["basic"]}
        if priority is not None:
            request["priority"] = priority
        return request

    def test_higher_priority_runs_first(self, fake_compute,
                                        monkeypatch):
        order = []
        manager, started, gate = self._gated_manager(monkeypatch,
                                                     order)
        try:
            blocker = manager.submit_request(self._one("fir"))
            assert started.wait(timeout=10.0)
            # Queued while the runner is busy: the high-priority
            # latecomer must overtake the earlier default submission.
            low = manager.submit_request(self._one("fft"))
            high = manager.submit_request(self._one("matmul",
                                                    priority=10))
            assert low.snapshot()["priority"] == 0
            assert high.snapshot()["priority"] == 10
            gate.set()
            for job in (blocker, low, high):
                finished(job)
            assert order == ["fir", "matmul", "fft"]
        finally:
            gate.set()
            manager.close()

    def test_equal_priority_preserves_submission_order(
            self, fake_compute, monkeypatch):
        order = []
        manager, started, gate = self._gated_manager(monkeypatch,
                                                     order)
        try:
            manager.submit_request(self._one("fir"))
            assert started.wait(timeout=10.0)
            first = manager.submit_request(self._one("fft",
                                                     priority=5))
            second = manager.submit_request(self._one("matmul",
                                                      priority=5))
            gate.set()
            finished(first)
            finished(second)
            assert order == ["fir", "fft", "matmul"]
        finally:
            gate.set()
            manager.close()

    def test_queue_bound_raises_busy(self, fake_compute,
                                     monkeypatch):
        from repro.serve.jobs import BusyError

        order = []
        manager, started, gate = self._gated_manager(
            monkeypatch, order, max_queued_jobs=1)
        try:
            running = manager.submit_request(self._one("fir"))
            assert started.wait(timeout=10.0)
            queued = manager.submit_request(self._one("fft"))
            with pytest.raises(BusyError, match="queue is full") \
                    as caught:
                manager.submit_request(self._one("matmul"))
            assert caught.value.retry_after > 0
            # Backpressure bounces the latecomer only: in-flight and
            # queued jobs still finish.
            gate.set()
            finished(running)
            finished(queued)
            assert running.status == "done"
            assert queued.status == "done"
        finally:
            gate.set()
            manager.close()

    def test_max_specs_per_job_is_a_request_error(self,
                                                  fake_compute):
        manager = JobManager(workers=1, cache=None,
                             max_specs_per_job=2)
        try:
            with pytest.raises(RequestError, match="spec limit"):
                manager.submit_request({"kernels": ["fir", "fft"],
                                        "configs": ["HOM64"]})
            job = finished(manager.submit_request(self._one("fir")))
            assert job.status == "done"
        finally:
            manager.close()

    def test_priority_validation(self):
        with pytest.raises(RequestError, match="priority"):
            resolve_request({"kernels": ["fir"], "priority": "high"})
        with pytest.raises(RequestError, match="priority"):
            resolve_request({"kernels": ["fir"], "priority": 101})
        with pytest.raises(RequestError, match="priority"):
            resolve_request({"kernels": ["fir"], "priority": True})
        assert resolve_request({"kernels": ["fir"],
                                "priority": -100}).priority == -100

    def test_worker_pool_grants_and_returns(self):
        from repro.serve.jobs import WorkerPool

        pool = WorkerPool(4)
        first = pool.take(10)
        assert first == 4  # sole holder takes everything it wants
        second = pool.take(10)
        assert second == 0  # empty pool -> inline compute, no block
        pool.give_back(first)
        pool.give_back(second)
        assert pool.free == 4
        # With holders present, a grant is capped at an even share.
        a = pool.take(10)
        assert a == 4
        pool.give_back(a)
        grants = [pool.take(1), pool.take(4)]
        assert grants[0] == 1
        assert grants[1] <= 2  # second of two holders: even share
        for grant in grants:
            pool.give_back(grant)
        assert pool.free == 4

    def test_jobs_report_their_worker_grant(self, manager):
        job = finished(manager.submit_request(
            {"kernels": ["fir"], "configs": ["HOM64"],
             "variants": ["basic"]}))
        assert job.snapshot()["workers"] == 1


class TestEviction:
    """Retention policy: long-lived managers stay bounded."""

    REQUEST = {"kernels": ["fir"], "configs": ["HOM64"],
               "variants": ["basic"]}

    def _run_jobs(self, manager, count):
        jobs = [manager.submit_request(self.REQUEST)
                for _ in range(count)]
        for job in jobs:
            finished(job)
        return jobs

    def test_count_bound_evicts_oldest_finished(self, fake_compute):
        manager = JobManager(workers=1, cache=None,
                             max_finished_jobs=2,
                             finished_ttl_seconds=None)
        try:
            jobs = self._run_jobs(manager, 4)
            listed = {snap["id"] for snap in manager.list_jobs()}
            assert listed == {jobs[2].id, jobs[3].id}
            assert manager.evicted == 2
            from repro.serve.jobs import UnknownJobError
            with pytest.raises(UnknownJobError, match="evicted"):
                manager.get(jobs[0].id)
        finally:
            manager.close()

    def test_ttl_evicts_old_finished_jobs(self, fake_compute,
                                          monkeypatch):
        manager = JobManager(workers=1, cache=None,
                             max_finished_jobs=None,
                             finished_ttl_seconds=60.0)
        try:
            jobs = self._run_jobs(manager, 2)
            # Age the first job past the TTL by rewriting its
            # finish stamp — no sleeps in this suite.
            jobs[0].finished -= 120.0
            listed = {snap["id"] for snap in manager.list_jobs()}
            assert listed == {jobs[1].id}
            assert manager.evicted == 1
        finally:
            manager.close()

    def test_running_and_queued_jobs_never_evict(self, fake_compute,
                                                 monkeypatch):
        import threading

        from repro.runtime import pool

        started = threading.Event()
        gate = threading.Event()
        real = pool._compute_captured

        def slow(spec):
            started.set()
            gate.wait(timeout=10.0)
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", slow)
        manager = JobManager(workers=1, cache=None,
                             max_concurrent_jobs=1,
                             max_finished_jobs=0,
                             finished_ttl_seconds=None)
        try:
            running = manager.submit_request(self.REQUEST)
            assert started.wait(timeout=10.0)
            queued = manager.submit_request(self.REQUEST)
            alive = {snap["id"] for snap in manager.list_jobs()}
            assert alive == {running.id, queued.id}
            gate.set()
            finished(queued)
            # Now both are terminal and the zero-retention policy
            # may drop them.
            assert manager.list_jobs() == []
            assert manager.evicted == 2
        finally:
            gate.set()
            manager.close()

    def test_flooded_queue_never_loses_live_jobs(self, fake_compute,
                                                 monkeypatch):
        import threading

        from repro.runtime import pool

        started = threading.Event()
        gate = threading.Event()
        real = pool._compute_captured

        def slow(spec):
            started.set()
            gate.wait(timeout=30.0)
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", slow)
        # Zero retention + a flood of submissions: every submit and
        # every listing runs the eviction scan while all jobs are
        # still queued/running — none may disappear.
        manager = JobManager(workers=1, cache=None,
                             max_concurrent_jobs=1,
                             max_finished_jobs=0,
                             finished_ttl_seconds=None)
        try:
            jobs = [manager.submit_request(self.REQUEST)
                    for _ in range(12)]
            assert started.wait(timeout=10.0)
            alive = {snap["id"] for snap in manager.list_jobs()}
            assert alive == {job.id for job in jobs}
            assert manager.evicted == 0
            for job in jobs:  # every live job still resolvable
                assert manager.get(job.id) is job
            gate.set()
            for job in jobs:
                finished(job)
                assert job.status == "done"
            # Terminal at last: the zero-retention policy applies.
            assert manager.list_jobs() == []
            assert manager.evicted == len(jobs)
        finally:
            gate.set()
            manager.close()

    def test_defaults_are_bounded(self, fake_compute):
        from repro.serve.jobs import (
            DEFAULT_FINISHED_TTL_SECONDS,
            DEFAULT_MAX_FINISHED_JOBS,
        )
        manager = JobManager(workers=1, cache=None)
        try:
            assert manager.max_finished_jobs \
                == DEFAULT_MAX_FINISHED_JOBS
            assert manager.finished_ttl_seconds \
                == DEFAULT_FINISHED_TTL_SECONDS
        finally:
            manager.close()
