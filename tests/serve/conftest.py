"""Shared fixtures for the serve test suite.

Servers run on an ephemeral port (``port=0``) inside a
``serve_forever`` thread and are shut down by the fixture — no fixed
ports, no sleeps: readiness is "the socket is bound before the
fixture returns", and test synchronisation rides the job/stream
condition variables, never wall-clock waits.

``fake_compute`` swaps the worker entry point for a deterministic
microsecond-scale stand-in, which reaches the in-process server
because the manager's ``workers=1`` path computes inline (module
attribute lookup — the same seam every other runtime suite patches).
Integration tests that want the *real* mapping pipeline simply don't
request the fixture.
"""

import threading

import pytest

from repro.power.energy import EnergyBreakdown
from repro.runtime.sweep import ExperimentPoint
from repro.serve.client import SweepClient
from repro.serve.server import make_server


def fake_point(spec):
    """A deterministic synthetic result for one resolved spec."""
    spec = spec.resolve()
    signature = sum(ord(ch) for ch in spec.describe())
    if spec.config_name == "HOM32" and spec.variant == "basic":
        # A reproducible "zero bar", so suites see unmapped points.
        return ExperimentPoint(
            spec.kernel_name, spec.config_name, spec.variant,
            compile_seconds=0.0, error="context overflow")
    return ExperimentPoint(
        spec.kernel_name, spec.config_name, spec.variant,
        compile_seconds=0.0, cycles=100 + signature % 900,
        energy=EnergyBreakdown({"alu": 1000.0 + signature,
                                "cm": 250.0}),
        mapped=True)


@pytest.fixture
def fake_compute(monkeypatch):
    """Replace the worker entry point with :func:`fake_point`."""
    from repro.runtime import pool

    monkeypatch.setattr(pool, "_compute_captured", fake_point)
    return fake_point


@pytest.fixture
def start_server():
    """Factory: boot a serve instance, return ``(url, server)``.

    Every server this factory starts is shut down after the test,
    jobs manager included.
    """
    running = []

    def _start(cache=None, workers=1, **kwargs):
        server = make_server(host="127.0.0.1", port=0,
                             workers=workers, cache=cache, quiet=True,
                             **kwargs)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        running.append((server, thread))
        host, port = server.server_address[:2]
        return f"http://{host}:{port}", server

    yield _start
    for server, thread in running:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


@pytest.fixture
def server_url(start_server):
    """One cache-less server's base URL."""
    url, _ = start_server()
    return url


@pytest.fixture
def client(server_url):
    return SweepClient(server_url, timeout=30.0)
