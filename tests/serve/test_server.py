"""Client ↔ server integration on an ephemeral port, no sleeps.

The acceptance paths live here: the ``/stream`` endpoint yields every
cached point before any freshly computed one, and a sweep sharded
across two live servers merges client-side into the same result as
the single-process batch run.
"""

import json
import urllib.request

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.pool import run_sweep
from repro.runtime.shard import sweep_json_payload
from repro.runtime.sweep import sweep_specs
from repro.serve.client import (
    ServeClientError,
    SweepClient,
    describe_record,
    run_distributed,
)

AXES = {"kernels": ["fir", "fft"], "configs": ["HOM64", "HET1"],
        "variants": ["basic", "full"]}

SPECS = sweep_specs(kernels=("fir", "fft"),
                    configs=("HOM64", "HET1"),
                    variants=("basic", "full"))


class TestEndpoints:
    def test_healthz(self, fake_compute, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 1
        assert health["cache"] is False
        assert health["jobs"] == {"queued": 0, "running": 0,
                                  "done": 0, "failed": 0}

    def test_cache_stats_disabled(self, fake_compute, client):
        assert client.cache_stats() == {"enabled": False}

    def test_cache_stats_enabled(self, fake_compute, start_server,
                                 tmp_path):
        url, _ = start_server(cache=ResultCache(tmp_path))
        client = SweepClient(url)
        client.run(AXES)
        stats = client.cache_stats()
        assert stats["enabled"] is True
        assert stats["entries"] == len(SPECS)
        assert stats["stores"] == len(SPECS)

    def test_figures_listing(self, fake_compute, client):
        figures = client.figures()
        assert figures["fig6"] > 0
        assert figures["fig9"] == 0

    def test_unknown_job_is_404(self, fake_compute, client):
        with pytest.raises(ServeClientError, match="404"):
            client.status("job-0-cafef00d")

    def test_unknown_route_is_404(self, fake_compute, client):
        with pytest.raises(ServeClientError, match="404"):
            client._json("/v2/nothing")

    def test_bad_submission_is_400(self, fake_compute, client):
        with pytest.raises(ServeClientError,
                           match="400.*unknown kernels"):
            client.submit({"kernels": ["warp_drive"]})

    def test_non_json_body_is_400(self, fake_compute, server_url):
        request = urllib.request.Request(
            server_url + "/v1/sweeps", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "not JSON" in json.loads(
            excinfo.value.read().decode())["error"]

    @pytest.mark.parametrize("headers,reason", [
        (b"Content-Length: -1\r\n", b"400"),
        # read(-1) would park the handler on the open socket; the
        # server must answer 400 without touching the body.
        (b"Transfer-Encoding: chunked\r\n", b"400"),
        # http.server never dechunks: accepting this would silently
        # drop the body and submit the full default sweep.
        (b"", b"400"),
        # No Content-Length at all: same silent-widening hazard.
        (b"Content-Length: 0\r\n", b"400"),
        # Explicitly empty body (curl -d ''): still not a licence to
        # run the full default sweep; that takes an explicit `{}`.
    ])
    def test_unframed_bodies_are_400_not_a_hang(
            self, fake_compute, server_url, headers, reason):
        import socket
        from urllib.parse import urlsplit

        parts = urlsplit(server_url)
        with socket.create_connection(
                (parts.hostname, parts.port), timeout=10) as sock:
            sock.sendall(b"POST /v1/sweeps HTTP/1.1\r\n"
                         b"Host: test\r\n" + headers + b"\r\n")
            response = sock.recv(65536)
        assert b" " + reason + b" " in response.splitlines()[0]

    def test_bind_failure_leaks_no_runner_thread(self):
        import socket
        import threading

        from repro.serve.server import make_server

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            def runners():
                return sum(
                    thread.name.startswith("repro-serve-jobs")
                    and thread.is_alive()
                    for thread in threading.enumerate())

            before = runners()
            for _ in range(3):
                with pytest.raises(OSError):
                    make_server(port=port)
            assert runners() == before
        finally:
            blocker.close()

    def test_job_listing(self, fake_compute, client):
        client.run(AXES)
        jobs = client.jobs()
        assert len(jobs) == 1
        assert jobs[0]["status"] == "done"
        assert jobs[0]["landed"] == len(SPECS)


class TestAuthAndBackpressure:
    def test_token_required_when_set(self, fake_compute,
                                     start_server):
        url, _ = start_server(token="s3cret")
        anonymous = SweepClient(url, timeout=10.0)
        with pytest.raises(ServeClientError, match="401") as caught:
            anonymous.jobs()
        assert caught.value.status == 401
        with pytest.raises(ServeClientError, match="401"):
            anonymous.submit(AXES)
        wrong = SweepClient(url, timeout=10.0, token="guess")
        with pytest.raises(ServeClientError, match="401"):
            wrong.jobs()

    def test_token_grants_access(self, fake_compute, start_server):
        url, _ = start_server(token="s3cret")
        client = SweepClient(url, timeout=10.0, token="s3cret")
        payload = client.run(AXES)
        assert payload["summary"]["points"] == len(SPECS)

    def test_healthz_stays_open_without_token(self, fake_compute,
                                              start_server):
        url, _ = start_server(token="s3cret")
        health = SweepClient(url, timeout=10.0).health()
        assert health["status"] == "ok"
        assert health["auth"] is True

    def test_non_loopback_bind_refused_without_token(self):
        from repro.errors import ReproError
        from repro.serve.server import make_server

        with pytest.raises(ReproError, match="without auth"):
            make_server(host="0.0.0.0", port=0)

    def test_queue_bound_answers_429_with_retry_after(
            self, fake_compute, start_server, monkeypatch):
        import threading
        import urllib.error

        from repro.runtime import pool

        started = threading.Event()
        gate = threading.Event()
        real = pool._compute_captured

        def slow(spec):
            started.set()
            gate.wait(timeout=30.0)
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", slow)
        url, _ = start_server(max_concurrent_jobs=1,
                              max_queued_jobs=0)
        client = SweepClient(url, timeout=10.0)
        one = {"kernels": ["fir"], "configs": ["HOM64"],
               "variants": ["basic"]}
        receipt = client.submit(one)
        assert started.wait(timeout=10.0)  # runner busy, queue bound 0
        request = urllib.request.Request(
            url + "/v1/sweeps", data=json.dumps(one).encode(),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 429
        assert int(caught.value.headers["Retry-After"]) > 0
        body = json.loads(caught.value.read().decode())
        assert "queue is full" in body["error"]
        # Acceptance: the bounced submission did not disturb the
        # in-flight job.
        gate.set()
        assert client.follow(receipt)["summary"]["points"] == 1

    def test_429_surfaces_retry_after_in_the_client(
            self, fake_compute, start_server, monkeypatch):
        import threading

        from repro.runtime import pool

        started = threading.Event()
        gate = threading.Event()
        real = pool._compute_captured

        def slow(spec):
            started.set()
            gate.wait(timeout=30.0)
            return real(spec)

        monkeypatch.setattr(pool, "_compute_captured", slow)
        url, _ = start_server(max_concurrent_jobs=1,
                              max_queued_jobs=0)
        client = SweepClient(url, timeout=10.0)
        one = {"kernels": ["fir"], "configs": ["HOM64"],
               "variants": ["basic"]}
        receipt = client.submit(one)
        assert started.wait(timeout=10.0)
        with pytest.raises(ServeClientError, match="429") as caught:
            client.submit(one)
        assert caught.value.status == 429
        assert caught.value.retry_after > 0
        gate.set()
        client.follow(receipt)

    def test_healthz_reports_scheduler_state(self, fake_compute,
                                             start_server):
        url, _ = start_server(max_concurrent_jobs=2,
                              max_queued_jobs=7)
        health = SweepClient(url, timeout=10.0).health()
        scheduler = health["scheduler"]
        assert scheduler["max_concurrent_jobs"] == 2
        assert scheduler["max_queued_jobs"] == 7
        assert scheduler["queued"] == 0
        assert scheduler["workers_free"] == 1


class TestSubmitAndStream:
    def test_run_returns_the_batch_payload(self, fake_compute,
                                           client):
        payload = client.run(AXES)
        assert payload["summary"]["points"] == len(SPECS)
        assert payload["summary"]["computed"] == len(SPECS)
        assert payload["fingerprint"]
        assert [record["pos"] for record in payload["points"]] \
            == list(range(len(SPECS)))

    @pytest.mark.parametrize("spec_args,from_cache", [
        (("fir", "HET1", "full"), False),
        (("fir", "HET1", "full"), True),
        (("fir", "HOM32", "basic"), False),  # fake unmapped point
    ])
    def test_remote_progress_lines_match_local_ones(
            self, fake_compute, spec_args, from_cache):
        # describe_record renders a streamed JSON record; pin it to
        # StreamUpdate.describe so the remote narration can never
        # silently drift from the local one.  The only sanctioned
        # difference is the tail of the parenthetical: local appends
        # elapsed seconds, remote appends the server origin.
        from repro.runtime.shard import point_to_json, spec_to_json
        from repro.runtime.stream import StreamUpdate
        from repro.runtime.sweep import PointSpec

        spec = PointSpec(*spec_args).resolve()
        point = fake_compute(spec)
        local = StreamUpdate(spec=spec, point=point, done=3, total=7,
                             from_cache=from_cache,
                             elapsed_seconds=2.0).describe()
        remote = describe_record(
            {"spec": spec_to_json(spec),
             "point": point_to_json(point),
             "from_cache": from_cache}, 3, 7)
        assert remote.endswith(")")
        assert local.startswith(remote[:-1])

    def test_stream_narrates_each_point(self, fake_compute, client):
        receipt = client.submit(AXES)
        records = list(client.stream(receipt["id"]))
        assert len(records) == len(SPECS)
        lines = [describe_record(record, i + 1, len(records))
                 for i, record in enumerate(records)]
        assert all("computed" in line for line in lines)
        assert f"[{len(SPECS)}/{len(SPECS)}]" in lines[-1]

    def test_stream_replays_for_late_readers(self, fake_compute,
                                             client):
        receipt = client.submit(AXES)
        first = list(client.stream(receipt["id"]))
        # The job is long done; a second reader gets the same replay.
        second = list(client.stream(receipt["id"]))
        assert first == second

    def test_cached_points_stream_before_computed_ones(
            self, fake_compute, start_server, tmp_path):
        # Acceptance: /stream yields every cache hit before any
        # freshly computed point.  Prewarm half the sweep directly
        # into the server's cache, then watch the stream order.
        cache = ResultCache(tmp_path)
        warm = SPECS[::2]
        for spec in warm:
            cache.store_point(spec.resolve(),
                              fake_compute(spec.resolve()))
        url, _ = start_server(cache=cache)
        client = SweepClient(url)
        receipt = client.submit(AXES)
        records = list(client.stream(receipt["id"]))
        sources = [record["from_cache"] for record in records]
        assert sources.count(True) == len(warm)
        first_computed = sources.index(False)
        assert all(not hit for hit in sources[first_computed:])
        status = client.status(receipt["id"])
        assert status["cache_hits"] == len(warm)
        assert status["computed"] == len(SPECS) - len(warm)

    def test_failed_job_raises_with_the_server_error(
            self, fake_compute, client, monkeypatch):
        from repro.runtime import pool

        def explode(spec):
            raise RuntimeError("engine on fire")

        monkeypatch.setattr(pool, "_compute_captured", explode)
        with pytest.raises(ServeClientError, match="engine on fire"):
            client.run(AXES)

    def test_unreachable_server(self):
        client = SweepClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServeClientError, match="cannot reach"):
            client.health()


class TestDistributedDispatch:
    def test_two_servers_merge_to_the_local_batch_run(
            self, fake_compute, start_server):
        urls = [start_server()[0] for _ in range(2)]
        result, payloads = run_distributed(urls, AXES)
        local = run_sweep(SPECS)
        assert sweep_json_payload(result)["points"] \
            == sweep_json_payload(local)["points"]
        assert result.computed == len(SPECS)
        assert {payload["shard"]["index"]
                for payload in payloads} == {0, 1}
        # Both servers did real, disjoint work.
        sizes = [len(payload["points"]) for payload in payloads]
        assert all(size > 0 for size in sizes)
        assert sum(sizes) == len(SPECS)

    def test_progress_interleaves_with_server_origin(
            self, fake_compute, start_server):
        urls = [start_server()[0] for _ in range(2)]
        seen = []
        run_distributed(urls, AXES,
                        progress=lambda record, done, total, url:
                        seen.append((url, record["pos"])))
        assert len(seen) == len(SPECS)
        assert {url for url, _ in seen} == set(urls)

    def test_one_dead_server_rebalances_to_the_survivor(
            self, fake_compute, start_server):
        # One of the two URLs was never alive: its shard must be
        # resubmitted to the survivor and the merge still succeed.
        url, _ = start_server()
        result, payloads = run_distributed(
            [url, "http://127.0.0.1:9"], AXES, timeout=2.0,
            backoff_seconds=0)
        local = run_sweep(SPECS)
        assert sweep_json_payload(result)["points"] \
            == sweep_json_payload(local)["points"]
        assert {payload["shard"]["index"]
                for payload in payloads} == {0, 1}

    def test_all_servers_dead_aggregates_every_outcome(
            self, fake_compute):
        # Satellite: the failure must name which shard on which
        # host failed — every outcome, not just the first.
        with pytest.raises(ServeClientError) as caught:
            run_distributed(
                ["http://127.0.0.1:9", "http://127.0.0.1:10"],
                AXES, timeout=2.0, backoff_seconds=0)
        message = str(caught.value)
        assert "shard 0 @ http://127.0.0.1:9" in message
        assert "shard 1 @ http://127.0.0.1:10" in message
        assert "2/2 shard(s)" in message

    def test_shards_exhaust_their_attempts(self, fake_compute,
                                           start_server,
                                           monkeypatch):
        # Force every submission to fail retryably (429) and count
        # the rounds: the dispatch must give up after max_attempts.
        url, _ = start_server(max_concurrent_jobs=1,
                              max_queued_jobs=0)
        calls = []

        def busy(self, request):
            calls.append(request["shard"])
            raise ServeClientError("queue is full", status=429,
                                   retry_after=0)

        monkeypatch.setattr(SweepClient, "submit", busy)
        with pytest.raises(ServeClientError, match="attempt 2"):
            run_distributed([url], AXES, max_attempts=2,
                            backoff_seconds=0)
        assert calls == [[0, 1], [0, 1]]

    def test_caller_supplied_shard_rejected(self, fake_compute):
        with pytest.raises(ServeClientError, match="dispatcher"):
            run_distributed(["http://x"], {"shard": [0, 2]})

    def test_no_servers_rejected(self, fake_compute):
        with pytest.raises(ServeClientError, match="no sweep"):
            run_distributed([], AXES)


class TestRealPipeline:
    """The acceptance criterion on the genuine mapping pipeline."""

    REAL_AXES = {"kernels": ["dc_filter"], "configs": ["HOM64"],
                 "variants": ["basic", "full"]}
    REAL_SPECS = sweep_specs(kernels=("dc_filter",),
                             configs=("HOM64",),
                             variants=("basic", "full"))

    @staticmethod
    def deterministic(payload_points):
        """Point records minus wall-clock compile time."""
        rows = []
        for record in payload_points:
            point = dict(record["point"])
            point.pop("compile_seconds")
            rows.append({"pos": record["pos"],
                         "spec": record["spec"], "point": point})
        return rows

    def test_multiworker_server_completes_a_job(self, start_server,
                                                tmp_path):
        # workers>1 inside the threaded server exercises the
        # non-fork mp context (plain fork from a multithreaded
        # process can wedge a worker); this mirrors CI serve-smoke.
        url, _ = start_server(cache=ResultCache(tmp_path), workers=2)
        payload = SweepClient(url, timeout=120.0).run(self.REAL_AXES)
        assert payload["summary"]["crashed"] == 0
        assert payload["summary"]["computed"] == len(self.REAL_SPECS)

    def test_sharded_service_equals_local_batch(self, start_server,
                                                tmp_path):
        urls = [start_server(
            cache=ResultCache(tmp_path / f"cache-{index}"))[0]
            for index in range(2)]
        result, _ = run_distributed(urls, self.REAL_AXES)
        local = run_sweep(self.REAL_SPECS)
        assert self.deterministic(
            sweep_json_payload(result)["points"]) \
            == self.deterministic(
                sweep_json_payload(local)["points"])
        assert result.computed == len(self.REAL_SPECS)
        assert not result.crashed
