"""Functional validation of the seven paper kernels.

Each kernel's CDFG, executed by the golden interpreter, must reproduce
its independent Python reference bit-exactly.  This validates the CDFGs
themselves before any mapping happens.
"""

import numpy as np
import pytest

from repro.ir.interp import Interpreter
from repro.kernels import PAPER_KERNEL_ORDER, get_kernel
from repro.kernels.suite import display_name


def run_kernel(kernel, seed=0):
    inputs = kernel.make_inputs(np.random.default_rng(seed))
    memory = kernel.make_memory(inputs)
    result = Interpreter(kernel.cdfg).run(memory)
    return inputs, result


@pytest.mark.parametrize("name", PAPER_KERNEL_ORDER)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kernel_matches_reference(name, seed):
    kernel = get_kernel(name)
    inputs, result = run_kernel(kernel, seed)
    expected = kernel.reference(inputs)
    for region_name in kernel.output_regions:
        got = result.region(kernel.cdfg, region_name)
        assert got == expected[region_name], (
            f"{name}: region {region_name!r} mismatch")


@pytest.mark.parametrize("name", PAPER_KERNEL_ORDER)
def test_kernel_cdfg_validates(name):
    kernel = get_kernel(name)
    assert kernel.cdfg.validate()


@pytest.mark.parametrize("name", PAPER_KERNEL_ORDER)
def test_kernel_has_display_name(name):
    assert display_name(name) != ""


class TestKernelShapes:
    """The structural properties the evaluation narrative relies on."""

    def test_block_counts_stay_mappable(self):
        # Every kernel must keep a compact CDFG: per-tile context cost
        # grows with block count, and the paper maps all kernels onto
        # CM64 tiles with the basic flow.
        for name in PAPER_KERNEL_ORDER:
            kernel = get_kernel(name)
            assert len(kernel.cdfg.blocks) <= 24, (
                f"{name} has {len(kernel.cdfg.blocks)} blocks")

    def test_fft_is_among_largest_static_kernels(self):
        sizes = {name: get_kernel(name).cdfg.n_ops
                 for name in PAPER_KERNEL_ORDER}
        ranked = sorted(sizes, key=sizes.get, reverse=True)
        assert "fft" in ranked[:3], sizes

    def test_dc_filter_is_small(self):
        sizes = {name: get_kernel(name).cdfg.n_ops
                 for name in PAPER_KERNEL_ORDER}
        assert sizes["dc_filter"] <= sizes["fft"]


class TestFFTAgainstNumpy:
    def test_fft_matches_numpy_within_fixed_point_error(self):
        kernel = get_kernel("fft")
        inputs, result = run_kernel(kernel, seed=3)
        n = len(inputs["re"])
        signal = np.array(inputs["re"]) + 1j * np.array(inputs["im"])
        expected = np.fft.fft(signal)
        got = (np.array(result.region(kernel.cdfg, "xr"))
               + 1j * np.array(result.region(kernel.cdfg, "xi")))
        # Q2.14 twiddles truncate; allow a small relative/absolute slack.
        error = np.abs(got - expected)
        assert float(np.max(error)) < 64.0


class TestParametrisedBuilds:
    def test_tiny_fir(self):
        kernel = get_kernel("fir", n_samples=4, n_taps=2)
        inputs, result = run_kernel(kernel)
        assert result.region(kernel.cdfg, "y") == kernel.reference(inputs)["y"]

    def test_tiny_matmul(self):
        kernel = get_kernel("matmul", size=4, j_unroll=2)
        inputs, result = run_kernel(kernel)
        assert result.region(kernel.cdfg, "c") == kernel.reference(inputs)["c"]

    def test_matmul_bad_unroll_rejected(self):
        with pytest.raises(ValueError):
            get_kernel("matmul", size=6, j_unroll=4)

    def test_tiny_fft(self):
        kernel = get_kernel("fft", n_points=8)
        inputs, result = run_kernel(kernel)
        expected = kernel.reference(inputs)
        assert result.region(kernel.cdfg, "xr") == expected["xr"]
        assert result.region(kernel.cdfg, "xi") == expected["xi"]

    def test_non_power_of_two_fft_rejected(self):
        with pytest.raises(ValueError):
            get_kernel("fft", n_points=12)

    def test_unknown_kernel_rejected(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            get_kernel("dct")
