"""Kernel-suite plumbing tests (registry, wrappers, error paths)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.kernels import PAPER_KERNEL_ORDER, get_kernel, iter_kernels
from repro.kernels.suite import Kernel
from repro.kernels.util import tree_sum


class TestRegistry:
    def test_iter_kernels_order(self):
        names = [kernel.name for kernel in iter_kernels()]
        assert tuple(names) == tuple(PAPER_KERNEL_ORDER)

    def test_descriptions_present(self):
        for name in PAPER_KERNEL_ORDER:
            assert get_kernel(name).description


class TestKernelWrapper:
    def test_make_memory_places_regions(self):
        kernel = get_kernel("fir", n_samples=4, n_taps=2)
        inputs = kernel.make_inputs(np.random.default_rng(0))
        memory = kernel.make_memory(inputs)
        base = kernel.cdfg.regions["h"]["base"]
        assert memory[base:base + 2] == inputs["h"]

    def test_inputs_size_validated(self):
        kernel = get_kernel("fir", n_samples=4, n_taps=2)

        def bad_inputs(_rng):
            return {"x": [1, 2, 3], "h": [1, 2]}  # x too short

        broken = Kernel("broken", kernel.cdfg, bad_inputs,
                        lambda i: {})
        with pytest.raises(ReproError):
            broken.make_inputs()

    def test_unknown_region_rejected(self):
        kernel = get_kernel("fir", n_samples=4, n_taps=2)

        def bad_inputs(_rng):
            return {"ghost": [0]}

        broken = Kernel("broken", kernel.cdfg, bad_inputs,
                        lambda i: {})
        with pytest.raises(ReproError):
            broken.make_inputs()

    def test_output_regions(self):
        kernel = get_kernel("fft", n_points=8)
        assert set(kernel.output_regions) == {"xr", "xi"}

    def test_default_rng_reproducible(self):
        kernel = get_kernel("dc_filter", n_samples=8)
        assert kernel.make_inputs() == kernel.make_inputs()


class TestTreeSum:
    def test_requires_values(self):
        with pytest.raises(ValueError):
            tree_sum([])

    def test_single_value_passthrough(self):
        sentinel = object()
        assert tree_sum([sentinel]) is sentinel
