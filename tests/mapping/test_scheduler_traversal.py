"""Unit tests for backward list scheduling and CDFG traversal orders."""

import pytest

from repro.errors import MappingError
from repro.ir.builder import KernelBuilder
from repro.ir.dfg import DFG
from repro.ir.opcodes import Opcode
from repro.mapping.scheduler import backward_order
from repro.mapping.traversal import block_order, forward_order, weighted_order


def chain_dfg(n):
    dfg = DFG("chain")
    value = dfg.new_const(1)
    for _ in range(n):
        value = dfg.add_op(Opcode.ADD, [value, dfg.new_const(1)])
    return dfg


class TestBackwardOrder:
    def test_consumers_before_producers(self):
        dfg = chain_dfg(5)
        order = backward_order(dfg)
        position = {op.uid: i for i, op in enumerate(order)}
        for op in dfg.ops:
            for succ in dfg.successors(op):
                assert position[succ.uid] < position[op.uid]

    def test_all_ops_scheduled_once(self):
        dfg = chain_dfg(7)
        order = backward_order(dfg)
        assert len(order) == 7
        assert len({op.uid for op in order}) == 7

    def test_order_respects_memory_ordering(self):
        dfg = DFG("mem")
        addr = dfg.new_const(0)
        value = dfg.new_const(1)
        dfg.add_op(Opcode.STORE, [addr, value], region="a")
        dfg.add_op(Opcode.LOAD, [addr], region="a")
        order = backward_order(dfg)
        # Backward order: the LOAD (later in time) comes first.
        assert order[0].opcode is Opcode.LOAD
        assert order[1].opcode is Opcode.STORE

    def test_priority_prefers_low_mobility(self):
        # Two independent sinks: one on the critical path (mobility 0),
        # one slack-rich (mobility > 0).  The critical one comes first.
        dfg = DFG("prio")
        a = dfg.new_const(1)
        long_chain = a
        for _ in range(4):
            long_chain = dfg.add_op(Opcode.ADD, [long_chain, a])
        critical_sink = dfg.ops[-1]
        slack_op_result = dfg.add_op(Opcode.NEG, [a])
        slack_sink = dfg.ops[-1]
        order = backward_order(dfg)
        position = {op.uid: i for i, op in enumerate(order)}
        assert position[critical_sink.uid] < position[slack_sink.uid]

    def test_empty_dfg(self):
        assert backward_order(DFG("empty")) == []


class TestTraversal:
    def _loop_kernel(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 8)
        acc = k.symbol_var("acc", 0)
        with k.loop("i", 0, 8) as i:
            k.set(acc, k.get(acc) + i)
            k.store(out.at(i), k.get(acc))
        return k.finish()

    def test_forward_starts_at_entry(self):
        cdfg = self._loop_kernel()
        order = forward_order(cdfg)
        assert order[0] == cdfg.entry
        assert set(order) == set(cdfg.blocks)

    def test_weighted_puts_symbol_heavy_block_first(self):
        cdfg = self._loop_kernel()
        order = weighted_order(cdfg)
        # The loop body reads acc and i (heaviest symbol traffic).
        assert order[0].startswith("i_body")

    def test_weighted_is_permutation(self):
        cdfg = self._loop_kernel()
        assert sorted(weighted_order(cdfg)) == sorted(cdfg.blocks)

    def test_block_order_dispatch(self):
        cdfg = self._loop_kernel()
        assert block_order(cdfg, "forward") == forward_order(cdfg)
        assert block_order(cdfg, "weighted") == weighted_order(cdfg)
        with pytest.raises(MappingError):
            block_order(cdfg, "random")
