"""Unit tests for partial-mapping state and PNOP accounting."""

import pytest

from repro.arch.configs import get_config
from repro.errors import MappingError
from repro.mapping.state import (
    CommittedState,
    PartialMapping,
    pnop_blocks,
    pnop_upper_bound,
)


@pytest.fixture
def cgra():
    return get_config("HOM64")


@pytest.fixture
def pm(cgra):
    return PartialMapping(cgra, CommittedState(cgra), length=8)


class TestPnopAccounting:
    def test_empty_tile_costs_nothing(self):
        assert pnop_blocks([]) == 0

    def test_dense_prefix_costs_nothing(self):
        assert pnop_blocks([0, 1, 2]) == 0

    def test_leading_gap_costs_one(self):
        assert pnop_blocks([3]) == 1

    def test_interior_gap_costs_one(self):
        assert pnop_blocks([0, 4]) == 1

    def test_multiple_gaps(self):
        assert pnop_blocks([1, 3, 7]) == 3

    def test_trailing_idle_free(self):
        # Cycles after the last instruction need no pnop.
        assert pnop_blocks([0, 1]) == pnop_blocks([0, 1])

    def test_upper_bound_dominates_exact(self):
        for busy in ([0], [3], [0, 4], [1, 3, 7], [0, 1, 2, 9]):
            exact = pnop_blocks(busy)
            bound = pnop_upper_bound(len(busy), max(busy))
            assert bound >= exact

    def test_upper_bound_empty(self):
        assert pnop_upper_bound(0, 0) == 0


class TestSlots:
    def test_occupy_and_slot_free(self, pm):
        assert pm.slot_free(0, 0)
        pm.occupy(0, 0, ("op", 1))
        assert not pm.slot_free(0, 0)

    def test_double_occupy_rejected(self, pm):
        pm.occupy(0, 0, ("op", 1))
        with pytest.raises(MappingError):
            pm.occupy(0, 0, ("op", 2))

    def test_negative_cycle_rejected(self, pm):
        with pytest.raises(MappingError):
            pm.occupy(0, -1, ("op", 1))

    def test_occupy_extends_length(self, pm):
        pm.occupy(0, 20, ("op", 1))
        assert pm.length == 21

    def test_place_op_records_placement(self, pm):
        pm.place_op(5, tile=2, cycle=3)
        assert pm.placements[5] == (2, 3)

    def test_add_mov_counts(self, pm):
        pm.add_mov(1, 2, value_uid=9)
        assert pm.n_movs == 1
        assert pm.movs == [(1, 2, 9)]


class TestEvents:
    def test_production_events(self, pm):
        pm.record_production(7, tile=3, cycle=4)
        assert pm.rf_cycle(7, 3) == 5
        assert (3, 5) in pm.port_events[7]

    def test_rf_event_keeps_earliest(self, pm):
        pm.add_rf_event(7, 0, 5)
        pm.add_rf_event(7, 0, 3)
        pm.add_rf_event(7, 0, 9)
        assert pm.rf_cycle(7, 0) == 3

    def test_readable_from_rf(self, pm):
        pm.add_rf_event(7, 0, 2)
        assert not pm.readable_at(7, 0, 1)
        assert pm.readable_at(7, 0, 2)

    def test_readable_from_neighbor_port(self, pm, cgra):
        pm.add_port_event(7, tile=0, cycle=3)
        neighbor = cgra.neighbors(0)[0]
        assert pm.readable_at(7, neighbor, 3)
        assert not pm.readable_at(7, neighbor, 4)

    def test_port_not_readable_from_distance(self, pm):
        pm.add_port_event(7, tile=0, cycle=3)
        # Tile 10 is not a neighbour of 0 on the 4x4 torus.
        assert not pm.readable_at(7, 10, 3)


class TestClone:
    def test_clone_is_independent(self, pm):
        pm.place_op(1, 0, 0)
        pm.add_rf_event(5, 0, 1)
        clone = pm.clone()
        clone.place_op(2, 1, 1)
        clone.add_rf_event(5, 1, 2)
        assert 2 not in pm.placements
        assert pm.rf_cycle(5, 1) is None
        assert clone.rf_cycle(5, 0) == 1

    def test_clone_preserves_cost_inputs(self, pm):
        pm.add_mov(0, 1, 5)
        clone = pm.clone()
        assert clone.n_movs == 1
        assert clone.cost() == pm.cost()


class TestConstants:
    def test_register_const(self, pm):
        assert pm.register_const(0, 42)
        assert pm.register_const(0, 42)  # idempotent
        assert 42 in pm.const_tiles[0]

    def test_crf_capacity_enforced(self, cgra):
        pm = PartialMapping(cgra, CommittedState(cgra), 4)
        capacity = cgra.tile(0).crf_words
        for value in range(capacity):
            assert pm.register_const(0, value)
        assert not pm.register_const(0, capacity + 1)


class TestStretch:
    def test_stretch_shifts_everything(self, pm):
        pm.place_op(1, 0, 2)
        pm.record_production(9, 0, 2)
        pm.add_mov(1, 3, 9)
        pm.stretch(2)
        assert pm.placements[1] == (0, 4)
        assert pm.rf_cycle(9, 0) == 5
        assert pm.movs == [(1, 5, 9)]
        assert pm.length == 10

    def test_stretch_keeps_block_entry_events(self, pm):
        pm.add_rf_event(3, 0, 0)  # symbol at home since block entry
        pm.stretch(3)
        assert pm.rf_cycle(3, 0) == 0

    def test_stretch_requires_positive_delta(self, pm):
        with pytest.raises(MappingError):
            pm.stretch(0)


class TestContextAccounting:
    def test_words_include_committed(self, cgra):
        committed = CommittedState(cgra).extend([5] + [0] * 15, {})
        pm = PartialMapping(cgra, committed, 4)
        pm.place_op(1, 0, 1)
        # committed 5 + 1 op + 1 leading pnop
        assert pm.tile_context_words(0, exact=True) == 7

    def test_block_usage(self, pm):
        pm.place_op(1, 0, 0)
        pm.place_op(2, 0, 3)
        usage = pm.block_usage()
        assert usage[0] == 3  # 2 ops + 1 gap pnop
        assert sum(usage[1:]) == 0

    def test_normalized_cost_prefers_big_tiles(self):
        het = get_config("HET2")
        committed = CommittedState(het)
        small_tile = 8   # CM16 on HET2
        big_tile = 0     # CM64
        a = PartialMapping(het, committed, 8)
        a.place_op(1, small_tile, 0)
        b = PartialMapping(het, committed, 8)
        b.place_op(1, big_tile, 0)
        assert b.cost() < a.cost()


class TestCommittedState:
    def test_extend_accumulates(self, cgra):
        state = CommittedState(cgra)
        state2 = state.extend([1] * 16, {"i": 3})
        state3 = state2.extend([2] * 16, {})
        assert state3.tile_instrs[0] == 3
        assert state3.home_of("i") == 3
        # Original untouched.
        assert state.tile_instrs[0] == 0

    def test_rehoming_rejected(self, cgra):
        state = CommittedState(cgra).extend([0] * 16, {"i": 3})
        with pytest.raises(MappingError):
            state.extend([0] * 16, {"i": 4})
