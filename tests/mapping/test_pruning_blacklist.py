"""Unit tests for ACMAP, ECMAP, stochastic pruning and CAB."""

import numpy as np

from repro.arch.configs import make_cgra
from repro.mapping.blacklist import full_tiles, update_blacklist
from repro.mapping.pruning import acmap_filter, ecmap_filter, stochastic_prune
from repro.mapping.state import CommittedState, PartialMapping


def tiny_cgra(depth=8):
    return make_cgra("tiny", rows=2, cols=2, cm_depths=[depth] * 4,
                     lsu_tiles=(0, 1))


def pm_with_usage(cgra, tile, cycles, committed=None):
    pm = PartialMapping(cgra, committed or CommittedState(cgra),
                        max(cycles) + 1 if cycles else 1)
    for index, cycle in enumerate(cycles):
        pm.occupy(tile, cycle, ("op", 100 + index))
    return pm


class TestAcmapEcmap:
    def test_fitting_mapping_survives_both(self):
        cgra = tiny_cgra(depth=8)
        pm = pm_with_usage(cgra, 0, [0, 1, 2])
        assert acmap_filter([pm]) == [pm]
        assert ecmap_filter([pm]) == [pm]

    def test_overflow_killed_by_both(self):
        cgra = tiny_cgra(depth=4)
        pm = pm_with_usage(cgra, 0, [0, 1, 2, 3, 4])
        assert acmap_filter([pm]) == []
        assert ecmap_filter([pm]) == []

    def test_acmap_is_pessimistic(self):
        # Two ops with a wide gap: exact pnops = 1 (3 words); the
        # ACMAP bound assumes up to 2 gaps (4 words).  On a depth-3
        # tile ACMAP rejects what ECMAP accepts.
        cgra = tiny_cgra(depth=3)
        pm = pm_with_usage(cgra, 0, [0, 5])
        assert ecmap_filter([pm]) == [pm]
        assert acmap_filter([pm]) == []

    def test_committed_usage_counts(self):
        cgra = tiny_cgra(depth=8)
        committed = CommittedState(cgra).extend([6, 0, 0, 0], {})
        pm = pm_with_usage(cgra, 0, [0, 1, 2], committed=committed)
        assert ecmap_filter([pm]) == []


class TestStochasticPrune:
    def _population(self, cgra, count):
        population = []
        for index in range(count):
            pm = PartialMapping(cgra, CommittedState(cgra), 8)
            for m in range(index % 5):
                pm.add_mov(index % 4, m, 100 + m)
            population.append(pm)
        return population

    def test_under_cap_untouched(self):
        cgra = tiny_cgra()
        population = self._population(cgra, 5)
        result = stochastic_prune(population, 10,
                                  np.random.default_rng(0))
        assert result == population

    def test_prunes_to_cap(self):
        cgra = tiny_cgra()
        population = self._population(cgra, 40)
        result = stochastic_prune(population, 8,
                                  np.random.default_rng(0))
        assert len(result) == 8

    def test_keeps_best(self):
        cgra = tiny_cgra()
        population = self._population(cgra, 40)
        best = min(population, key=lambda pm: pm.cost())
        result = stochastic_prune(population, 8,
                                  np.random.default_rng(0))
        assert best in result

    def test_deterministic_for_seed(self):
        cgra = tiny_cgra()
        population = self._population(cgra, 40)
        first = stochastic_prune(population, 8, np.random.default_rng(5))
        second = stochastic_prune(population, 8, np.random.default_rng(5))
        assert [id(pm) for pm in first] == [id(pm) for pm in second]


class TestCab:
    def test_fresh_mapping_has_no_blacklist(self):
        cgra = tiny_cgra(depth=8)
        pm = PartialMapping(cgra, CommittedState(cgra), 4)
        assert full_tiles(pm) == frozenset()

    def test_full_tile_blacklisted(self):
        cgra = tiny_cgra(depth=4)
        pm = pm_with_usage(cgra, 0, [0, 1, 2])  # 3 words of 4: <2 left
        assert 0 in full_tiles(pm)

    def test_update_blacklist_stores(self):
        cgra = tiny_cgra(depth=4)
        pm = pm_with_usage(cgra, 1, [0, 1, 2])
        update_blacklist(pm)
        assert pm.blacklist == frozenset({1})

    def test_committed_only_blacklist(self):
        cgra = tiny_cgra(depth=8)
        committed = CommittedState(cgra).extend([7, 0, 0, 0], {})
        pm = PartialMapping(cgra, committed, 4)
        assert 0 in full_tiles(pm)
