"""Unit tests for the MOV-chain routing search."""

import pytest

from repro.arch.configs import get_config
from repro.mapping.routing import (
    commit_route,
    route_to_operand,
    route_to_rf,
)
from repro.mapping.state import CommittedState, PartialMapping


@pytest.fixture
def cgra():
    return get_config("HOM64")


def fresh(cgra, length=10):
    return PartialMapping(cgra, CommittedState(cgra), length)


class TestZeroCostRoutes:
    def test_same_tile_rf(self, cgra):
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=2)
        route = route_to_operand(pm, 1, tile=0, cycle=4)
        assert route is not None
        assert route.cost == 0

    def test_neighbor_port_next_cycle(self, cgra):
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=2)
        neighbor = cgra.neighbors(0)[0]
        route = route_to_operand(pm, 1, tile=neighbor, cycle=3)
        assert route is not None
        assert route.cost == 0

    def test_rf_landing_already_there(self, cgra):
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=2)
        route = route_to_rf(pm, 1, tile=0, deadline=9)
        assert route.cost == 0


class TestMovRoutes:
    def test_neighbor_later_needs_one_mov(self, cgra):
        # Value lands on tile 0 at cycle 2; a neighbour wants it at
        # cycle 5: tile 0 must re-emit (1 MOV).
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=2)
        neighbor = cgra.neighbors(0)[0]
        route = route_to_operand(pm, 1, tile=neighbor, cycle=5)
        assert route is not None
        assert route.cost == 1
        assert route.movs[0][0] == 0  # the re-emit happens on tile 0

    def test_two_hop_route(self, cgra):
        # Tile 0 -> tile 5 (distance 2 on the torus) consumed at the
        # earliest possible cycle: one intermediate MOV.
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=0)
        assert cgra.distance(0, 5) == 2
        route = route_to_operand(pm, 1, tile=5, cycle=2)
        assert route is not None
        assert route.cost == 1

    def test_route_commits_slots_and_events(self, cgra):
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=0)
        route = route_to_operand(pm, 1, tile=5, cycle=2)
        commit_route(pm, 1, route)
        assert pm.n_movs == 1
        tile, cycle = route.movs[0]
        assert not pm.slot_free(tile, cycle)
        assert pm.readable_at(1, 5, 2)

    def test_distant_tile_distance_hops(self, cgra):
        # Tile 0 to tile 10 is the torus diameter region.
        pm = fresh(cgra, length=12)
        pm.record_production(1, tile=0, cycle=0)
        distance = cgra.distance(0, 10)
        route = route_to_operand(pm, 1, tile=10, cycle=distance)
        assert route is not None
        assert route.cost == distance - 1

    def test_shared_prefix_reuse(self, cgra):
        # Routing lands the value in the hop tile's RF; a second
        # consumer *on that tile* later costs nothing extra.
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=0)
        first = route_to_operand(pm, 1, tile=5, cycle=2)
        commit_route(pm, 1, first)
        hop_tile = first.movs[0][0]
        second = route_to_operand(pm, 1, tile=hop_tile, cycle=4)
        assert second.cost == 0

    def test_port_read_does_not_land_in_rf(self, cgra):
        # A consumer reading a port does not capture the value: a
        # later consumer on the same tile needs a fresh re-emit.
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=0)
        first = route_to_operand(pm, 1, tile=5, cycle=2)
        commit_route(pm, 1, first)
        second = route_to_operand(pm, 1, tile=5, cycle=4)
        assert second is not None
        assert second.cost == 1


class TestRouteFailures:
    def test_impossible_deadline(self, cgra):
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=0)
        # Distance-2 tile at cycle 1: port forwarding reaches only
        # neighbours; no MOV chain fits.
        assert route_to_operand(pm, 1, tile=5, cycle=1) is None

    def test_blocked_slots_fail_route(self, cgra):
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=0)
        # Occupy every tile at every cycle up to the deadline so no
        # MOV can be inserted anywhere.
        for tile in range(cgra.n_tiles):
            for cycle in range(3):
                if pm.slot_free(tile, cycle):
                    pm.occupy(tile, cycle, ("op", 1000 + tile * 10 + cycle))
        assert route_to_operand(pm, 1, tile=5, cycle=3) is None

    def test_blacklist_blocks_routing(self, cgra):
        pm = fresh(cgra)
        pm.record_production(1, tile=0, cycle=0)
        # Blacklist every tile: no MOV may be inserted anywhere.
        blacklist = frozenset(range(cgra.n_tiles))
        assert route_to_operand(pm, 1, tile=5, cycle=4,
                                blacklist=blacklist) is None

    def test_max_movs_cap(self, cgra):
        pm = fresh(cgra, length=20)
        pm.record_production(1, tile=0, cycle=0)
        # A long delay to a far tile with max_movs=1 cannot work.
        assert route_to_operand(pm, 1, tile=10, cycle=12,
                                max_movs=1) is None

    def test_unknown_value_has_no_route(self, cgra):
        pm = fresh(cgra)
        assert route_to_operand(pm, 99, tile=0, cycle=3) is None


class TestRfLanding:
    def test_landing_by_deadline(self, cgra):
        pm = fresh(cgra, length=10)
        pm.record_production(1, tile=0, cycle=0)
        route = route_to_rf(pm, 1, tile=1, deadline=10)
        assert route is not None
        assert route.cost >= 1
        commit_route(pm, 1, route)
        landed = pm.rf_cycle(1, 1)
        assert landed is not None and landed <= 10

    def test_landing_too_tight(self, cgra):
        pm = fresh(cgra, length=10)
        pm.record_production(1, tile=0, cycle=9)
        # Produced at cycle 9 -> port at 10; landing into a distance-2
        # tile's RF by cycle 10 is impossible.
        assert route_to_rf(pm, 1, tile=5, deadline=10) is None
