"""MappingResult accounting tests."""

import pytest

from repro.arch.configs import get_config, make_cgra
from repro.errors import MappingError
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel


@pytest.fixture(scope="module")
def mapping():
    kernel = get_kernel("dc_filter", n_samples=16)
    return map_kernel(kernel.cdfg, get_config("HOM64"),
                      FlowOptions.basic())


class TestAccounting:
    def test_tile_words_sum_blocks(self, mapping):
        words = mapping.tile_words()
        manual = [0] * 16
        for block in mapping.blocks.values():
            for tile, used in enumerate(block.block_usage()):
                manual[tile] += used
        assert words == manual

    def test_total_words(self, mapping):
        assert mapping.total_words == sum(mapping.tile_words())

    def test_totals_consistent(self, mapping):
        assert mapping.total_ops > 0
        per_block = sum(block.n_ops for block in mapping.blocks.values())
        assert mapping.total_ops == per_block

    def test_breakdown_matches_usage(self, mapping):
        for block in mapping.blocks.values():
            for tile in range(16):
                breakdown = block.tile_breakdown(tile)
                assert (breakdown["ops"] + breakdown["movs"]
                        + breakdown["pnops"]
                        == block.block_usage()[tile])

    def test_check_fits_passes_on_fitting(self, mapping):
        assert mapping.fits
        mapping.check_fits()  # must not raise

    def test_check_fits_names_tiles(self):
        kernel = get_kernel("fir", n_samples=8, n_taps=4)
        tiny = make_cgra("tiny4", cm_depths=[4] * 16)
        result = map_kernel(kernel.cdfg, tiny, FlowOptions.basic())
        if result.fits:
            pytest.skip("mapping happened to fit")
        with pytest.raises(MappingError) as excinfo:
            result.check_fits()
        assert "T" in str(excinfo.value)

    def test_compile_seconds_recorded(self, mapping):
        assert mapping.compile_seconds > 0
