"""Flow-level tests: whole-kernel mapping invariants."""

import pytest

from repro.arch.configs import get_config, make_cgra
from repro.errors import UnmappableError
from repro.ir import opcodes
from repro.kernels import get_kernel
from repro.mapping.flow import VARIANTS, FlowOptions, map_kernel


@pytest.fixture(scope="module")
def fir_kernel():
    return get_kernel("fir", n_samples=8, n_taps=4)


@pytest.fixture(scope="module")
def fir_mapping(fir_kernel):
    return map_kernel(fir_kernel.cdfg, get_config("HOM64"),
                      FlowOptions.basic())


class TestMappingInvariants:
    def test_every_op_placed(self, fir_kernel, fir_mapping):
        for name, block in fir_mapping.blocks.items():
            for op in block.dfg.ops:
                assert op.uid in block.placements, \
                    f"{op} unplaced in {name}"

    def test_placements_respect_dependences(self, fir_mapping):
        for block in fir_mapping.blocks.values():
            for op in block.dfg.ops:
                tile, cycle = block.placements[op.uid]
                for pred in block.dfg.predecessors(op):
                    _, pred_cycle = block.placements[pred.uid]
                    assert pred_cycle < cycle, \
                        f"{pred} !< {op} in {block.name}"

    def test_memory_ops_on_lsu_tiles(self, fir_mapping):
        cgra = fir_mapping.cgra
        for block in fir_mapping.blocks.values():
            for op in block.dfg.ops:
                if opcodes.is_memory(op.opcode):
                    tile, _ = block.placements[op.uid]
                    assert cgra.tile(tile).has_lsu

    def test_one_instruction_per_slot(self, fir_mapping):
        for block in fir_mapping.blocks.values():
            seen = set()
            for tile, cycles in block.pm.tile_cycles.items():
                for cycle in cycles:
                    assert (tile, cycle) not in seen
                    seen.add((tile, cycle))

    def test_placements_within_schedule(self, fir_mapping):
        for block in fir_mapping.blocks.values():
            for tile, cycle in block.placements.values():
                assert 0 <= cycle < block.length

    def test_symbols_have_homes(self, fir_kernel, fir_mapping):
        homes = {}
        for block in fir_mapping.blocks.values():
            homes.update(block.new_homes)
        for symbol in fir_kernel.cdfg.symbols:
            assert symbol in homes

    def test_incremental_pnops_match_reference(self, fir_mapping):
        from repro.mapping.state import pnop_blocks
        for block in fir_mapping.blocks.values():
            for tile, cycles in block.pm.tile_cycles.items():
                assert (block.pm.exact_pnops(tile)
                        == pnop_blocks(cycles.keys()))


class TestFlowVariants:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_variant_maps_small_fir(self, fir_kernel, variant):
        result = map_kernel(fir_kernel.cdfg, get_config("HET1"),
                            VARIANTS[variant]())
        assert result.total_ops > 0

    def test_aware_fits_by_construction(self, fir_kernel):
        result = map_kernel(fir_kernel.cdfg, get_config("HET2"),
                            FlowOptions.aware())
        assert result.fits

    def test_context_aware_flag(self, fir_kernel):
        aware = map_kernel(fir_kernel.cdfg, get_config("HET1"),
                           context_aware=True)
        assert aware.options.is_context_aware
        basic = map_kernel(fir_kernel.cdfg, get_config("HOM64"),
                           context_aware=False)
        assert not basic.options.is_context_aware

    def test_deterministic_given_seed(self, fir_kernel):
        a = map_kernel(fir_kernel.cdfg, get_config("HET1"),
                       FlowOptions.aware(seed=99))
        b = map_kernel(fir_kernel.cdfg, get_config("HET1"),
                       FlowOptions.aware(seed=99))
        assert a.tile_words() == b.tile_words()
        assert a.total_movs == b.total_movs


class TestUnmappable:
    def test_hopeless_config_raises(self, fir_kernel):
        # Two-word context memories cannot hold any real kernel.
        tiny = make_cgra("hopeless", cm_depths=[2] * 16)
        with pytest.raises(UnmappableError) as excinfo:
            map_kernel(fir_kernel.cdfg, tiny,
                       FlowOptions.aware(max_attempts=4))
        assert excinfo.value.config == "hopeless"

    def test_error_carries_kernel_name(self, fir_kernel):
        tiny = make_cgra("hopeless", cm_depths=[2] * 16)
        with pytest.raises(UnmappableError) as excinfo:
            map_kernel(fir_kernel.cdfg, tiny,
                       FlowOptions.aware(max_attempts=4))
        assert excinfo.value.kernel == "fir"


class TestStats:
    def test_summary_renders(self, fir_mapping):
        text = fir_mapping.summary()
        assert "fir" in text
        assert "movs" in text

    def test_per_block_stats_cover_all_blocks(self, fir_kernel,
                                              fir_mapping):
        names = [name for name, _, _ in fir_mapping.per_block_stats()]
        assert set(names) == set(fir_kernel.cdfg.blocks)

    def test_static_cycles(self, fir_mapping):
        counts = {name: 1 for name in fir_mapping.blocks}
        total = fir_mapping.static_cycles(counts)
        assert total == sum(b.length for b in fir_mapping.blocks.values())
