"""Unit tests for the graph transformations (re-compute, pre-split)."""

import pytest

from repro.errors import MappingError
from repro.ir.dfg import DFG
from repro.ir.opcodes import Opcode
from repro.mapping.transforms import (
    copy_dfg,
    is_recomputable,
    presplit_high_fanout,
    recompute_split,
    transformed_op_count,
)


def fanout_dfg():
    """One ADD feeding four NEG consumers."""
    dfg = DFG("t")
    a = dfg.new_const(1)
    b = dfg.new_const(2)
    shared = dfg.add_op(Opcode.ADD, [a, b])
    for _ in range(4):
        dfg.add_op(Opcode.NEG, [shared])
    return dfg


class TestCopyDfg:
    def test_structural_equality(self):
        dfg = fanout_dfg()
        clone = copy_dfg(dfg)
        assert clone.n_ops == dfg.n_ops
        assert [op.uid for op in clone.ops] == [op.uid for op in dfg.ops]
        assert clone.validate()

    def test_copy_is_deep(self):
        dfg = fanout_dfg()
        clone = copy_dfg(dfg)
        clone.add_op(Opcode.NEG, [clone.ops[0].result])
        assert clone.n_ops == dfg.n_ops + 1
        assert dfg.validate()

    def test_symbols_carried(self):
        dfg = DFG("s")
        node = dfg.new_symbol_input("i")
        result = dfg.add_op(Opcode.ADD, [node, dfg.new_const(1)])
        dfg.set_symbol_output("i", result)
        clone = copy_dfg(dfg)
        assert "i" in clone.symbol_inputs
        assert clone.symbol_outputs["i"].uid == result.uid

    def test_order_edges_carried(self):
        dfg = DFG("m")
        addr = dfg.new_const(0)
        dfg.add_op(Opcode.STORE, [addr, dfg.new_const(1)], region="x")
        dfg.add_op(Opcode.LOAD, [addr], region="x")
        clone = copy_dfg(dfg)
        load = clone.ops[1]
        assert load.order_after == [clone.ops[0]]


class TestRecompute:
    def test_split_halves_consumers(self):
        dfg = fanout_dfg()
        add_uid = dfg.ops[0].uid
        split = recompute_split(dfg, add_uid)
        assert split.n_ops == dfg.n_ops + 1
        original = split.op_by_uid(add_uid)
        duplicate = [op for op in split.ops
                     if op.name.endswith("_rc")][0]
        assert len(split.consumers(original.result)) == 2
        assert len(split.consumers(duplicate.result)) == 2

    def test_split_preserves_validation(self):
        dfg = fanout_dfg()
        split = recompute_split(dfg, dfg.ops[0].uid)
        assert split.validate()

    def test_single_consumer_not_splittable(self):
        dfg = DFG("t")
        v = dfg.add_op(Opcode.ADD, [dfg.new_const(1), dfg.new_const(2)])
        dfg.add_op(Opcode.NEG, [v])
        with pytest.raises(MappingError):
            recompute_split(dfg, dfg.ops[0].uid)

    def test_store_not_recomputable(self):
        dfg = DFG("t")
        dfg.add_op(Opcode.STORE, [dfg.new_const(0), dfg.new_const(1)],
                   region="x")
        assert not is_recomputable(dfg, dfg.ops[0])

    def test_load_recomputable_when_region_read_only(self):
        dfg = DFG("t")
        load = None
        dfg.add_op(Opcode.LOAD, [dfg.new_const(0)], region="in")
        assert is_recomputable(dfg, dfg.ops[0])

    def test_load_not_recomputable_when_region_stored(self):
        dfg = DFG("t")
        dfg.add_op(Opcode.LOAD, [dfg.new_const(0)], region="buf")
        dfg.add_op(Opcode.STORE, [dfg.new_const(1), dfg.new_const(2)],
                   region="buf")
        assert not is_recomputable(dfg, dfg.ops[0])

    def test_transformed_op_count(self):
        dfg = fanout_dfg()
        split = recompute_split(dfg, dfg.ops[0].uid)
        assert transformed_op_count(split, dfg) == 1


class TestPresplit:
    def _dfg_with_wide_load(self, consumers):
        dfg = DFG("t")
        load = dfg.add_op(Opcode.LOAD, [dfg.new_const(0)], region="in")
        for _ in range(consumers):
            dfg.add_op(Opcode.NEG, [load])
        return dfg

    def test_wide_load_split(self):
        dfg = self._dfg_with_wide_load(4)
        result = presplit_high_fanout(dfg, load_fanout=2)
        loads = [op for op in result.ops if op.opcode is Opcode.LOAD]
        assert len(loads) >= 2
        for load in loads:
            assert len(result.consumers(load.result)) <= 2

    def test_narrow_load_untouched(self):
        dfg = self._dfg_with_wide_load(2)
        result = presplit_high_fanout(dfg, load_fanout=2)
        assert result is dfg

    def test_stored_region_untouched(self):
        dfg = DFG("t")
        load = dfg.add_op(Opcode.LOAD, [dfg.new_const(0)], region="buf")
        for _ in range(4):
            dfg.add_op(Opcode.NEG, [load])
        dfg.add_op(Opcode.STORE, [dfg.new_const(1), dfg.new_const(2)],
                   region="buf")
        result = presplit_high_fanout(dfg, load_fanout=2)
        assert result is dfg
