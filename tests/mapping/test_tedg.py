"""TEDG view tests (the paper's time-extended directed graph)."""

from repro.arch.configs import get_config
from repro.mapping.tedg import TEDG


class TestTEDG:
    def setup_method(self):
        self.tedg = TEDG(get_config("HOM64"))

    def test_time_slices(self):
        assert len(self.tedg.fu_nodes(0)) == 16
        assert len(self.tedg.rf_nodes(3)) == 16

    def test_fu_edges_include_writeback_and_ports(self):
        edges = self.tedg.edges_from_fu(0, 5)
        targets = {target for _, target in edges}
        # Writeback to the local RF at t+1.
        assert (("RF", 0), 6) in targets
        # Port forwarding to each torus neighbour at t+1.
        for neighbor in self.tedg.port_consumers(0):
            assert (("FU", neighbor), 6) in targets
        assert len(edges) == 5

    def test_rf_edges_hold_and_read(self):
        edges = self.tedg.edges_from_rf(2, 7)
        targets = {target for _, target in edges}
        assert (("RF", 2), 8) in targets   # value rests
        assert (("FU", 2), 7) in targets   # same-cycle operand read

    def test_port_consumers_match_torus(self):
        cgra = get_config("HOM64")
        for tile in range(16):
            assert (self.tedg.port_consumers(tile)
                    == cgra.neighbors(tile))
