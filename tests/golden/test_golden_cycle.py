"""Golden regression tests for the cycle-level executor.

``cycle_points.json`` snapshots the *measured* cycle counts (and the
per-block measured durations) the event-driven executor reports for a
representative slice of experiment points — the same slice
``points.json`` pins for the analytic path.  The pipeline is seeded
and deterministic, so drift here means a change altered the cycle
executor's timing measurement (or the instruction streams it
measures) and must be reviewed; regenerate with ``regenerate()``
below if intended.

The snapshot also pins the *differential invariant* the diff lane
relies on: for every entry, ``analytic_cycles - cycles`` equals the
schedule's trailing idle and sits within the default tolerance of
:mod:`repro.runtime.diff`.
"""

import json
import pathlib

import pytest

from repro.runtime.diff import DEFAULT_ABS_TOL, DEFAULT_REL_TOL
from repro.runtime.sweep import PointSpec, compute_point

GOLDEN_PATH = pathlib.Path(__file__).parent / "cycle_points.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

ENERGY_REL = 1e-9


def cycle_point(kernel, config, variant):
    return compute_point(PointSpec(kernel, config, variant,
                                   backend="cycle"))


@pytest.mark.parametrize(
    "entry", GOLDEN["points"],
    ids=[f"{e['kernel']}@{e['config']}/{e['variant']}"
         for e in GOLDEN["points"]])
def test_cycle_point_matches_snapshot(entry):
    point = cycle_point(entry["kernel"], entry["config"],
                        entry["variant"])
    assert point.mapped, point.error
    assert point.cycles == entry["cycles"]
    assert point.energy_uj == pytest.approx(entry["energy_uj"],
                                            rel=ENERGY_REL)
    assert point.output_digest == entry["output_digest"]
    delta = entry["analytic_cycles"] - entry["cycles"]
    assert 0 <= delta <= max(DEFAULT_ABS_TOL,
                             DEFAULT_REL_TOL * entry["analytic_cycles"])


@pytest.mark.parametrize(
    "entry", GOLDEN["points"],
    ids=[f"{e['kernel']}@{e['config']}/{e['variant']}"
         for e in GOLDEN["points"]])
def test_analytic_sibling_matches_snapshot(entry):
    # The snapshot's analytic_cycles column must stay honest too —
    # it is the baseline the delta invariant above is checked against.
    point = compute_point(PointSpec(entry["kernel"], entry["config"],
                                    entry["variant"]))
    assert point.cycles == entry["analytic_cycles"]
    assert point.output_digest == entry["output_digest"]


def regenerate():  # pragma: no cover — maintenance helper
    """Rewrite cycle_points.json from the current pipeline.

    Run after an *intended* change to mapping/assembly or the cycle
    executor's timing model::

        PYTHONPATH=src python tests/golden/test_golden_cycle.py
    """
    points = []
    for entry in GOLDEN["points"]:
        measured = cycle_point(entry["kernel"], entry["config"],
                               entry["variant"])
        analytic = compute_point(PointSpec(
            entry["kernel"], entry["config"], entry["variant"]))
        points.append({
            "kernel": entry["kernel"], "config": entry["config"],
            "variant": entry["variant"],
            "cycles": measured.cycles,
            "analytic_cycles": analytic.cycles,
            "energy_uj": measured.energy_uj,
            "output_digest": measured.output_digest,
        })
    GOLDEN_PATH.write_text(
        json.dumps({"points": points}, indent=2) + "\n")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
