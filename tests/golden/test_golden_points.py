"""Golden regression tests for the experiment layer.

``points.json`` snapshots the reproduced numbers — cycles, energy,
MOV/PNOP/context-word counts — of a representative slice of the
paper's experiment points, captured from the seed pipeline.  The
whole stack (traversal, scheduling, binding, pruning, assembling,
simulation, energy pricing) is seeded and deterministic, so any drift
in these values means a future change silently altered the paper's
reproduced figures and must be reviewed (and, if intended, the
snapshot regenerated — see ``regenerate()`` below).
"""

import json
import pathlib

import pytest

from repro.eval.experiments import cpu_point, execute_point

GOLDEN_PATH = pathlib.Path(__file__).parent / "points.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: Energy totals are pure float arithmetic over integer activity
#: counts — deterministic on one platform, but allow for a different
#: libm/summation order.
ENERGY_REL = 1e-9


@pytest.mark.parametrize(
    "entry", GOLDEN["points"],
    ids=[f"{e['kernel']}@{e['config']}/{e['variant']}"
         for e in GOLDEN["points"]])
def test_point_matches_snapshot(entry):
    point = execute_point(entry["kernel"], entry["config"],
                          entry["variant"])
    assert point.mapped, point.error
    assert point.cycles == entry["cycles"]
    assert point.energy_uj == pytest.approx(entry["energy_uj"],
                                            rel=ENERGY_REL)
    assert point.mapping.total_movs == entry["total_movs"]
    assert point.mapping.total_pnops == entry["total_pnops"]
    assert point.mapping.total_words == entry["total_words"]


@pytest.mark.parametrize("kernel", sorted(GOLDEN["cpu"]))
def test_cpu_baseline_matches_snapshot(kernel):
    cycles, energy = cpu_point(kernel)
    expected = GOLDEN["cpu"][kernel]
    assert cycles == expected["cycles"]
    assert energy.total_uj == pytest.approx(expected["energy_uj"],
                                            rel=ENERGY_REL)


def regenerate():  # pragma: no cover — maintenance helper
    """Rewrite points.json from the current pipeline.

    Run after an *intended* change to mapping/simulation/energy::

        PYTHONPATH=src python tests/golden/test_golden_points.py
    """
    points = []
    for entry in GOLDEN["points"]:
        point = execute_point(entry["kernel"], entry["config"],
                              entry["variant"])
        points.append({
            "kernel": entry["kernel"], "config": entry["config"],
            "variant": entry["variant"], "cycles": point.cycles,
            "energy_uj": point.energy_uj,
            "total_movs": point.mapping.total_movs,
            "total_pnops": point.mapping.total_pnops,
            "total_words": point.mapping.total_words,
        })
    cpu = {}
    for kernel in sorted(GOLDEN["cpu"]):
        cycles, energy = cpu_point(kernel)
        cpu[kernel] = {"cycles": cycles, "energy_uj": energy.total_uj}
    GOLDEN_PATH.write_text(
        json.dumps({"points": points, "cpu": cpu}, indent=2) + "\n")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
