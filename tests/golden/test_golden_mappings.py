"""Golden mapping-equivalence snapshots (every kernel x variant).

``mappings.json`` pins the *mapping-level* outcome of every kernel x
flow-variant pair on HOM32: per-block schedule lengths, per-block
per-tile context usage, total context words per tile, MOV and PNOP
counts.  The mapper's hot-path optimisations (incremental context
accounting, bounded/memoised route search — see
``repro.mapping.state``/``routing``) are required to be *bit-exact*
rewrites: any drift here means an optimisation changed a mapping
decision, which would silently move the paper's reproduced figures.

``points.json`` (test_golden_points) covers the downstream pipeline
(cycles, energy) on a representative slice; this file covers the whole
kernel x variant grid at the mapping layer, where the optimised code
lives.

Regenerate after an *intended* mapper change::

    PYTHONPATH=src python tests/golden/test_golden_mappings.py
"""

import json
import pathlib

import pytest

from repro.arch.configs import get_config
from repro.kernels import get_kernel
from repro.mapping.flow import VARIANTS, map_kernel

GOLDEN_PATH = pathlib.Path(__file__).parent / "mappings.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

CONFIG = GOLDEN["config"]

#: Kernels whose full-variant map dominates suite time; their cases
#: run in the slow lane so the fast lane stays fast.
_HEAVY = {"matmul", "nonsep_filter", "fft"}


def mapping_snapshot(result):
    """The equivalence fingerprint one entry pins."""
    return {
        "block_order": list(result.block_order),
        "block_lengths": {name: result.blocks[name].length
                          for name in result.block_order},
        "block_usage": {name: result.blocks[name].block_usage()
                        for name in result.block_order},
        "tile_words": result.tile_words(),
        "total_movs": result.total_movs,
        "total_pnops": result.total_pnops,
        "total_words": result.total_words,
    }


def _params():
    params = []
    for entry in GOLDEN["mappings"]:
        marks = ([pytest.mark.slow] if entry["kernel"] in _HEAVY
                 else [])
        params.append(pytest.param(
            entry, marks=marks,
            id=f"{entry['kernel']}/{entry['variant']}"))
    return params


@pytest.mark.parametrize("entry", _params())
def test_mapping_matches_snapshot(entry):
    kernel = get_kernel(entry["kernel"])
    result = map_kernel(kernel.cdfg, get_config(CONFIG),
                        VARIANTS[entry["variant"]]())
    snapshot = mapping_snapshot(result)
    assert snapshot == entry["snapshot"], (
        f"{entry['kernel']}/{entry['variant']}: mapping drifted from "
        f"the golden snapshot — an optimisation changed a mapping "
        f"decision")


def regenerate():  # pragma: no cover — maintenance helper
    """Rewrite mappings.json from the current mapper."""
    from repro.kernels import PAPER_KERNEL_ORDER

    mappings = []
    for kernel_name in PAPER_KERNEL_ORDER:
        kernel = get_kernel(kernel_name)
        for variant in sorted(VARIANTS):
            result = map_kernel(kernel.cdfg, get_config("HOM32"),
                                VARIANTS[variant]())
            mappings.append({
                "kernel": kernel_name,
                "variant": variant,
                "snapshot": mapping_snapshot(result),
            })
            print(f"{kernel_name}/{variant} ok", flush=True)
    GOLDEN_PATH.write_text(json.dumps(
        {"config": "HOM32", "mappings": mappings}, indent=1) + "\n")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
